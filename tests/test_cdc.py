"""CDC validation: mutation journal, violation transitions, checkpoints,
and the crash-resume determinism guarantee."""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import BudgetExhaustedError, GraphLoadError
from repro.pg.model import PropertyGraph
from repro.resilience import Budget, faults
from repro.resilience.faults import InjectedCrashError
from repro.schema import parse_schema
from repro.validation import (
    CDCConsumer,
    IncrementalValidator,
    IndexedValidator,
    MutationJournal,
    migrated_validator,
)
from repro.workloads import (
    MUTATION_SCHEMA_SDL,
    MUTATION_SCHEMA_VARIANTS,
    MutationWorkloadConfig,
    mutation_stream,
    write_mutation_journal,
)


@pytest.fixture
def schema():
    return parse_schema(MUTATION_SCHEMA_SDL)


def make_journal(tmp_path, name="stream.jsonl", **config):
    path = str(tmp_path / name)
    write_mutation_journal(path, MutationWorkloadConfig(**config))
    return path


def scratch_keys(consumer):
    """From-scratch strong validation of the consumer's final state."""
    return (
        IndexedValidator(consumer._schema)
        .validate(consumer._validator.graph, mode="strong")
        .keys()
    )


# --------------------------------------------------------------------- #
# the journal layer
# --------------------------------------------------------------------- #


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = MutationJournal(path)
        records = [
            {"op": "add_node", "id": "u1", "label": "User",
             "properties": {"id": "x", "nicknames": ("a", "b")}},
            {"op": "set_property", "id": "u1", "name": "login", "value": "alice"},
            {"op": "commit"},
            {"op": "remove_node", "id": "u1"},
            {"op": "commit"},
        ]
        assert journal.write_events(records) == len(records)
        events = list(journal.read())
        assert [event.op for event in events] == [
            "add_node", "set_property", "commit", "remove_node", "commit"
        ]
        assert [event.seq for event in events] == [1, 2, 3, 4, 5]
        # header is line 1, events start at line 2
        assert [event.line for event in events] == [2, 3, 4, 5, 6]
        # tuples are encoded as lists
        assert events[0].record["properties"]["nicknames"] == ["a", "b"]
        assert events[-1].end_offset == journal.size()

    def test_resume_from_offset_matches_suffix(self, tmp_path):
        path = make_journal(tmp_path, commits=5, ops_per_commit=3, seed=1)
        journal = MutationJournal(path)
        events = list(journal.read())
        cut = events[6]
        suffix = list(journal.read(cut.end_offset, cut.seq, cut.line))
        assert [e.record for e in suffix] == [e.record for e in events[7:]]
        assert [e.seq for e in suffix] == [e.seq for e in events[7:]]
        assert [e.end_offset for e in suffix] == [e.end_offset for e in events[7:]]

    def test_missing_header(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"op": "commit"}\n')
        with pytest.raises(GraphLoadError, match="header"):
            list(MutationJournal(str(path)).read())

    def test_newer_version_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"format": "pgschema-mutation-journal", "version": 99}\n')
        with pytest.raises(GraphLoadError, match="newer"):
            list(MutationJournal(str(path)).read())

    def test_invalid_json_has_span(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"format": "pgschema-mutation-journal", "version": 1}\n'
            '{"op": "commit"}\n'
            '{"op": "add_node", \n'
        )
        with pytest.raises(GraphLoadError) as err:
            list(MutationJournal(str(path)).read())
        assert err.value.line == 3
        assert err.value.source == str(path)
        assert err.value.offset is not None

    @pytest.mark.parametrize(
        "record, match",
        [
            ('{"id": "x"}', "missing required key 'op'"),
            ('{"op": "explode"}', "must be one of"),
            ('{"op": "add_node", "id": "x"}', "missing required key 'label'"),
            ('{"op": "add_edge", "id": "e", "source": "a", "target": "b", '
             '"label": "l", "properties": 7}', "properties must be an object"),
            ('{"op": "set_schema", "sdl": 5}', "sdl must be a string"),
            ('[1, 2]', "must be an object"),
        ],
    )
    def test_malformed_records(self, tmp_path, record, match):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"format": "pgschema-mutation-journal", "version": 1}\n' + record + "\n"
        )
        with pytest.raises(GraphLoadError, match=match) as err:
            list(MutationJournal(str(path)).read())
        assert err.value.line == 2

    def test_writer_rejects_bad_record(self, tmp_path):
        journal = MutationJournal(str(tmp_path / "j.jsonl"))
        with journal.writer() as writer:
            with pytest.raises(GraphLoadError):
                writer.event({"op": "add_node"})
            writer.commit()
        assert [event.op for event in journal.read()] == ["commit"]

    def test_append_does_not_duplicate_header(self, tmp_path):
        journal = MutationJournal(str(tmp_path / "j.jsonl"))
        with journal.writer() as writer:
            writer.event({"op": "add_node", "id": "a", "label": "User"})
        with journal.writer(append=True) as writer:
            writer.commit()
            writer.sync()
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        assert len(lines) == 3
        assert sum('"format"' in line for line in lines) == 1
        assert [event.op for event in journal.read()] == ["add_node", "commit"]


# --------------------------------------------------------------------- #
# the workload generator
# --------------------------------------------------------------------- #


class TestMutationWorkload:
    def test_deterministic(self):
        config = MutationWorkloadConfig(commits=10, seed=42)
        assert mutation_stream(config) == mutation_stream(config)

    def test_seed_changes_stream(self):
        a = mutation_stream(MutationWorkloadConfig(commits=10, seed=1))
        b = mutation_stream(MutationWorkloadConfig(commits=10, seed=2))
        assert a != b

    def test_commit_markers(self):
        events = mutation_stream(MutationWorkloadConfig(commits=7, seed=0))
        assert sum(event["op"] == "commit" for event in events) == 7
        assert events[-1]["op"] == "commit"

    def test_schema_change_commits(self):
        events = mutation_stream(
            MutationWorkloadConfig(commits=6, seed=0, schema_change_commits=(2, 5))
        )
        sdls = [event["sdl"] for event in events if event["op"] == "set_schema"]
        assert sdls == [MUTATION_SCHEMA_VARIANTS[0], MUTATION_SCHEMA_VARIANTS[1]]

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            MutationWorkloadConfig(op_distribution={"fly": 1.0})
        with pytest.raises(ValueError):
            MutationWorkloadConfig(violation_probability=1.5)
        with pytest.raises(ValueError):
            MutationWorkloadConfig(op_distribution={"add_node": 0.0})

    def test_every_stream_applies_cleanly(self, tmp_path, schema):
        """Generated streams never raise on apply (violations are schema-
        level, not structural)."""
        for seed in range(5):
            path = make_journal(
                tmp_path, f"s{seed}.jsonl", commits=12, ops_per_commit=6,
                seed=seed, violation_probability=0.5,
                schema_change_commits=(4, 9),
            )
            result = CDCConsumer(schema, path).run()
            assert result.commits == 12


# --------------------------------------------------------------------- #
# transitions and differential correctness
# --------------------------------------------------------------------- #


class TestTransitions:
    def test_appear_then_disappear(self, tmp_path, schema):
        journal = MutationJournal(str(tmp_path / "j.jsonl"))
        journal.write_events([
            {"op": "add_node", "id": "u1", "label": "User",
             "properties": {"id": "i1"}},  # missing @required login -> DS5
            {"op": "commit"},
            {"op": "set_property", "id": "u1", "name": "login", "value": "a"},
            {"op": "commit"},
        ])
        result = CDCConsumer(schema, journal).run()
        kinds = [(event.kind, event.rule, event.commit) for event in result.events]
        assert ("appeared", "DS5", 1) in kinds
        assert ("disappeared", "DS5", 2) in kinds
        appeared = [e for e in result.events if e.kind == "appeared" and e.rule == "DS5"]
        disappeared = [e for e in result.events if e.kind == "disappeared"]
        assert appeared[0].elements == ("u1",)
        # the DISAPPEARED event carries the detail the violation had
        assert disappeared[0].detail == appeared[0].detail
        assert result.report.conforms is False or result.report.conforms  # report valid
        assert result.conforms

    def test_events_file_matches_result(self, tmp_path, schema):
        path = make_journal(tmp_path, commits=10, seed=3, violation_probability=0.4)
        events_path = str(tmp_path / "events.jsonl")
        result = CDCConsumer(schema, path, events_path=events_path).run()
        lines = [
            json.loads(line)
            for line in open(events_path, encoding="utf-8")
            if line.strip()
        ]
        assert lines == [event.to_json() for event in result.events]
        assert len(result.events) > 0

    def test_implicit_final_commit(self, tmp_path, schema):
        journal = MutationJournal(str(tmp_path / "j.jsonl"))
        journal.write_events([
            {"op": "add_node", "id": "u1", "label": "User",
             "properties": {"id": "i", "login": "l"}},
            {"op": "commit"},
            # trailing events without a marker
            {"op": "add_node", "id": "u2", "label": "User",
             "properties": {"id": "i2"}},
        ])
        result = CDCConsumer(schema, journal).run()
        assert result.commits == 2
        assert any(e.rule == "DS5" and e.commit == 2 for e in result.events)


class TestDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("changes", [(), (3, 7, 11)])
    def test_matches_scratch(self, tmp_path, schema, seed, changes):
        path = make_journal(
            tmp_path, commits=14, ops_per_commit=6, seed=seed,
            violation_probability=0.35, schema_change_commits=changes,
        )
        consumer = CDCConsumer(schema, path)
        result = consumer.run()
        assert result.report.keys() == scratch_keys(consumer)

    def test_base_graph_not_mutated(self, tmp_path, schema):
        base = PropertyGraph()
        base.add_node("u0", "User", {"id": "base", "login": "base"})
        path = make_journal(tmp_path, commits=6, seed=4)
        consumer = CDCConsumer(schema, path, base_graph=base)
        result = consumer.run()
        assert result.commits == 6
        assert set(base.nodes) == {"u0"}  # the caller's graph is untouched
        assert "u0" in set(consumer._validator.graph.nodes)
        assert result.report.keys() == scratch_keys(consumer)


# --------------------------------------------------------------------- #
# crash-resume determinism (the tentpole guarantee)
# --------------------------------------------------------------------- #

COMMITS = 12


def baseline(tmp_path, schema, seed, **config):
    """One uninterrupted run: returns (events bytes, report keys, summary)."""
    base_dir = tmp_path / f"base{seed}"
    base_dir.mkdir(exist_ok=True)
    path = make_journal(
        base_dir, commits=COMMITS, ops_per_commit=5, seed=seed,
        violation_probability=0.35, **config,
    )
    events_path = str(base_dir / "events.jsonl")
    result = CDCConsumer(schema, path, events_path=events_path).run()
    with open(events_path, "rb") as fp:
        return path, fp.read(), result.report.keys(), result.report.summary()


def crash_then_resume(tmp_path, schema, journal_path, fault_spec, label,
                      checkpoint_every=3, resumes=1):
    """Run under *fault_spec* until it crashes, then resume to completion."""
    work = tmp_path / label
    work.mkdir()
    events_path = str(work / "events.jsonl")
    checkpoint_dir = str(work / "ckpt")
    kwargs = dict(
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        events_path=events_path,
        retry_attempts=0,
    )
    plan = faults.install(fault_spec)
    crashed = False
    try:
        CDCConsumer(schema, journal_path, **kwargs).run()
    except InjectedCrashError:
        crashed = True
    finally:
        faults.uninstall()
    recovered = []
    for _ in range(resumes):
        result = CDCConsumer(schema, journal_path, **kwargs).run(resume=True)
        recovered.append(result.recovered_from)
    with open(events_path, "rb") as fp:
        return crashed, fp.read(), result, recovered, plan


class TestCrashResume:
    @pytest.mark.parametrize("crash_commit", list(range(1, COMMITS + 1)))
    def test_crash_at_every_commit(self, tmp_path, schema, crash_commit):
        journal_path, events, keys, summary = baseline(tmp_path, schema, seed=5)
        crashed, resumed_events, result, recovered, plan = crash_then_resume(
            tmp_path, schema, journal_path,
            f"crash@cdc.apply:commit={crash_commit}", f"c{crash_commit}",
        )
        assert crashed and plan.fired_count("cdc.apply") == 1
        assert resumed_events == events
        assert result.report.keys() == keys
        assert result.report.summary() == summary

    @pytest.mark.parametrize("phase", ["begin", "rename"])
    def test_crash_mid_checkpoint(self, tmp_path, schema, phase):
        journal_path, events, keys, summary = baseline(tmp_path, schema, seed=6)
        crashed, resumed_events, result, recovered, _ = crash_then_resume(
            tmp_path, schema, journal_path,
            f"crash@cdc.checkpoint:phase={phase}", f"ckpt-{phase}",
        )
        assert crashed
        assert resumed_events == events
        assert result.report.keys() == keys
        assert result.report.summary() == summary

    def test_crash_during_recovery_then_resume_again(self, tmp_path, schema):
        journal_path, events, keys, _ = baseline(tmp_path, schema, seed=7)
        work = tmp_path / "recover-crash"
        work.mkdir()
        kwargs = dict(
            checkpoint_dir=str(work / "ckpt"), checkpoint_every=3,
            events_path=str(work / "events.jsonl"), retry_attempts=0,
        )
        faults.install("crash@cdc.apply:commit=8")
        with pytest.raises(InjectedCrashError):
            CDCConsumer(schema, journal_path, **kwargs).run()
        faults.uninstall()
        # the first resume dies inside cdc.recover; the second succeeds
        faults.install("crash@cdc.recover:times=1")
        try:
            with pytest.raises(InjectedCrashError):
                CDCConsumer(schema, journal_path, **kwargs).run(resume=True)
            result = CDCConsumer(schema, journal_path, **kwargs).run(resume=True)
        finally:
            faults.uninstall()
        assert result.recovered_from.startswith("checkpoint:")
        with open(kwargs["events_path"], "rb") as fp:
            assert fp.read() == events
        assert result.report.keys() == keys

    def test_corrupt_newest_falls_back_to_previous(self, tmp_path, schema):
        journal_path, events, keys, _ = baseline(tmp_path, schema, seed=8)
        work = tmp_path / "corrupt1"
        work.mkdir()
        kwargs = dict(
            checkpoint_dir=str(work / "ckpt"), checkpoint_every=2,
            events_path=str(work / "events.jsonl"), retry_attempts=0,
        )
        faults.install("crash@cdc.apply:commit=9")
        with pytest.raises(InjectedCrashError):
            CDCConsumer(schema, journal_path, **kwargs).run()
        faults.uninstall()
        checkpoints = sorted(os.listdir(kwargs["checkpoint_dir"]))
        assert len(checkpoints) == 2  # pruned to newest two
        newest = os.path.join(kwargs["checkpoint_dir"], checkpoints[-1])
        with open(newest, "r+b") as fp:
            fp.truncate(os.path.getsize(newest) // 2)  # torn write
        result = CDCConsumer(schema, journal_path, **kwargs).run(resume=True)
        assert result.recovered_from == f"checkpoint:{checkpoints[-2]}"
        with open(kwargs["events_path"], "rb") as fp:
            assert fp.read() == events
        assert result.report.keys() == keys

    def test_all_checkpoints_corrupt_cold_replay(self, tmp_path, schema):
        journal_path, events, keys, summary = baseline(tmp_path, schema, seed=9)
        work = tmp_path / "corrupt2"
        work.mkdir()
        kwargs = dict(
            checkpoint_dir=str(work / "ckpt"), checkpoint_every=2,
            events_path=str(work / "events.jsonl"), retry_attempts=0,
        )
        faults.install("crash@cdc.apply:commit=9")
        with pytest.raises(InjectedCrashError):
            CDCConsumer(schema, journal_path, **kwargs).run()
        faults.uninstall()
        for name in os.listdir(kwargs["checkpoint_dir"]):
            path = os.path.join(kwargs["checkpoint_dir"], name)
            with open(path, "wb") as fp:
                fp.write(b'{"format": "garbage"}')
        result = CDCConsumer(schema, journal_path, **kwargs).run(resume=True)
        assert result.recovered_from == "cold"
        with open(kwargs["events_path"], "rb") as fp:
            assert fp.read() == events
        assert result.report.keys() == keys
        assert result.report.summary() == summary

    def test_digest_tamper_detected(self, tmp_path, schema):
        """A bit-flip that keeps the JSON valid still fails the digest."""
        journal_path, events, keys, _ = baseline(tmp_path, schema, seed=10)
        work = tmp_path / "tamper"
        work.mkdir()
        kwargs = dict(
            checkpoint_dir=str(work / "ckpt"), checkpoint_every=2,
            events_path=str(work / "events.jsonl"), retry_attempts=0,
        )
        faults.install("crash@cdc.apply:commit=9")
        with pytest.raises(InjectedCrashError):
            CDCConsumer(schema, journal_path, **kwargs).run()
        faults.uninstall()
        checkpoints = sorted(os.listdir(kwargs["checkpoint_dir"]))
        newest = os.path.join(kwargs["checkpoint_dir"], checkpoints[-1])
        payload = json.loads(open(newest, encoding="utf-8").read())
        payload["commit"] += 1  # forge the resume point, keep the old digest
        with open(newest, "w", encoding="utf-8") as fp:
            json.dump(payload, fp)
        result = CDCConsumer(schema, journal_path, **kwargs).run(resume=True)
        assert result.recovered_from == f"checkpoint:{checkpoints[-2]}"
        assert result.report.keys() == keys

    def test_crash_with_schema_changes_in_stream(self, tmp_path, schema):
        journal_path, events, keys, summary = baseline(
            tmp_path, schema, seed=11, schema_change_commits=(4, 8),
        )
        for crash_commit in (5, 9):
            crashed, resumed_events, result, _, _ = crash_then_resume(
                tmp_path, schema, journal_path,
                f"crash@cdc.apply:commit={crash_commit}", f"sc{crash_commit}",
            )
            assert crashed
            assert resumed_events == events
            assert result.report.keys() == keys
            assert result.report.summary() == summary

    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow,
                               HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=5),
        crash_commit=st.integers(min_value=1, max_value=COMMITS),
        checkpoint_every=st.integers(min_value=1, max_value=6),
    )
    def test_property_crash_resume_determinism(
        self, tmp_path, schema, seed, crash_commit, checkpoint_every
    ):
        journal_path, events, keys, summary = baseline(tmp_path, schema, seed=seed)
        label = f"p{seed}-{crash_commit}-{checkpoint_every}"
        if (tmp_path / label).exists():  # hypothesis may repeat examples
            import shutil

            shutil.rmtree(tmp_path / label)
        crashed, resumed_events, result, _, _ = crash_then_resume(
            tmp_path, schema, journal_path,
            f"crash@cdc.apply:commit={crash_commit}", label,
            checkpoint_every=checkpoint_every,
        )
        assert crashed
        assert resumed_events == events
        assert result.report.keys() == keys
        assert result.report.summary() == summary


# --------------------------------------------------------------------- #
# retries, budgets
# --------------------------------------------------------------------- #


class TestRetry:
    def test_transient_faults_are_retried(self, tmp_path, schema):
        path = make_journal(tmp_path, commits=5, seed=12)
        reference = CDCConsumer(schema, path).run()
        plan = faults.install("crash@cdc.apply:attempt=0")
        try:
            result = CDCConsumer(
                schema, path, retry_attempts=2, retry_base_delay=0.0
            ).run()
        finally:
            faults.uninstall()
        assert result.retries == result.commits
        assert plan.fired_count("cdc.apply") == result.commits
        assert result.report.keys() == reference.report.keys()
        assert [e.to_json() for e in result.events] == [
            e.to_json() for e in reference.events
        ]

    def test_exhausted_retries_propagate(self, tmp_path, schema):
        path = make_journal(tmp_path, commits=5, seed=12)
        faults.install("crash@cdc.apply")
        try:
            with pytest.raises(InjectedCrashError):
                CDCConsumer(
                    schema, path, retry_attempts=1, retry_base_delay=0.0
                ).run()
        finally:
            faults.uninstall()

    def test_permanent_apply_error_not_retried(self, tmp_path, schema):
        journal = MutationJournal(str(tmp_path / "j.jsonl"))
        journal.write_events([
            {"op": "remove_node", "id": "ghost"},
            {"op": "commit"},
        ])
        with pytest.raises(GraphLoadError, match="remove_node") as err:
            CDCConsumer(schema, journal, retry_attempts=3).run()
        assert err.value.line == 2


class TestBudget:
    def test_unknown_partial_at_commit_boundary(self, tmp_path, schema):
        path = make_journal(tmp_path, commits=10, ops_per_commit=5, seed=13)
        budget = Budget(max_nodes=12)
        result = CDCConsumer(schema, path, budget=budget).run()
        assert result.report.complete is False
        assert result.report.verdict in ("unknown", "violations")
        assert result.report.interruption.dimension == "nodes"
        assert result.commits < 10

    def test_budget_error_mode_raises(self, tmp_path, schema):
        path = make_journal(tmp_path, commits=10, ops_per_commit=5, seed=13)
        with pytest.raises(BudgetExhaustedError):
            CDCConsumer(
                schema, path, budget=Budget(max_nodes=12), on_budget="error"
            ).run()

    def test_checkpointed_partial_resumes_to_full(self, tmp_path, schema):
        path = make_journal(tmp_path, commits=10, ops_per_commit=5, seed=14)
        reference = CDCConsumer(schema, path).run()
        checkpoint_dir = str(tmp_path / "ckpt")
        partial = CDCConsumer(
            schema, path, budget=Budget(max_nodes=12),
            checkpoint_dir=checkpoint_dir, checkpoint_every=1,
        ).run()
        assert partial.report.complete is False
        resumed = CDCConsumer(
            schema, path, checkpoint_dir=checkpoint_dir, checkpoint_every=1
        ).run(resume=True)
        assert resumed.recovered_from.startswith("checkpoint:")
        assert resumed.report.complete is True
        assert resumed.report.keys() == reference.report.keys()


# --------------------------------------------------------------------- #
# schema-change events: migrate vs rebuild
# --------------------------------------------------------------------- #

STRUCTURAL_OLD = """
interface Named { name: String }
type A implements Named { name: String }
type B { a: A }
"""

STRUCTURAL_NEW = """
interface Named { name: String }
type A { name: String }
type B { a: A }
"""


class TestSchemaChange:
    def run_with_metrics(self, schema, path, **kwargs):
        observation = obs.install(None, obs.MetricsRegistry())
        try:
            result = CDCConsumer(schema, path, **kwargs).run()
        finally:
            obs.uninstall()
        return result, observation.registry

    def test_scope_local_changes_migrate(self, tmp_path, schema):
        path = make_journal(
            tmp_path, commits=10, seed=15, schema_change_commits=(3, 6, 9),
        )
        result, registry = self.run_with_metrics(schema, path)
        assert registry.counter_value("cdc.schema_migrations") == 3
        assert registry.counter_value("cdc.schema_rebuilds") == 0
        assert registry.counter_value("cdc.schema_rechecked_scopes") > 0

    def test_structural_change_rebuilds(self, tmp_path):
        journal = MutationJournal(str(tmp_path / "j.jsonl"))
        journal.write_events([
            {"op": "add_node", "id": "a1", "label": "A",
             "properties": {"name": "x"}},
            {"op": "commit"},
            {"op": "set_schema", "sdl": STRUCTURAL_NEW},
            {"op": "commit"},
        ])
        old = parse_schema(STRUCTURAL_OLD)
        result, registry = self.run_with_metrics(old, str(tmp_path / "j.jsonl"))
        assert registry.counter_value("cdc.schema_rebuilds") == 1
        assert registry.counter_value("cdc.schema_migrations") == 0
        assert result.commits == 2

    def test_breaking_change_makes_violations_appear(self, tmp_path, schema):
        journal = MutationJournal(str(tmp_path / "j.jsonl"))
        journal.write_events([
            {"op": "add_node", "id": "s1", "label": "UserSession",
             "properties": {"id": "i", "startTime": "t"}},
            {"op": "add_node", "id": "u1", "label": "User",
             "properties": {"id": "x", "login": "l"}},
            {"op": "add_edge", "id": "e1", "source": "s1", "target": "u1",
             "label": "user", "properties": {"certainty": 0.5}},
            {"op": "commit"},
            {"op": "set_schema", "sdl": MUTATION_SCHEMA_VARIANTS[0]},
            {"op": "commit"},
            {"op": "set_schema", "sdl": MUTATION_SCHEMA_VARIANTS[1]},
            {"op": "commit"},
        ])
        result = CDCConsumer(schema, journal).run()
        ds5 = [e for e in result.events if e.rule == "DS5"]
        # endTime @required appears at commit 2, disappears at commit 3
        assert [(e.kind, e.commit) for e in ds5] == [
            ("appeared", 2), ("disappeared", 3)
        ]
        assert result.conforms

    def test_invalid_schema_event_is_permanent(self, tmp_path, schema):
        journal = MutationJournal(str(tmp_path / "j.jsonl"))
        journal.write_events([
            {"op": "set_schema", "sdl": "type Broken {"},
            {"op": "commit"},
        ])
        with pytest.raises(GraphLoadError, match="set_schema"):
            CDCConsumer(schema, journal, retry_attempts=2).run()


class TestMigratedValidator:
    """Direct differential checks of the scope-bounded migration."""

    def build(self, sdl, mutate):
        schema = parse_schema(sdl)
        graph = PropertyGraph()
        mutate(graph)
        return IncrementalValidator(schema, graph)

    def assert_migration_matches(self, old_sdl, new_sdl, mutate, affected):
        source = self.build(old_sdl, mutate)
        new_schema = parse_schema(new_sdl)
        migrated, rechecked = migrated_validator(
            source, new_schema, frozenset(affected)
        )
        fresh = IncrementalValidator(new_schema, source.graph)
        assert migrated.report().keys() == fresh.report().keys()
        return rechecked

    def test_add_required_directive(self):
        def mutate(graph):
            graph.add_node("a1", "A", {"x": 1})
            graph.add_node("a2", "A", {})
            graph.add_node("b1", "B", {"y": 2})

        rechecked = self.assert_migration_matches(
            "type A { x: Int }\ntype B { y: Int }",
            "type A { x: Int @required }\ntype B { y: Int }",
            mutate, {"A"},
        )
        assert rechecked == 2  # the two A nodes, never B

    def test_add_key_site(self):
        def mutate(graph):
            graph.add_node("a1", "A", {"x": 1})
            graph.add_node("a2", "A", {"x": 1})

        self.assert_migration_matches(
            "type A { x: Int }",
            'type A @key(fields: ["x"]) { x: Int }',
            mutate, {"A"},
        )

    def test_remove_key_site(self):
        def mutate(graph):
            graph.add_node("a1", "A", {"x": 1})
            graph.add_node("a2", "A", {"x": 1})

        self.assert_migration_matches(
            'type A @key(fields: ["x"]) { x: Int }',
            "type A { x: Int }",
            mutate, {"A"},
        )

    def test_required_for_target(self):
        def mutate(graph):
            graph.add_node("a1", "A", {})
            graph.add_node("b1", "B", {})
            graph.add_node("b2", "B", {})
            graph.add_edge("e1", "a1", "b1", "r", {})

        self.assert_migration_matches(
            "type A { r: B }\ntype B { y: Int }",
            "type A { r: B @requiredForTarget }\ntype B { y: Int }",
            mutate, {"A", "B"},
        )

    def test_edge_directive_change(self):
        def mutate(graph):
            graph.add_node("a1", "A", {})
            graph.add_node("a2", "A", {})
            graph.add_edge("e1", "a1", "a2", "r", {})
            graph.add_edge("e2", "a1", "a2", "r", {})

        self.assert_migration_matches(
            "type A { r: [A] }",
            "type A { r: [A] @distinct }",
            mutate, {"A"},
        )


# --------------------------------------------------------------------- #
# checkpoint hygiene
# --------------------------------------------------------------------- #


class TestCheckpoints:
    def test_at_most_two_kept_and_tmp_pruned(self, tmp_path, schema):
        path = make_journal(tmp_path, commits=12, seed=16)
        checkpoint_dir = tmp_path / "ckpt"
        result = CDCConsumer(
            schema, path, checkpoint_dir=str(checkpoint_dir), checkpoint_every=2
        ).run()
        assert result.checkpoints_written == 6
        names = sorted(os.listdir(checkpoint_dir))
        assert len(names) == 2
        assert all(name.startswith("ckpt-") and name.endswith(".json") for name in names)

    def test_fresh_run_clears_stale_checkpoints(self, tmp_path, schema):
        path = make_journal(tmp_path, commits=4, seed=17)
        checkpoint_dir = tmp_path / "ckpt"
        CDCConsumer(
            schema, path, checkpoint_dir=str(checkpoint_dir), checkpoint_every=2
        ).run()
        before = sorted(os.listdir(checkpoint_dir))
        result = CDCConsumer(
            schema, path, checkpoint_dir=str(checkpoint_dir), checkpoint_every=2
        ).run(resume=False)
        assert result.recovered_from is None
        assert sorted(os.listdir(checkpoint_dir)) == before

    def test_checkpoint_is_valid_json_with_digest(self, tmp_path, schema):
        path = make_journal(tmp_path, commits=4, seed=18)
        checkpoint_dir = tmp_path / "ckpt"
        CDCConsumer(
            schema, path, checkpoint_dir=str(checkpoint_dir), checkpoint_every=2
        ).run()
        name = sorted(os.listdir(checkpoint_dir))[-1]
        payload = json.loads((checkpoint_dir / name).read_text())
        assert payload["format"] == "pgschema-cdc-checkpoint"
        assert payload["version"] == 1
        for key in ("offset", "seq", "line", "commit", "events_offset",
                    "schema_sdl", "graph", "violations", "digest"):
            assert key in payload
