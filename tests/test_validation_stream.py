"""JSONL graph I/O and the out-of-core streaming validator.

Two contracts under test:

* :mod:`repro.pg.io`'s JSON Lines path round-trips graphs and reports
  malformed records with line/column spans (golden messages);
* :class:`repro.validation.StreamValidator` produces reports that are
  *byte-identical* to in-memory validation of the same graph, regardless
  of chunk size, and honours budgets and observability contracts.
"""

import io
import json

import pytest

from repro.errors import GraphLoadError
from repro import obs
from repro.pg import (
    GraphBuilder,
    dump_graph_jsonl,
    freeze,
    iter_graph_jsonl,
    load_graph_jsonl,
    random_graph,
)
from repro.resilience import Budget, BudgetExhaustedError
from repro.validation import (
    IndexedValidator,
    ParallelValidator,
    StreamValidator,
    validate_jsonl,
)
from repro.workloads import corrupt_graph, library_graph, user_session_graph
from repro.workloads.paper_schemas import CORPUS

SCHEMAS = {
    name: CORPUS[name].load()
    for name in ("user_session_edge_props", "library", "food_union")
}


def report_bytes(report):
    """Full serialized identity of a report -- order included."""
    return (
        report.mode,
        report.complete,
        report.rules_checked,
        tuple(str(violation) for violation in report.violations),
    )


def write_jsonl(tmp_path, graph, name="g.jsonl"):
    path = tmp_path / name
    with open(path, "w", encoding="utf-8") as fp:
        dump_graph_jsonl(graph, fp)
    return path


def graphs_for_streaming():
    yield "library", library_graph(6, 10, num_series=2, num_publishers=2, seed=3)
    yield "user_session_edge_props", user_session_graph(10, sessions_per_user=2, seed=4)
    for seed in range(3):
        yield "library", random_graph(
            16,
            24,
            node_labels=("Author", "Book", "BookSeries", "Publisher", "Ghost"),
            edge_labels=("wrote", "partOf", "publishedBy", "knows"),
            prop_names=("name", "title", "numPages", "weight"),
            prop_probability=0.6,
            seed=seed,
        )
    base = library_graph(6, 10, num_series=2, num_publishers=2, seed=3)
    for rule in ("WS1", "SS2", "WS3", "DS1"):
        corrupted = corrupt_graph(base, SCHEMAS["library"], rule, seed=9)
        if corrupted is not None:
            yield "library", corrupted


class TestJsonlRoundTrip:
    @pytest.mark.parametrize("backend", ["dict", "columnar"])
    def test_round_trip(self, tmp_path, backend):
        graph = library_graph(5, 8, num_series=1, num_publishers=2, seed=7)
        path = write_jsonl(tmp_path, graph)
        with open(path, "r", encoding="utf-8") as fp:
            loaded = load_graph_jsonl(fp, source=str(path), backend=backend)
        assert list(loaded.node_items()) == list(graph.node_items())
        assert list(loaded.edge_records()) == list(graph.edge_records())
        assert sorted(loaded.property_items()) == sorted(graph.property_items())

    def test_round_trip_matches_freeze(self, tmp_path):
        graph = user_session_graph(4, sessions_per_user=2, seed=1)
        path = write_jsonl(tmp_path, graph)
        with open(path, "r", encoding="utf-8") as fp:
            loaded = load_graph_jsonl(fp, backend="columnar")
        frozen = freeze(graph)
        assert list(loaded.node_items()) == list(frozen.node_items())
        assert sorted(loaded.property_items()) == sorted(frozen.property_items())

    def test_iter_skips_blank_lines(self):
        text = '{"type": "node", "id": "a", "label": "L"}\n\n  \n'
        records = list(iter_graph_jsonl(io.StringIO(text), "g.jsonl"))
        assert [line for line, _ in records] == [1]

    def test_empty_properties_key_omitted(self):
        builder = GraphBuilder()
        builder.node("a", "L")
        builder.node("b", "L", p=1)
        buffer = io.StringIO()
        dump_graph_jsonl(builder.graph(), buffer)
        first, second = buffer.getvalue().splitlines()
        assert "properties" not in first
        assert json.loads(second)["properties"] == {"p": 1}


class TestJsonlGoldenErrors:
    """Malformed records must carry exact line/column spans."""

    def load(self, text):
        with pytest.raises(GraphLoadError) as err:
            load_graph_jsonl(io.StringIO(text), source="g.jsonl")
        return err.value

    def test_invalid_json_has_line_and_column(self):
        good = '{"type": "node", "id": "a", "label": "L"}\n'
        error = self.load(good + "{bad}\n")
        assert error.line == 2
        assert error.column == 2
        assert error.offset == len(good) + 1
        assert str(error) == (
            "invalid JSON: Expecting property name enclosed in double quotes "
            "in g.jsonl at line 2, column 2 (char 43)"
        )

    def test_non_object_record(self):
        error = self.load("[1, 2]\n")
        assert (error.line, error.column) == (1, 1)
        assert "record must be an object, got list" in str(error)

    def test_missing_type_key(self):
        error = self.load('{"id": "a"}\n')
        assert "record is missing required key 'type'" in str(error)
        assert "at line 1, column 1" in str(error)

    def test_bad_type_value(self):
        error = self.load('{"type": "vertex", "id": "a"}\n')
        assert "record \"type\" must be \"node\" or \"edge\", got 'vertex'" in str(
            error
        )

    def test_node_missing_label(self):
        error = self.load('{"type": "node", "id": "a"}\n')
        assert str(error) == (
            "node record is missing required key 'label' "
            "in g.jsonl at line 1, column 1"
        )

    def test_edge_missing_target(self):
        error = self.load(
            '{"type": "edge", "id": "e", "label": "l", "source": "a"}\n'
        )
        assert "edge record is missing required key 'target'" in str(error)

    def test_bad_properties_shape(self):
        error = self.load(
            '{"type": "node", "id": "a", "label": "L", "properties": [1]}\n'
        )
        assert "node record properties must be an object, got list" in str(error)

    def test_duplicate_id_reports_offending_line(self):
        text = (
            '{"type": "node", "id": "a", "label": "L"}\n'
            '{"type": "node", "id": "a", "label": "L"}\n'
        )
        error = self.load(text)
        assert error.line == 2
        assert str(error) == (
            "malformed graph element: element id already in use: 'a' "
            "in g.jsonl at line 2, column 1"
        )

    def test_dangling_edge_reports_line(self):
        text = (
            '{"type": "node", "id": "a", "label": "L"}\n'
            '{"type": "edge", "id": "e", "label": "l", '
            '"source": "a", "target": "ghost"}\n'
        )
        error = self.load(text)
        assert error.line == 2
        assert "edge target is not a node: 'ghost'" in str(error)


class TestStreamAgreement:
    """Streamed reports are byte-identical to in-memory validation."""

    @pytest.mark.parametrize("chunk_elements", [7, 50, 10**6])
    def test_chunked_equals_in_memory(self, tmp_path, chunk_elements):
        for schema_name, graph in graphs_for_streaming():
            schema = SCHEMAS[schema_name]
            path = write_jsonl(tmp_path, graph)
            expected = report_bytes(
                ParallelValidator(schema, jobs=1).validate(graph)
            )
            streamed = validate_jsonl(
                schema, path, chunk_elements=chunk_elements
            )
            assert report_bytes(streamed) == expected, (
                schema_name,
                chunk_elements,
            )
            assert streamed.keys() == IndexedValidator(schema).validate(graph).keys()

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_stream_equals_parallel_and_columnar(self, tmp_path, jobs):
        schema = SCHEMAS["library"]
        graph = corrupt_graph(
            library_graph(6, 10, num_series=2, num_publishers=2, seed=3),
            schema,
            "WS3",
            seed=5,
        )
        path = write_jsonl(tmp_path, graph)
        validator = ParallelValidator(schema, jobs=jobs)
        expected = report_bytes(validator.validate(graph))
        assert report_bytes(validator.validate(freeze(graph))) == expected
        streamed = validate_jsonl(schema, path, chunk_elements=11)
        assert report_bytes(streamed) == expected

    def test_extended_mode_parity(self, tmp_path):
        schema = SCHEMAS["library"]
        graph = library_graph(5, 9, num_series=1, num_publishers=2, seed=8)
        path = write_jsonl(tmp_path, graph)
        for mode in ("weak", "strong"):
            expected = report_bytes(
                ParallelValidator(schema, jobs=1).validate(graph, mode=mode)
            )
            streamed = validate_jsonl(schema, path, mode=mode, chunk_elements=9)
            assert report_bytes(streamed) == expected, mode

    def test_empty_file_conforms(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        report = validate_jsonl(SCHEMAS["library"], path)
        assert report.conforms


class TestStreamBudget:
    def make_input(self, tmp_path):
        graph = user_session_graph(40, sessions_per_user=2, seed=6)
        return write_jsonl(tmp_path, graph), graph

    def test_mid_stream_exhaustion_yields_partial(self, tmp_path):
        path, graph = self.make_input(tmp_path)
        schema = SCHEMAS["user_session_edge_props"]
        budget = Budget(max_nodes=50)
        report = validate_jsonl(
            schema, path, chunk_elements=40, budget=budget
        )
        assert not report.complete
        assert report.verdict == "unknown"
        assert report.interruption is not None

    def test_partial_report_is_deterministic(self, tmp_path):
        path, _graph = self.make_input(tmp_path)
        schema = SCHEMAS["user_session_edge_props"]
        first = validate_jsonl(
            schema, path, chunk_elements=40, budget=Budget(max_nodes=50)
        )
        second = validate_jsonl(
            schema, path, chunk_elements=40, budget=Budget(max_nodes=50)
        )
        assert report_bytes(first) == report_bytes(second)

    def test_on_budget_error_raises(self, tmp_path):
        path, _graph = self.make_input(tmp_path)
        schema = SCHEMAS["user_session_edge_props"]
        with pytest.raises(BudgetExhaustedError):
            validate_jsonl(
                schema,
                path,
                chunk_elements=40,
                budget=Budget(max_nodes=50),
                on_budget="error",
            )

    def test_ample_budget_runs_complete(self, tmp_path):
        path, graph = self.make_input(tmp_path)
        schema = SCHEMAS["user_session_edge_props"]
        report = validate_jsonl(
            schema, path, budget=Budget(max_nodes=10**6)
        )
        assert report_bytes(report) == report_bytes(
            ParallelValidator(schema, jobs=1).validate(graph)
        )


class TestStreamObservability:
    def test_gauges_and_counters(self, tmp_path):
        graph = library_graph(6, 10, num_series=2, num_publishers=2, seed=3)
        path = write_jsonl(tmp_path, graph)
        schema = SCHEMAS["library"]
        validator = StreamValidator(schema, chunk_elements=10)
        with obs.observed(metrics=True) as observation:
            validator.validate(path)
            snapshot = observation.registry.snapshot()
        assert validator.peak_resident > 0
        assert snapshot["gauges"]["stream.peak_resident"] == validator.peak_resident
        assert snapshot["gauges"]["stream.pool.labels"] > 0
        assert snapshot["counters"]["stream.nodes"] >= graph.num_nodes
        assert snapshot["counters"]["stream.edges"] >= graph.num_edges
        assert snapshot["counters"]["stream.chunks"] >= 1

    def test_spans_recorded(self, tmp_path):
        graph = library_graph(4, 6, num_series=1, num_publishers=1, seed=2)
        path = write_jsonl(tmp_path, graph)
        with obs.observed(trace=True) as observation:
            StreamValidator(SCHEMAS["library"], chunk_elements=8).validate(path)
            names = [event.name for event in observation.tracer.events()]
        assert "validation.stream" in names
        assert "validation.stream.route" in names
        assert "validation.stream.chunk" in names

    def test_bad_chunk_elements_rejected(self):
        with pytest.raises(ValueError, match="chunk_elements must be positive"):
            StreamValidator(SCHEMAS["library"], chunk_elements=0)
        with pytest.raises(ValueError, match="unknown on_budget policy"):
            StreamValidator(SCHEMAS["library"], on_budget="explode")
