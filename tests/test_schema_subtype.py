"""The subtype relation ⊑_S (§4.3, rules 1-7)."""

import pytest

from repro.schema import TypeRef, is_named_subtype, is_subtype, label_conforms, parse_schema


@pytest.fixture(scope="module")
def schema():
    return parse_schema(
        """
        interface Food { name: String! }
        type Pizza implements Food { name: String! }
        type Pasta implements Food { name: String! }
        union Lunch = Pizza | Pasta
        type Person { favoriteFood: Food }
        """
    )


class TestNamedRules:
    def test_rule_1_reflexive(self, schema):
        assert is_named_subtype(schema, "Pizza", "Pizza")
        assert is_named_subtype(schema, "Food", "Food")

    def test_rule_2_implementation(self, schema):
        assert is_named_subtype(schema, "Pizza", "Food")
        assert is_named_subtype(schema, "Pasta", "Food")
        assert not is_named_subtype(schema, "Person", "Food")

    def test_rule_3_union(self, schema):
        assert is_named_subtype(schema, "Pizza", "Lunch")
        assert not is_named_subtype(schema, "Person", "Lunch")

    def test_not_symmetric(self, schema):
        assert not is_named_subtype(schema, "Food", "Pizza")
        assert not is_named_subtype(schema, "Lunch", "Pizza")

    def test_unknown_labels_only_reflexive(self, schema):
        assert is_named_subtype(schema, "Mystery", "Mystery")
        assert not is_named_subtype(schema, "Mystery", "Food")


class TestWrappingRules:
    def test_rule_4_lists_covariant(self, schema):
        assert is_subtype(schema, TypeRef.parse("[Pizza]"), TypeRef.parse("[Food]"))
        assert not is_subtype(schema, TypeRef.parse("[Food]"), TypeRef.parse("[Pizza]"))

    def test_rule_5_element_into_list(self, schema):
        assert is_subtype(schema, "Pizza", TypeRef.parse("[Food]"))
        assert is_subtype(schema, "Pizza", TypeRef.parse("[Pizza]"))

    def test_rule_6_non_null_weakens(self, schema):
        assert is_subtype(schema, TypeRef.parse("Pizza!"), "Food")
        assert is_subtype(schema, TypeRef.parse("Pizza!"), TypeRef.parse("[Food]"))

    def test_rule_7_non_null_both_sides(self, schema):
        assert is_subtype(schema, TypeRef.parse("Pizza!"), TypeRef.parse("Food!"))
        assert is_subtype(schema, TypeRef.parse("[Pizza!]!"), TypeRef.parse("[Food!]!"))

    def test_unwrapped_never_below_non_null(self, schema):
        # no rule derives t ⊑ s! for unwrapped t
        assert not is_subtype(schema, "Pizza", TypeRef.parse("Food!"))
        assert not is_subtype(schema, "Pizza", TypeRef.parse("Pizza!"))

    def test_list_never_below_named(self, schema):
        # the reason Example 6.1 is interface-inconsistent as printed
        assert not is_subtype(schema, TypeRef.parse("[Pizza]"), "Pizza")
        assert not is_subtype(schema, TypeRef.parse("[Pizza]"), "Food")

    def test_mixed_nesting(self, schema):
        assert is_subtype(schema, TypeRef.parse("[Pizza!]"), TypeRef.parse("[Food]"))
        assert is_subtype(schema, TypeRef.parse("Pizza!"), TypeRef.parse("[Food!]"))
        assert not is_subtype(schema, TypeRef.parse("[Pizza]"), TypeRef.parse("[Food!]"))


class TestLabelConforms:
    def test_basetype_comparison(self, schema):
        # DS3/DS4 compare node labels against basetype(type_S(t, f))
        assert label_conforms(schema, "Pizza", TypeRef.parse("[Food]"))
        assert label_conforms(schema, "Pizza", TypeRef.parse("Food!"))
        assert not label_conforms(schema, "Person", TypeRef.parse("Food!"))

    def test_string_declared_type(self, schema):
        assert label_conforms(schema, "Pizza", "Food")
