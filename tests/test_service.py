"""The schema-registry service: registry, batching, HTTP lifecycle, chaos.

The contract under test (ISSUE 9's acceptance criteria):

* batched concurrent requests return reports **byte-identical** to the
  single-shot ``validate()`` path, across jobs/batch sizes and after any
  ladder fallback;
* saturated queues and expired deadlines yield **typed** refusals/partials
  (``E_OVERLOAD`` 503, ``complete: false`` 202) -- never wrong answers;
* tenants are isolated: records pin their own plans and sat caches, and
  lookups are tenant-scoped;
* the registry survives a restart (atomic persistence + reload);
* graceful shutdown drains every admitted request;
* a ``crash@service.batch`` fault is survived by the retry/serial ladder.
"""

import json
import threading
import time

import pytest

from repro.errors import OverloadedError, ServiceError, WorkerFailureError
from repro.resilience import faults
from repro.schema import parse_schema
from repro.service import (
    BatchingValidator,
    SchemaRegistry,
    ServiceClient,
    ServiceThread,
    report_payload,
)
from repro.validation import validate
from repro.workloads import CORPUS, user_session_graph

SDL = CORPUS["user_session_edge_props"].sdl


def canonical(report) -> str:
    return json.dumps(report_payload(report), sort_keys=True)


@pytest.fixture
def registry():
    return SchemaRegistry()


@pytest.fixture
def record(registry):
    return registry.register("acme", "users", SDL)


@pytest.fixture
def graph():
    return user_session_graph(40, 4, seed=0)


@pytest.fixture
def expected(graph):
    """The single-shot CLI-path report, canonically serialized."""
    return canonical(validate(parse_schema(SDL), graph, mode="strong"))


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #


class TestRegistry:
    def test_versions_are_sequential_per_name(self, registry):
        first = registry.register("t", "s", SDL)
        second = registry.register("t", "s", SDL)
        assert (first.version, second.version) == (1, 2)
        assert registry.get("t", "s").version == 2
        assert registry.get("t", "s", 1) is first

    def test_tenant_scoping(self, registry):
        registry.register("alpha", "users", SDL)
        assert registry.list("beta") == []
        with pytest.raises(ServiceError, match="unknown schema"):
            registry.get("beta", "users")
        # same name under another tenant starts its own version line
        assert registry.register("beta", "users", SDL).version == 1

    def test_records_pin_private_caches(self, registry):
        a = registry.register("alpha", "users", SDL)
        b = registry.register("beta", "users", SDL)
        assert a.plan is not b.plan
        assert a.sat_cache is not b.sat_cache
        assert a.sat_cache.schema is a.schema

    def test_invalid_tokens_rejected(self, registry):
        for bad in ("", "../etc", "a/b", ".hidden", "x" * 70):
            with pytest.raises(ServiceError, match="invalid"):
                registry.register(bad, "s", SDL)
            with pytest.raises(ServiceError, match="invalid"):
                registry.register("t", bad, SDL)

    def test_bad_sdl_burns_no_version(self, registry):
        registry.register("t", "s", SDL)
        with pytest.raises(Exception):
            registry.register("t", "s", "type {{{{")
        assert registry.register("t", "s", SDL).version == 2

    def test_persistence_roundtrip(self, tmp_path):
        root = str(tmp_path / "reg")
        first = SchemaRegistry(root)
        first.register("acme", "users", SDL)
        first.register("acme", "users", SDL)
        first.register("beta", "other", SDL)
        reloaded = SchemaRegistry(root)
        assert len(reloaded) == 3
        assert reloaded.list("acme") == [{"name": "users", "versions": [1, 2]}]
        assert reloaded.get("acme", "users").version == 2
        # reloaded records come back warm: plan compiled, cache pinned
        assert reloaded.get("beta", "other").plan is not None

    def test_crashed_write_leftovers_skipped(self, tmp_path):
        root = str(tmp_path / "reg")
        registry = SchemaRegistry(root)
        registry.register("acme", "users", SDL)
        # a torn write never reaches the .graphql name, only the .tmp
        leftover = tmp_path / "reg" / "acme" / "users" / "2.graphql.tmp"
        leftover.write_text("type Broken {{{{")
        reloaded = SchemaRegistry(root)
        assert len(reloaded) == 1

    def test_registry_path_is_a_file(self, tmp_path):
        path = tmp_path / "occupied"
        path.write_text("not a directory")
        with pytest.raises(ServiceError, match="registry"):
            SchemaRegistry(str(path))


# --------------------------------------------------------------------------- #
# batching: determinism, coalescing, backpressure, chaos
# --------------------------------------------------------------------------- #


class TestBatching:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("max_batch", [1, 8])
    def test_batched_reports_byte_identical(
        self, record, graph, expected, jobs, max_batch
    ):
        batcher = BatchingValidator(jobs=jobs, max_batch=max_batch)
        try:
            futures = [batcher.submit(record, graph) for _ in range(12)]
            for future in futures:
                assert canonical(future.result(timeout=60)) == expected
        finally:
            batcher.close()

    def test_violations_survive_batching_byte_identical(self, record):
        graph = user_session_graph(10, 2, seed=1)
        graph.add_node("ghost", "Phantom")
        graph.set_property("ghost", "name", 42)
        expected = canonical(validate(parse_schema(SDL), graph, mode="strong"))
        batcher = BatchingValidator(jobs=3)
        try:
            futures = [batcher.submit(record, graph) for _ in range(6)]
            for future in futures:
                report = future.result(timeout=60)
                assert report.violations
                assert canonical(report) == expected
        finally:
            batcher.close()

    def test_coalescing_merges_concurrent_requests(self, record, graph, expected):
        """Requests admitted while a batch is in flight coalesce into the
        next sweep: a delay fault pins the first batch, the backlog must
        then be served in fewer batches than requests."""
        faults.install("delay@service.batch:seconds=0.3,times=1")
        try:
            batcher = BatchingValidator(jobs=2, max_batch=32)
            try:
                futures = [batcher.submit(record, graph) for _ in range(10)]
                for future in futures:
                    assert canonical(future.result(timeout=60)) == expected
                assert batcher.batches < batcher.requests
                stats = batcher.stats()
                assert stats["coalesce_ratio"] > 1.0
            finally:
                batcher.close()
        finally:
            faults.uninstall()

    def test_queue_saturation_is_typed_overload(self, record, graph, expected):
        """Past the admission bound, submits raise E_OVERLOAD -- and every
        admitted request is still answered correctly."""
        faults.install("delay@service.batch:seconds=0.2")
        try:
            batcher = BatchingValidator(jobs=1, max_queue=2, max_batch=1)
            try:
                admitted = []
                with pytest.raises(OverloadedError) as overload:
                    for _ in range(8):
                        admitted.append(batcher.submit(record, graph))
                assert overload.value.code == "E_OVERLOAD"
                assert len(admitted) <= 4  # one in flight + two queued + slack
                for future in admitted:
                    assert canonical(future.result(timeout=60)) == expected
            finally:
                batcher.close()
        finally:
            faults.uninstall()

    def test_expired_deadline_is_typed_partial(self, record, graph):
        batcher = BatchingValidator(jobs=2)
        try:
            report = batcher.submit(record, graph, deadline=1e-9).result(timeout=60)
        finally:
            batcher.close()
        assert report.complete is False
        assert report.verdict == "unknown"
        assert report.interruption is not None
        assert report.interruption.dimension == "deadline"

    def test_crash_fault_survived_by_retry(self, record, graph, expected):
        """A crash on the first batch attempt is retried and recovered;
        the eventual report is still byte-identical."""
        faults.install("crash@service.batch:attempt=0")
        try:
            batcher = BatchingValidator(jobs=2)
            try:
                report = batcher.submit(record, graph).result(timeout=60)
            finally:
                batcher.close()
        finally:
            faults.uninstall()
        assert canonical(report) == expected
        assert batcher.recovery_log
        assert batcher.recovery_log[0]["site"] == "service.batch"

    def test_persistent_crash_falls_back_to_serial(self, record, graph, expected):
        """Crashes on every thread-rung attempt drop the batch to the
        serial fallback, which still produces the identical report."""
        faults.install("crash@service.batch:executor=thread")
        try:
            batcher = BatchingValidator(jobs=2, max_retries=1)
            try:
                report = batcher.submit(record, graph).result(timeout=60)
            finally:
                batcher.close()
        finally:
            faults.uninstall()
        assert canonical(report) == expected
        executors = [entry["executor"] for entry in batcher.recovery_log]
        assert executors.count("thread") == 2  # first try + one retry

    def test_total_failure_is_worker_failure_error(self, record, graph):
        faults.install("crash@service.batch")
        try:
            batcher = BatchingValidator(jobs=2, max_retries=0)
            try:
                future = batcher.submit(record, graph)
                with pytest.raises(WorkerFailureError):
                    future.result(timeout=60)
            finally:
                batcher.close()
        finally:
            faults.uninstall()

    def test_graceful_close_drains_admitted_requests(self, record, graph, expected):
        faults.install("delay@service.batch:seconds=0.1,times=2")
        try:
            batcher = BatchingValidator(jobs=2, max_batch=2)
            futures = [batcher.submit(record, graph) for _ in range(6)]
            batcher.close()  # returns only after the queue is drained
        finally:
            faults.uninstall()
        for future in futures:
            assert future.done()
            assert canonical(future.result()) == expected
        with pytest.raises(ServiceError, match="shutting down"):
            batcher.submit(record, graph)


# --------------------------------------------------------------------------- #
# HTTP lifecycle
# --------------------------------------------------------------------------- #


@pytest.fixture
def service(tmp_path):
    thread = ServiceThread(registry_dir=str(tmp_path / "reg"), port=0)
    host, port = thread.start()
    client = ServiceClient(host, port)
    yield client, thread
    client.close()
    thread.stop()


class TestHttpService:
    def test_register_validate_roundtrip(self, service, graph, expected):
        client, _thread = service
        status, body = client.register("acme", "users", SDL)
        assert status == 200 and body["version"] == 1
        status, report = client.validate("acme", "users", graph)
        assert status == 200
        assert json.dumps(report, sort_keys=True) == expected

    def test_concurrent_http_clients_byte_identical(self, service, graph, expected):
        client, thread = service
        client.register("acme", "users", SDL)
        host, port = thread.service.address
        outcomes: list[tuple[int, str]] = []
        lock = threading.Lock()

        def worker() -> None:
            with ServiceClient(host, port) as mine:
                for _ in range(3):
                    status, report = mine.validate("acme", "users", graph)
                    with lock:
                        outcomes.append(
                            (status, json.dumps(report, sort_keys=True))
                        )

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(outcomes) == 18
        assert all(status == 200 for status, _ in outcomes)
        assert {payload for _, payload in outcomes} == {expected}

    def test_deadline_partial_is_202(self, service, graph):
        client, _thread = service
        client.register("acme", "users", SDL)
        status, report = client.validate("acme", "users", graph, deadline=1e-9)
        assert status == 202
        assert report["complete"] is False
        assert report["verdict"] == "unknown"
        assert report["interruption"]["dimension"] == "deadline"

    def test_tenant_isolation_over_http(self, service, graph):
        client, _thread = service
        client.register("acme", "users", SDL)
        status, body = client.validate("evil", "users", graph)
        assert status == 404
        assert body["error"]["code"] == "E_SERVICE"
        status, listing = client.list_schemas("evil")
        assert status == 200 and listing["schemas"] == []

    def test_typed_input_errors(self, service):
        client, _thread = service
        status, body = client.register("acme", "broken", "type {{{{")
        assert status == 400 and body["error"]["code"] == "E_SYNTAX"
        status, body = client.request("POST", "/v1/validate", {"tenant": "t"})
        assert status == 400 and body["error"]["code"] == "E_SERVICE"
        status, body = client.request("GET", "/v1/nope")
        assert status == 405 and body["error"]["code"] == "E_SERVICE"

    def test_lint_sat_stats_endpoints(self, service, graph):
        client, _thread = service
        client.register("acme", "users", SDL)
        status, lint = client.lint("acme", "users")
        assert status == 200 and isinstance(lint["findings"], list)
        status, sat = client.sat("acme", "users")
        assert status == 200 and sat["report"]["sound"] is True
        client.validate("acme", "users", graph)
        status, stats = client.stats()
        assert status == 200
        assert stats["format"] == "pgschema-metrics"
        batching = stats["service"]["batching"]
        assert batching["requests"] >= 1
        tenants = stats["service"]["tenants"]
        assert tenants["acme"]["warm_plan_hits"] >= 1
        assert "service.coalesce_ratio" in stats["gauges"]

    def test_restart_reloads_registry(self, tmp_path, graph, expected):
        root = str(tmp_path / "persist")
        first = ServiceThread(registry_dir=root, port=0)
        host, port = first.start()
        with ServiceClient(host, port) as client:
            client.register("acme", "users", SDL)
            client.register("acme", "users", SDL)
        first.stop()
        second = ServiceThread(registry_dir=root, port=0)
        host, port = second.start()
        try:
            with ServiceClient(host, port) as client:
                status, listing = client.list_schemas("acme")
                assert listing["schemas"] == [{"name": "users", "versions": [1, 2]}]
                status, report = client.validate("acme", "users", graph, version=1)
                assert status == 200
                assert json.dumps(report, sort_keys=True) == expected
        finally:
            second.stop()

    def test_graceful_shutdown_answers_in_flight(self, tmp_path, graph, expected):
        """Requests submitted just before shutdown are drained, not dropped."""
        faults.install("delay@service.batch:seconds=0.1,times=1")
        try:
            thread = ServiceThread(port=0)
            host, port = thread.start()
            results: list[tuple[int, str]] = []

            def slow_call() -> None:
                with ServiceClient(host, port) as mine:
                    mine.register("acme", "users", SDL)
                    status, report = mine.validate("acme", "users", graph)
                    results.append((status, json.dumps(report, sort_keys=True)))

            caller = threading.Thread(target=slow_call)
            caller.start()
            time.sleep(0.05)  # let the request reach the delayed batch
            thread.stop()
            caller.join(timeout=30)
        finally:
            faults.uninstall()
        assert results == [(200, expected)]

    def test_port_collision_raises_service_error(self, service):
        _client, thread = service
        host, port = thread.service.address
        clash = ServiceThread(host=host, port=port)
        with pytest.raises(ServiceError, match="cannot bind"):
            clash.start()
