"""Differential testing: the implementations of Section 5 must agree.

* NaiveValidator, IndexedValidator and ParallelValidator (at every worker
  count) must produce *identical violation sets* on every input;
* FOValidator (the executable Theorem-1 encoding) must agree on the
  per-rule boolean verdicts.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fo import FOValidator
from repro.pg import PropertyGraph, freeze, random_graph
from repro.validation import IndexedValidator, NaiveValidator, ParallelValidator
from repro.workloads import conformant_graph, corrupt_graph, random_schema
from repro.workloads.paper_schemas import CORPUS

#: Worker counts the parallel engine joins the agreement matrix with.
PARALLEL_JOBS = (1, 2, 4)

SCHEMAS = {
    name: CORPUS[name].load()
    for name in ("user_session_edge_props", "library", "food_union", "food_interface")
}

LABEL_POOL = (
    "User",
    "UserSession",
    "Author",
    "Book",
    "BookSeries",
    "Publisher",
    "Person",
    "Pizza",
    "Pasta",
    "Food",
    "Ghost",
)
EDGE_POOL = (
    "user",
    "author",
    "favoriteBook",
    "relatedAuthor",
    "contains",
    "published",
    "favoriteFood",
    "weird",
)
PROP_POOL = ("id", "login", "title", "name", "certainty", "nicknames", "toppings")


def engines_agree(schema, graph):
    naive = NaiveValidator(schema).validate(graph)
    indexed = IndexedValidator(schema).validate(graph)
    assert naive.keys() == indexed.keys(), (
        naive.keys() ^ indexed.keys()
    )
    frozen = freeze(graph)
    for jobs in PARALLEL_JOBS:
        validator = ParallelValidator(schema, jobs=jobs)
        parallel = validator.validate(graph)
        assert parallel.keys() == indexed.keys(), (
            jobs,
            parallel.keys() ^ indexed.keys(),
        )
        # the columnar kernel must render the *same bytes* as the dict kernel
        columnar = validator.validate(frozen)
        assert [str(v) for v in columnar.violations] == [
            str(v) for v in parallel.violations
        ], jobs
    return indexed


def fo_agrees(schema, graph, indexed_report):
    fo_rules = FOValidator(schema).check_rules(graph)
    engine_bad = {violation.rule for violation in indexed_report.violations}
    fo_bad = {rule for rule, ok in fo_rules.items() if not ok}
    assert fo_bad == engine_bad, (fo_bad, engine_bad)


class TestRandomGraphs:
    @pytest.mark.parametrize("schema_name", sorted(SCHEMAS))
    @pytest.mark.parametrize("seed", range(5))
    def test_engines_and_fo_agree(self, schema_name, seed):
        schema = SCHEMAS[schema_name]
        graph = random_graph(
            14,
            20,
            node_labels=LABEL_POOL,
            edge_labels=EDGE_POOL,
            prop_names=PROP_POOL,
            prop_probability=0.6,
            seed=seed,
        )
        report = engines_agree(schema, graph)
        fo_agrees(schema, graph, report)

    @given(
        num_nodes=st.integers(min_value=0, max_value=16),
        num_edges=st.integers(min_value=0, max_value=24),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_engine_agreement_property(self, num_nodes, num_edges, seed):
        schema = SCHEMAS["library"]
        if num_nodes == 0:
            num_edges = 0
        graph = random_graph(
            num_nodes,
            num_edges,
            node_labels=LABEL_POOL,
            edge_labels=EDGE_POOL,
            prop_names=PROP_POOL,
            seed=seed,
        )
        engines_agree(schema, graph)


class TestRandomSchemas:
    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_on_generated_workloads(self, seed):
        schema = random_schema(
            num_object_types=5,
            num_interface_types=2,
            num_union_types=1,
            seed=seed,
        )
        graph = conformant_graph(schema, nodes_per_type=4, seed=seed)
        report = engines_agree(schema, graph)
        fo_agrees(schema, graph, report)


class TestCorruptions:
    RULES = ("SS1", "SS2", "SS4", "WS1", "WS3", "WS4", "DS1", "DS2", "DS5", "DS6", "DS7")

    @pytest.mark.parametrize("rule", RULES)
    def test_corruptions_keep_engines_agreeing(self, rule):
        schema = SCHEMAS["library"]
        from repro.workloads import library_graph

        base = library_graph(4, 6, num_series=1, num_publishers=2, seed=1)
        corrupted = corrupt_graph(base, schema, rule, seed=1)
        if corrupted is None:
            pytest.skip(f"no corruption opportunity for {rule} in this schema")
        report = engines_agree(schema, corrupted)
        assert rule in {violation.rule for violation in report.violations}


class TestEmptyGraph:
    @pytest.mark.parametrize("schema_name", sorted(SCHEMAS))
    def test_empty_graph(self, schema_name):
        schema = SCHEMAS[schema_name]
        report = engines_agree(schema, PropertyGraph())
        # an empty graph strongly satisfies every consistent schema
        assert report.conforms
        fo_agrees(schema, PropertyGraph(), report)


class TestParallelDeterminism:
    """Two parallel runs over the same input render byte-identical reports,
    regardless of worker count or executor (stable shard hash + canonical
    merge order)."""

    @pytest.mark.parametrize("rule", ("WS4", "DS1", "DS7"))
    def test_reports_are_byte_identical(self, rule):
        from repro.workloads import library_graph

        schema = SCHEMAS["library"]
        base = library_graph(4, 6, num_series=1, num_publishers=2, seed=1)
        corrupted = corrupt_graph(base, schema, rule, seed=1)
        if corrupted is None:
            pytest.skip(f"no corruption opportunity for {rule} in this schema")

        frozen = freeze(corrupted)

        def render(jobs, executor, graph=corrupted):
            report = ParallelValidator(schema, jobs=jobs, executor=executor).validate(
                graph
            )
            return "\n".join(str(violation) for violation in report.violations)

        reference = render(1, "serial")
        assert reference  # the corruption must actually produce violations
        for jobs in PARALLEL_JOBS:
            assert render(jobs, "serial") == reference, jobs
            assert render(jobs, "thread") == reference, jobs
            assert render(jobs, "serial", frozen) == reference, ("columnar", jobs)


class TestExtendedMode:
    def test_ep1_agreement_on_random_graphs(self):
        schema = SCHEMAS["user_session_edge_props"]
        naive = NaiveValidator(schema)
        indexed = IndexedValidator(schema)
        for seed in range(8):
            graph = random_graph(
                10,
                16,
                node_labels=("User", "UserSession"),
                edge_labels=("user",),
                prop_names=("certainty", "comment", "id"),
                prop_probability=0.4,
                seed=seed,
            )
            left = naive.validate(graph, mode="extended")
            right = indexed.validate(graph, mode="extended")
            assert left.keys() == right.keys(), seed
            parallel = ParallelValidator(schema, jobs=2).validate(
                graph, mode="extended"
            )
            assert parallel.keys() == right.keys(), seed

    def test_ep1_fires_only_in_extended_mode(self):
        from repro.pg import GraphBuilder

        schema = SCHEMAS["user_session_edge_props"]
        graph = (
            GraphBuilder()
            .node("u", "User", id="1", login="a")
            .node("s", "UserSession", id="2", startTime="t")
            .edge("s", "user", "u")  # missing mandatory certainty
            .graph()
        )
        strong = {v.rule for v in IndexedValidator(schema).validate(graph).violations}
        extended = {
            v.rule
            for v in IndexedValidator(schema).validate(graph, mode="extended").violations
        }
        assert "EP1" not in strong
        assert "EP1" in extended
