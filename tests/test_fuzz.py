"""Robustness fuzzing: the front end never crashes, it raises typed errors."""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.query_parser import parse_query
from repro.errors import GraphLoadError, ReproError
from repro.pg import GraphBuilder, loads_graph
from repro.schema import parse_schema
from repro.sdl import parse_document, print_document, tokenize
from repro.workloads.paper_schemas import CORPUS


@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.text(max_size=200))
def test_lexer_total(source):
    try:
        tokenize(source)
    except ReproError:
        pass  # typed failure is the contract


@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.text(max_size=200))
def test_parser_total_on_arbitrary_text(source):
    try:
        parse_document(source)
    except ReproError:
        pass


# token-soup fuzzing: grammar-adjacent garbage stresses the parser more
_tokens = st.sampled_from(
    [
        "type", "interface", "union", "enum", "scalar", "input", "schema",
        "directive", "implements", "on", "query",
        "{", "}", "(", ")", "[", "]", "!", ":", "=", "@", "|", "&", "...",
        "Name", "T", "Int", "String", '"text"', "3", "1.5", "true", "null",
        "RED", "$var", ",",
    ]
)


@settings(max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_tokens, max_size=40))
def test_parser_total_on_token_soup(parts):
    source = " ".join(parts)
    try:
        document = parse_document(source)
    except ReproError:
        return
    # whatever parsed must print and re-parse to the same AST
    assert parse_document(print_document(document)) == document


@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_tokens, max_size=40))
def test_schema_builder_total(parts):
    try:
        parse_schema(" ".join(parts))
    except ReproError:
        pass


@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.text(max_size=120))
def test_query_parser_total(source):
    try:
        parse_query(source)
    except ReproError:
        pass


names = st.text(
    alphabet="abcdefgABC_", min_size=1, max_size=8
).filter(lambda s: s[0].isalpha() or s[0] == "_")


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    labels=st.lists(names, min_size=1, max_size=4, unique=True),
    edges=st.lists(st.tuples(st.integers(0, 3), names, st.integers(0, 3)), max_size=6),
)
def test_inference_pipeline_total(labels, edges):
    """Arbitrary named graphs survive inference + self-validation."""
    from repro.inference import infer_schema
    from repro.validation import validate

    builder = GraphBuilder()
    node_ids = []
    for index, label in enumerate(labels):
        builder.node(f"n{index}", label)
        node_ids.append(f"n{index}")
    graph = builder.graph()
    for source_index, edge_label, target_index in edges:
        graph.add_edge(
            f"e{len(list(graph.edges))}",
            node_ids[source_index % len(node_ids)],
            node_ids[target_index % len(node_ids)],
            edge_label,
        )
    result = infer_schema(graph)
    assert validate(result.schema, graph).conforms


# --------------------------------------------------------------------------- #
# byte-mutation fuzzing: corrupt REAL documents, byte by byte
# --------------------------------------------------------------------------- #
#
# Random text rarely reaches the deep decoding paths (a fully-parsed prefix
# with one flipped brace, a truncated property map).  Mutating valid corpus
# documents does, and the contract is the same: a typed ReproError or a
# successful parse -- never AttributeError, KeyError, TypeError or
# RecursionError escaping to the caller.

_SDL_CORPUS = [entry.sdl for entry in CORPUS.values()]

_GRAPH_CORPUS = [
    json.dumps(
        {
            "nodes": [
                {"id": "u1", "label": "User", "properties": {"login": "alice"}},
                {"id": "u2", "label": "User", "properties": {"login": "bob"}},
                {"id": "p1", "label": "Post", "properties": {"score": 3.5}},
            ],
            "edges": [
                {"id": "e1", "source": "u1", "target": "u2", "label": "follows",
                 "properties": {"since": 2019}},
                {"id": "e2", "source": "u1", "target": "p1", "label": "wrote",
                 "properties": {}},
            ],
        }
    ),
    '{"nodes": [], "edges": []}',
    '{"nodes": [{"id": 1, "label": "T", "properties": {"xs": [1, 2, 3]}}]}',
]

_mutations = st.lists(
    st.tuples(
        st.sampled_from(("delete", "replace", "insert", "truncate", "duplicate")),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=8,
)


def _mutate(text: str, operations) -> str:
    data = bytearray(text.encode("utf-8"))
    for kind, position, value in operations:
        if not data:
            break
        index = position % len(data)
        if kind == "delete":
            del data[index]
        elif kind == "replace":
            data[index] = value
        elif kind == "insert":
            data.insert(index, value)
        elif kind == "truncate":
            del data[index:]
        else:  # duplicate a slice, stressing "unexpected repeated section"
            data[index:index] = data[index : index + 16]
    return data.decode("utf-8", errors="replace")


@settings(max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(document=st.sampled_from(_SDL_CORPUS), operations=_mutations)
def test_sdl_byte_mutation_corpus(document, operations):
    """Corrupted real schemas either parse or raise a typed ReproError."""
    try:
        parse_schema(_mutate(document, operations))
    except ReproError:
        pass


@settings(max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(document=st.sampled_from(_GRAPH_CORPUS), operations=_mutations)
def test_graph_json_byte_mutation_corpus(document, operations):
    """Corrupted graph documents either load or raise a typed ReproError."""
    try:
        loads_graph(_mutate(document, operations), source="<fuzz>")
    except ReproError:
        pass


@settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.text(max_size=200))
def test_graph_loader_total_on_arbitrary_text(text):
    """Arbitrary text never escapes loads_graph untyped."""
    try:
        loads_graph(text, source="<fuzz>")
    except ReproError:
        pass


def test_graph_loader_reports_json_position():
    try:
        loads_graph('{"nodes": [,]}', source="bad.json")
    except GraphLoadError as error:
        assert error.source == "bad.json"
        assert error.line == 1 and error.column is not None
        assert "bad.json" in str(error)
    else:  # pragma: no cover
        raise AssertionError("malformed JSON must raise GraphLoadError")


def test_deeply_nested_documents_raise_typed_errors():
    nested_json = '{"nodes": [{"id": 1, "label": "T", "properties": {"x": ' + (
        "[" * 5000
    ) + ("]" * 5000) + "}}]}"
    try:
        loads_graph(nested_json, source="<deep>")
    except ReproError:
        pass
    nested_sdl = "type T { f: " + "[" * 5000 + "Int" + "]" * 5000 + " }"
    try:
        parse_schema(nested_sdl)
    except ReproError:
        pass


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10**6))
def test_analyzer_preverdicts_sound_on_random_schemas(seed):
    """Every SAT/UNSAT claim the dataflow analyzer makes about a random
    schema must agree with the Theorem-3 tableau (abstention is free)."""
    from repro.analysis import sat_preverdicts
    from repro.satisfiability import SatisfiabilityChecker
    from repro.workloads import random_schema

    schema = random_schema(
        num_object_types=4,
        num_interface_types=2,
        num_union_types=1,
        attributes_per_type=1,
        relationships_per_type=2,
        directive_probability=0.5,
        seed=seed,
    )
    pre = sat_preverdicts(schema)
    oracle = SatisfiabilityChecker(
        schema, cache=False, lint_precheck=False, analysis_precheck=False
    )
    for type_name, claimed in sorted(pre.types.items()):
        verdict = oracle.check_type(type_name, find_witness=False)
        assert verdict.tableau_satisfiable == claimed, type_name
    for (type_name, field_name), claimed in sorted(pre.fields.items()):
        assert oracle.check_field(type_name, field_name) == claimed, (
            type_name,
            field_name,
        )
