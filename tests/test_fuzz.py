"""Robustness fuzzing: the front end never crashes, it raises typed errors."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.query_parser import parse_query
from repro.errors import ReproError
from repro.pg import GraphBuilder
from repro.schema import parse_schema
from repro.sdl import parse_document, print_document, tokenize


@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.text(max_size=200))
def test_lexer_total(source):
    try:
        tokenize(source)
    except ReproError:
        pass  # typed failure is the contract


@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.text(max_size=200))
def test_parser_total_on_arbitrary_text(source):
    try:
        parse_document(source)
    except ReproError:
        pass


# token-soup fuzzing: grammar-adjacent garbage stresses the parser more
_tokens = st.sampled_from(
    [
        "type", "interface", "union", "enum", "scalar", "input", "schema",
        "directive", "implements", "on", "query",
        "{", "}", "(", ")", "[", "]", "!", ":", "=", "@", "|", "&", "...",
        "Name", "T", "Int", "String", '"text"', "3", "1.5", "true", "null",
        "RED", "$var", ",",
    ]
)


@settings(max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_tokens, max_size=40))
def test_parser_total_on_token_soup(parts):
    source = " ".join(parts)
    try:
        document = parse_document(source)
    except ReproError:
        return
    # whatever parsed must print and re-parse to the same AST
    assert parse_document(print_document(document)) == document


@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_tokens, max_size=40))
def test_schema_builder_total(parts):
    try:
        parse_schema(" ".join(parts))
    except ReproError:
        pass


@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.text(max_size=120))
def test_query_parser_total(source):
    try:
        parse_query(source)
    except ReproError:
        pass


names = st.text(
    alphabet="abcdefgABC_", min_size=1, max_size=8
).filter(lambda s: s[0].isalpha() or s[0] == "_")


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    labels=st.lists(names, min_size=1, max_size=4, unique=True),
    edges=st.lists(st.tuples(st.integers(0, 3), names, st.integers(0, 3)), max_size=6),
)
def test_inference_pipeline_total(labels, edges):
    """Arbitrary named graphs survive inference + self-validation."""
    from repro.inference import infer_schema
    from repro.validation import validate

    builder = GraphBuilder()
    node_ids = []
    for index, label in enumerate(labels):
        builder.node(f"n{index}", label)
        node_ids.append(f"n{index}")
    graph = builder.graph()
    for source_index, edge_label, target_index in edges:
        graph.add_edge(
            f"e{len(list(graph.edges))}",
            node_ids[source_index % len(node_ids)],
            node_ids[target_index % len(node_ids)],
            edge_label,
        )
    result = infer_schema(graph)
    assert validate(result.schema, graph).conforms
