"""SDL printing: parse(print(ast)) is the identity."""

import random

import pytest

from repro.sdl import ast, parse_document, print_document, print_type, print_value
from repro.workloads.paper_schemas import CORPUS
from repro.workloads.schemas import random_schema_sdl


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_paper_corpus_round_trips(self, name):
        document = parse_document(CORPUS[name].sdl)
        assert parse_document(print_document(document)) == document

    @pytest.mark.parametrize("seed", range(10))
    def test_random_schemas_round_trip(self, seed):
        sdl = random_schema_sdl(6, 2, 1, 3, 2, 0.4, 0.4, random.Random(seed))
        document = parse_document(sdl)
        assert parse_document(print_document(document)) == document

    def test_descriptions_round_trip(self):
        source = '"top level" type T { "field" x(a: Int = 3): [Int!]! @required }'
        document = parse_document(source)
        assert parse_document(print_document(document)) == document

    def test_directive_definitions_round_trip(self):
        source = "directive @limit(n: Int!) on FIELD_DEFINITION | OBJECT"
        document = parse_document(source)
        assert parse_document(print_document(document)) == document


class TestPrintType:
    @pytest.mark.parametrize(
        "text", ["T", "T!", "[T]", "[T!]", "[T]!", "[T!]!", "[[T]!]"]
    )
    def test_type_text(self, text):
        from repro.sdl.parser import parse_type

        assert print_type(parse_type(text)) == text


class TestPrintValue:
    @pytest.mark.parametrize(
        "node, text",
        [
            (ast.IntValue(3), "3"),
            (ast.FloatValue(2.5), "2.5"),
            (ast.StringValue('a"b'), '"a\\"b"'),
            (ast.BooleanValue(True), "true"),
            (ast.NullValue(), "null"),
            (ast.EnumValue("RED"), "RED"),
            (ast.ListValue((ast.IntValue(1),)), "[1]"),
            (ast.ObjectValue((("k", ast.IntValue(1)),)), "{k: 1}"),
            (ast.Variable("v"), "$v"),
        ],
    )
    def test_value_text(self, node, text):
        assert print_value(node) == text

    def test_string_escapes_control_characters(self):
        assert print_value(ast.StringValue("a\nb\tc")) == '"a\\nb\\tc"'
