"""The SAT substrate: CNF, DIMACS, DPLL."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.sat import (
    CNF,
    is_satisfiable,
    parse_dimacs,
    pigeonhole,
    random_3sat_at_ratio,
    random_ksat,
    solve,
    to_dimacs,
)


def brute_force(cnf: CNF) -> bool:
    return any(
        cnf.evaluate(dict(zip(cnf.variables, bits)))
        for bits in itertools.product([False, True], repeat=cnf.num_vars)
    )


class TestCNF:
    def test_of_infers_num_vars(self):
        cnf = CNF.of([[1, -3], [2]])
        assert cnf.num_vars == 3
        assert cnf.num_clauses == 2

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            CNF(2, ((1, 0),))

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(ValueError):
            CNF(2, ((3,),))

    def test_evaluate(self):
        cnf = CNF.of([[1, 2], [-1]])
        assert cnf.evaluate({1: False, 2: True})
        assert not cnf.evaluate({1: True, 2: True})

    def test_str(self):
        assert str(CNF.of([[1, -2]])) == "(x1 ∨ ¬x2)"
        assert str(CNF.of([])) == "⊤"


class TestSolver:
    def test_empty_formula_sat(self):
        assert solve(CNF.of([])).satisfiable

    def test_empty_clause_unsat(self):
        assert not solve(CNF(1, ((),))).satisfiable

    def test_unit_conflict(self):
        assert not solve(CNF.of([[1], [-1]])).satisfiable

    def test_simple_sat_with_model(self):
        cnf = CNF.of([[1, 2], [-1, 2], [1, -2]])
        result = solve(cnf)
        assert result.satisfiable
        assert cnf.evaluate(result.assignment)

    def test_model_covers_all_variables(self):
        result = solve(CNF.of([[1]], num_vars=5))
        assert set(result.assignment) == {1, 2, 3, 4, 5}

    def test_pigeonhole_unsat(self):
        for holes in (2, 3, 4):
            assert not solve(pigeonhole(holes)).satisfiable

    def test_stats_populated(self):
        result = solve(random_ksat(8, 34, seed=5))
        stats = result.stats
        assert stats.decisions >= 0 and stats.propagations >= 0

    @pytest.mark.parametrize("seed", range(15))
    def test_against_brute_force(self, seed):
        import random

        rng = random.Random(seed)
        cnf = random_ksat(6, rng.randint(4, 32), k=3, seed=seed)
        result = solve(cnf)
        assert result.satisfiable == brute_force(cnf)
        if result.satisfiable:
            assert cnf.evaluate(result.assignment)

    @given(
        num_vars=st.integers(min_value=1, max_value=7),
        clause_count=st.integers(min_value=0, max_value=24),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_solver_sound_and_complete_property(self, num_vars, clause_count, seed):
        k = min(3, num_vars)
        cnf = random_ksat(num_vars, clause_count, k=k, seed=seed)
        result = solve(cnf)
        assert result.satisfiable == brute_force(cnf)

    def test_is_satisfiable_wrapper(self):
        assert is_satisfiable(CNF.of([[1]]))


class TestGenerators:
    def test_random_ksat_shape(self):
        cnf = random_ksat(10, 42, k=3, seed=0)
        assert cnf.num_clauses == 42
        assert all(len(clause) == 3 for clause in cnf.clauses)
        assert all(
            len({abs(literal) for literal in clause}) == 3 for clause in cnf.clauses
        )

    def test_k_larger_than_vars_rejected(self):
        with pytest.raises(ValueError):
            random_ksat(2, 5, k=3)

    def test_ratio_generator(self):
        cnf = random_3sat_at_ratio(10, ratio=4.26, seed=0)
        assert cnf.num_clauses == 43

    def test_determinism(self):
        assert random_ksat(8, 20, seed=7).clauses == random_ksat(8, 20, seed=7).clauses

    def test_pigeonhole_shape(self):
        cnf = pigeonhole(3)
        assert cnf.num_vars == 12
        assert cnf.num_clauses == 4 + 3 * 6


class TestDimacs:
    def test_round_trip(self):
        cnf = random_ksat(6, 14, seed=1)
        assert parse_dimacs(to_dimacs(cnf)).clauses == cnf.clauses

    def test_comments_and_blank_lines(self):
        text = "c comment\n\np cnf 2 1\nc mid\n1 -2 0\n"
        cnf = parse_dimacs(text)
        assert cnf.num_vars == 2
        assert cnf.clauses == ((1, -2),)

    def test_clause_across_lines(self):
        cnf = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert cnf.clauses == ((1, 2, 3),)

    def test_headerless(self):
        cnf = parse_dimacs("1 -2 0\n2 0")
        assert cnf.num_vars == 2
        assert cnf.num_clauses == 2

    def test_bad_header(self):
        with pytest.raises(ReproError):
            parse_dimacs("p wrong 1 1\n1 0")

    def test_clause_count_mismatch(self):
        with pytest.raises(ReproError):
            parse_dimacs("p cnf 1 2\n1 0\n")

    def test_comment_in_output(self):
        assert to_dimacs(CNF.of([[1]]), comment="hi\nthere").startswith("c hi\nc there\n")
