"""Continuous perf tracking: store, detector soundness, scenarios, CLI.

The detector tests are the load-bearing ones: a degradation checker that
cries wolf (flags identical or merely-resampled distributions) or stays
silent on a real 1.5x/3x slowdown would make the CI gate worthless in
both directions.  Samples here are synthetic -- the detector is a pure
function of its inputs, so no actual timing (and no timing flakiness)
is involved; the end-to-end CLI tests inject a deterministic delay
through the fault harness instead of relying on machine speed.
"""

import json
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.cli import main
from repro.obs.export import check_schema
from repro.perf import (
    PROFILE_SCHEMA,
    PerfStoreError,
    Profile,
    ProfileStore,
    SCENARIOS,
    Verdict,
    adversarial_families,
    compare_samples,
    diff_runs,
    environment_fingerprint,
    perf_summary,
    rank_sum_p_value,
    record_profiles,
    render_diff_markdown,
    render_trend_markdown,
    run_scenario,
    select_scenarios,
    trend_rows,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_profile(scenario="s", run=1, commit="c1", samples=(0.01, 0.011, 0.012),
                 env=None, **kwargs):
    return Profile(
        commit=commit,
        run=run,
        scenario=scenario,
        family=scenario.split(".")[0],
        samples=tuple(samples),
        env=env or environment_fingerprint(),
        **kwargs,
    )


# --------------------------------------------------------------------------- #
# detector soundness
# --------------------------------------------------------------------------- #


class TestDetectorSoundness:
    def test_identical_batches_are_no_change(self):
        samples = (0.010, 0.011, 0.010, 0.012, 0.011)
        result = compare_samples(samples, samples)
        assert result.verdict == Verdict.NO_CHANGE
        assert result.severity is None

    @given(st.lists(st.floats(0.005, 0.1), min_size=3, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_identical_batches_never_degrade(self, samples):
        result = compare_samples(samples, samples)
        assert result.verdict == Verdict.NO_CHANGE

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_resampled_same_distribution_never_degrades(self, seed):
        # two draws from one distribution must never confirm a degradation
        rng = random.Random(seed)
        base = 0.050
        baseline = [base + rng.uniform(-0.002, 0.002) for _ in range(5)]
        target = [base + rng.uniform(-0.002, 0.002) for _ in range(5)]
        result = compare_samples(baseline, target)
        assert result.verdict != Verdict.DEGRADATION

    def test_1_5x_slowdown_is_major_degradation(self):
        baseline = [0.0100, 0.0102, 0.0101, 0.0103, 0.0099]
        target = [value * 1.5 for value in baseline]
        result = compare_samples(baseline, target)
        assert result.verdict == Verdict.DEGRADATION
        assert result.severity == "major"
        assert result.p_value is not None and result.p_value <= 0.05

    def test_3x_slowdown_is_severe_degradation(self):
        baseline = [0.0100, 0.0102, 0.0101, 0.0103, 0.0099]
        target = [value * 3.0 for value in baseline]
        result = compare_samples(baseline, target)
        assert result.verdict == Verdict.DEGRADATION
        assert result.severity == "severe"

    def test_mild_slowdown_below_ratio_is_no_change(self):
        baseline = [0.0100, 0.0102, 0.0101, 0.0103, 0.0099]
        target = [value * 1.1 for value in baseline]
        assert compare_samples(baseline, target).verdict == Verdict.NO_CHANGE

    def test_big_speedup_is_optimization(self):
        baseline = [0.0300, 0.0302, 0.0301, 0.0303, 0.0299]
        target = [value / 2 for value in baseline]
        result = compare_samples(baseline, target)
        assert result.verdict == Verdict.OPTIMIZATION

    def test_jitter_floor_masks_micro_deltas(self):
        # a 2x ratio entirely under min_delta_s must stay NoChange
        baseline = [0.0005, 0.0005, 0.0005]
        target = [0.0010, 0.0010, 0.0010]
        assert compare_samples(baseline, target).verdict == Verdict.NO_CHANGE

    def test_tripped_screen_without_significance_is_maybe(self):
        # medians differ 1.5x but the batches interleave: rank test can't
        # confirm, so the verdict must stay Maybe (reported, not gating)
        baseline = [0.010, 0.030, 0.010, 0.030]
        target = [0.030, 0.010, 0.030, 0.010, 0.030]
        result = compare_samples(baseline, target)
        assert result.verdict in (Verdict.MAYBE_DEGRADATION, Verdict.NO_CHANGE)

    @given(
        st.lists(st.floats(0.005, 0.05), min_size=3, max_size=8),
        st.lists(st.floats(0.005, 0.05), min_size=3, max_size=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_comparisons_are_byte_identical_across_reruns(self, baseline, target):
        runs = [compare_samples(baseline, target) for _ in range(3)]
        payloads = {json.dumps(run.to_json(), sort_keys=True) for run in runs}
        assert len(payloads) == 1
        assert runs[0].verdict in Verdict.ALL

    def test_rank_sum_exact_matches_known_value(self):
        # fully separated 5-vs-5: the observed rank sum is the unique
        # maximum, so the exact mid-p is 1 / (2 * C(10,5)) = 1/504
        baseline = [1.0, 2.0, 3.0, 4.0, 5.0]
        target = [6.0, 7.0, 8.0, 9.0, 10.0]
        assert rank_sum_p_value(baseline, target) == pytest.approx(1 / 504)

    def test_rank_sum_all_tied_is_half(self):
        assert rank_sum_p_value([1.0] * 5, [1.0] * 5) == pytest.approx(0.5)

    def test_normal_approximation_agrees_in_direction(self):
        # beyond the exact-state cap: a clear shift still confirms
        baseline = [0.010 + 0.0001 * i for i in range(40)]
        target = [value * 2 for value in baseline]
        result = compare_samples(baseline, target)
        assert result.verdict == Verdict.DEGRADATION
        assert result.p_value is not None and result.p_value < 0.001

    def test_empty_batches_rejected(self):
        with pytest.raises(ValueError):
            compare_samples([], [0.01])
        with pytest.raises(ValueError):
            rank_sum_p_value([0.01], [])


# --------------------------------------------------------------------------- #
# profile store
# --------------------------------------------------------------------------- #


class TestProfileStore:
    def test_round_trip(self, tmp_path):
        store = ProfileStore(str(tmp_path / ".perf"))
        written = [make_profile("a.one", metrics={"counters": {"x": 1}}),
                   make_profile("b.two", samples=(0.5,))]
        store.append(written)
        loaded = store.profiles()
        assert [p.scenario for p in loaded] == ["a.one", "b.two"]
        assert loaded[0].metrics == {"counters": {"x": 1}}
        assert loaded[0].samples == written[0].samples
        assert store.last_run() == 1
        assert store.commits() == ["c1"]

    def test_records_conform_to_golden_schema(self, tmp_path):
        golden_path = os.path.join(
            REPO, "docs", "schemas", "perf_profile.schema.json"
        )
        with open(golden_path) as handle:
            golden = json.load(handle)
        assert golden == PROFILE_SCHEMA, (
            "docs/schemas/perf_profile.schema.json has drifted from "
            "repro.perf.store.PROFILE_SCHEMA -- regenerate the golden file"
        )
        assert check_schema(make_profile().to_json(), golden) == []

    def test_append_refuses_invalid_profile(self, tmp_path):
        store = ProfileStore(str(tmp_path / ".perf"))
        bad = make_profile(env={"digest": "x"})  # missing fingerprint fields
        with pytest.raises(PerfStoreError):
            store.append([bad])
        assert not store.exists()

    def test_torn_tail_is_ignored_then_healed(self, tmp_path):
        store = ProfileStore(str(tmp_path / ".perf"))
        store.append([make_profile("a.one")])
        with open(store.data_path, "a") as handle:
            handle.write('{"format": "pgschema-perf-prof')  # torn append
        assert [p.scenario for p in store.profiles()] == ["a.one"]
        store.append([make_profile("b.two", run=2)])
        loaded = store.profiles()
        assert [p.scenario for p in loaded] == ["a.one", "b.two"]
        with open(store.data_path) as handle:
            assert all(json.loads(line) for line in handle)

    def test_mid_file_corruption_raises_with_line(self, tmp_path):
        store = ProfileStore(str(tmp_path / ".perf"))
        store.append([make_profile("a.one")])
        with open(store.data_path, "a") as handle:
            handle.write("not json\n")
            handle.write(json.dumps(make_profile("b.two").to_json()) + "\n")
        with pytest.raises(PerfStoreError, match=":2"):
            store.profiles()

    def test_index_rebuilt_when_stale(self, tmp_path):
        store = ProfileStore(str(tmp_path / ".perf"))
        store.append([make_profile("a.one")])
        with open(store.index_path, "w") as handle:
            handle.write('{"format": "pgschema-perf-index", "profiles": 99}')
        assert store.summary()["profiles"] == 1
        with open(store.index_path) as handle:
            assert json.load(handle)["profiles"] == 1

    def test_empty_store_summary(self, tmp_path):
        summary = ProfileStore(str(tmp_path / "nope")).summary()
        assert summary["profiles"] == 0
        assert summary["last_commit"] is None

    def test_profile_requires_samples(self):
        with pytest.raises(PerfStoreError):
            make_profile(samples=())

    def test_environment_fingerprint_is_stable(self):
        first, second = environment_fingerprint(), environment_fingerprint()
        assert first == second
        assert len(first["digest"]) == 16


# --------------------------------------------------------------------------- #
# scenario registry
# --------------------------------------------------------------------------- #


class TestScenarios:
    def test_at_least_four_adversarial_families(self):
        families = adversarial_families()
        assert len(families) >= 4
        assert {
            "adversarial.lattice",
            "adversarial.union_fanout",
            "adversarial.key_collision",
            "adversarial.cardinality_web",
        } <= set(families)

    def test_registry_spans_every_engine(self):
        families = {entry.family for entry in SCENARIOS.values()}
        assert {
            "parse", "lint", "analysis", "validate", "sat", "cdc", "service"
        } <= families
        ids = set(SCENARIOS)
        assert {
            "validate.indexed", "validate.parallel",
            "validate.columnar", "validate.stream",
        } <= ids

    def test_select_by_prefix_family_and_exact(self):
        assert [e.id for e in select_scenarios(["parse.corpus"])] == ["parse.corpus"]
        assert len(select_scenarios(["validate."])) == 4
        assert all(
            entry.adversarial for entry in select_scenarios(["adversarial"])
        )
        with pytest.raises(ValueError, match="unknown scenario"):
            select_scenarios(["nope"])

    @pytest.mark.parametrize("scenario_id", sorted(SCENARIOS))
    def test_every_scenario_runs_quick(self, scenario_id):
        samples, metrics = run_scenario(
            SCENARIOS[scenario_id], quick=True, repeats=2
        )
        assert len(samples) == 2
        assert all(value >= 0 for value in samples)
        assert isinstance(metrics, dict)

    def test_run_scenario_restores_prior_observation(self):
        with obs.observed(metrics=True) as outer:
            run_scenario(SCENARIOS["parse.corpus"], quick=True, repeats=1)
            assert obs.active() is not None
            assert obs.active().registry is outer.registry
        assert obs.active() is None

    def test_record_profiles_stamps_run_and_meta(self, tmp_path):
        store = ProfileStore(str(tmp_path / ".perf"))
        profiles = record_profiles(
            commit="abc", run=1, quick=True, repeats=2, only=["parse.corpus"]
        )
        store.append(profiles)
        (loaded,) = store.profiles()
        assert loaded.run == 1 and loaded.commit == "abc" and loaded.quick
        assert loaded.meta["repeats"] == 2
        assert loaded.metrics is not None


# --------------------------------------------------------------------------- #
# reports
# --------------------------------------------------------------------------- #


class TestReports:
    def fill(self, tmp_path, target_scale=1.0):
        store = ProfileStore(str(tmp_path / ".perf"))
        base = (0.010, 0.0102, 0.0101, 0.0103, 0.0099)
        store.append([
            make_profile("a.one", run=1, commit="c1", samples=base),
            make_profile("b.two", run=1, commit="c1", samples=base),
        ])
        store.append([
            make_profile(
                "a.one", run=2, commit="c2",
                samples=tuple(v * target_scale for v in base),
            ),
            make_profile("b.two", run=2, commit="c2", samples=base),
        ])
        return store

    def test_diff_flags_scaled_scenario_only(self, tmp_path):
        report = diff_runs(self.fill(tmp_path, target_scale=2.0))
        assert report.has_degradation
        assert [entry.scenario for entry in report.degradations] == ["a.one"]
        by_name = {entry.scenario: entry for entry in report.entries}
        assert by_name["b.two"].comparison.verdict == Verdict.NO_CHANGE
        rendered = render_diff_markdown(report)
        assert "Degradation (major)" in rendered and "| a.one |" in rendered

    def test_diff_unperturbed_is_all_no_change(self, tmp_path):
        report = diff_runs(self.fill(tmp_path))
        assert not report.has_degradation
        assert report.verdict_counts()[Verdict.NO_CHANGE] == 2

    def test_diff_reports_added_removed_incomparable(self, tmp_path):
        store = ProfileStore(str(tmp_path / ".perf"))
        other_env = dict(environment_fingerprint(), digest="ffff000011112222")
        store.append([
            make_profile("gone", run=1),
            make_profile("both", run=1),
        ])
        store.append([
            make_profile("both", run=2, env=other_env),
            make_profile("new", run=2),
        ])
        statuses = {e.scenario: e.status for e in diff_runs(store).entries}
        assert statuses == {
            "gone": "removed", "both": "incomparable", "new": "added"
        }

    def test_diff_unknown_run_raises(self, tmp_path):
        with pytest.raises(ValueError, match="baseline run 7"):
            diff_runs(self.fill(tmp_path), baseline_run=7)

    def test_trend_rows_and_render(self, tmp_path):
        history = trend_rows(self.fill(tmp_path, target_scale=2.0))
        rows = history["a.one"]
        assert [row["run"] for row in rows] == [1, 2]
        assert rows[0]["delta_pct"] is None
        assert rows[1]["delta_pct"] == pytest.approx(100.0, abs=1.0)
        rendered = render_trend_markdown(history)
        assert "### a.one" in rendered and "+100.0%" in rendered
        with pytest.raises(ValueError, match="no recorded profiles"):
            trend_rows(ProfileStore(str(tmp_path / ".perf")), "missing")

    def test_perf_summary_shapes(self, tmp_path):
        summary = perf_summary(self.fill(tmp_path, target_scale=2.0))
        assert summary["scenarios"] == 2
        assert summary["last_commit"] == "c2"
        assert summary["verdicts"]["degradations"] == ["a.one"]
        empty = perf_summary(ProfileStore(str(tmp_path / "none")))
        assert empty["profiles"] == 0 and empty["verdicts"] is None


# --------------------------------------------------------------------------- #
# CLI end to end
# --------------------------------------------------------------------------- #


@pytest.fixture
def perf_store_path(tmp_path):
    return str(tmp_path / ".perf")


def record_args(store, commit, *extra):
    return [
        "perf", "record", "--store", store, "--quick", "--repeats", "3",
        "--commit", commit, "--scenario", "validate.parallel",
        "--scenario", "parse.corpus", *extra,
    ]


class TestPerfCLI:
    def test_record_diff_check_clean(self, perf_store_path, capsys):
        assert main(record_args(perf_store_path, "base")) == 0
        assert "recorded run 1 at base" in capsys.readouterr().out
        assert main(record_args(perf_store_path, "head", "--json")) == 0
        assert json.loads(capsys.readouterr().out)["run"] == 2

        assert main(["perf", "diff", "--store", perf_store_path]) == 0
        assert "perf diff: run 1 -> run 2" in capsys.readouterr().out
        assert main(["perf", "check", "--store", perf_store_path]) == 0
        assert "perf check: OK" in capsys.readouterr().out

    def test_injected_delay_trips_the_gate(self, perf_store_path, capsys):
        from repro.resilience import faults

        assert main(record_args(perf_store_path, "base")) == 0
        faults.install("delay@parallel.merge:seconds=0.03")
        try:
            assert main(record_args(perf_store_path, "slow")) == 0
        finally:
            faults.uninstall()
        capsys.readouterr()

        # the gate and its verdict are deterministic across reruns: the
        # detector is a pure function of the recorded samples
        payloads = set()
        for _ in range(3):
            assert main(["perf", "check", "--store", perf_store_path,
                         "--json"]) == 1
            out = capsys.readouterr()
            payloads.add(out.out)
            assert "perf check: FAIL" in out.err
            assert "validate.parallel" in out.err
        assert len(payloads) == 1
        report = json.loads(payloads.pop())
        assert report["has_degradation"]
        by_name = {e["scenario"]: e for e in report["entries"]}
        degraded = by_name["validate.parallel"]["comparison"]
        assert degraded["verdict"] == Verdict.DEGRADATION
        assert degraded["ratio"] > 10
        assert by_name["parse.corpus"]["comparison"]["verdict"] != (
            Verdict.DEGRADATION
        )

    def test_trend_and_scenario_filter(self, perf_store_path, capsys):
        assert main(record_args(perf_store_path, "base")) == 0
        assert main(record_args(perf_store_path, "head")) == 0
        capsys.readouterr()
        assert main(["perf", "trend", "--store", perf_store_path,
                     "--scenario", "parse.corpus", "--json"]) == 0
        history = json.loads(capsys.readouterr().out)
        assert list(history) == ["parse.corpus"]
        assert len(history["parse.corpus"]) == 2

    def test_unknown_scenario_is_usage_error(self, perf_store_path, capsys):
        assert main(["perf", "record", "--store", perf_store_path,
                     "--scenario", "nope"]) == 2
        assert "error[E_PERF]" in capsys.readouterr().err

    def test_check_on_empty_store_is_usage_error(self, perf_store_path, capsys):
        assert main(["perf", "check", "--store", perf_store_path]) == 2
        assert "error[E_PERF]" in capsys.readouterr().err

    def test_stats_json_includes_perf_block(self, perf_store_path, tmp_path,
                                            capsys):
        assert main(record_args(perf_store_path, "base")) == 0
        graph_path = tmp_path / "graph.json"
        graph_path.write_text('{"nodes": [], "edges": []}')
        capsys.readouterr()
        assert main(["stats", str(graph_path), "--json",
                     "--perf-store", perf_store_path]) == 0
        payload = json.loads(capsys.readouterr().out)
        perf = payload["perf"]
        assert perf["runs"] == 1 and perf["scenarios"] == 2
        assert perf["last_commit"] == "base"
        assert perf["verdicts"] is None  # one run: nothing to diff yet
        # the metrics schema tolerates the extra top-level key
        with open(os.path.join(REPO, "docs", "schemas",
                               "metrics.schema.json")) as handle:
            assert check_schema(payload, json.load(handle)) == []


# --------------------------------------------------------------------------- #
# service surface
# --------------------------------------------------------------------------- #


def test_service_stats_includes_perf_block(tmp_path):
    from repro.service import ServiceClient, ServiceThread

    store = ProfileStore(str(tmp_path / ".perf"))
    store.append([make_profile("a.one", commit="deadbeef")])
    thread = ServiceThread(port=0, perf_store=store.root)
    host, port = thread.start()
    try:
        with ServiceClient(host, port) as client:
            status, payload = client.request("GET", "/v1/stats", None)
    finally:
        thread.stop()
    assert status == 200
    assert payload["perf"]["profiles"] == 1
    assert payload["perf"]["last_commit"] == "deadbeef"


# --------------------------------------------------------------------------- #
# benchmark collector stamp
# --------------------------------------------------------------------------- #


def test_bench_artifacts_carry_the_fingerprint(tmp_path, monkeypatch):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "collect_results",
        os.path.join(REPO, "benchmarks", "collect_results.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.chdir(tmp_path)
    module.write_bench_json("unit", {"series": [1, 2, 3]})
    with open(tmp_path / "BENCH_unit.json") as handle:
        payload = json.load(handle)
    assert payload["env"] == environment_fingerprint()
    assert payload["series"] == [1, 2, 3]
