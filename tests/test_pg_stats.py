"""Graph profiling statistics."""

from repro.pg import GraphBuilder, PropertyGraph, profile_graph
from repro.workloads import library_graph


class TestProfile:
    def test_empty_graph(self):
        profile = profile_graph(PropertyGraph())
        assert profile.num_nodes == 0
        assert profile.num_edges == 0
        assert profile.summary_lines() == ["nodes: 0, edges: 0"]

    def test_label_histogram(self):
        graph = GraphBuilder().nodes("A", "a1", "a2").nodes("B", "b1").graph()
        profile = profile_graph(graph)
        assert profile.node_labels["A"].count == 2
        assert profile.node_labels["B"].count == 1

    def test_property_coverage_and_kinds(self):
        graph = (
            GraphBuilder()
            .node("a1", "A", x=1)
            .node("a2", "A", x=2.5)
            .node("a3", "A")
            .graph()
        )
        prop = profile_graph(graph).node_labels["A"].properties["x"]
        assert prop.count == 2
        assert prop.distinct == 2
        assert prop.kinds == {"Int", "Float"}
        assert abs(prop.coverage(3) - 2 / 3) < 1e-9

    def test_distinct_counts_type_strict(self):
        graph = (
            GraphBuilder()
            .node("a1", "A", x=1)
            .node("a2", "A", x=1)
            .node("a3", "A", x=True)
            .graph()
        )
        prop = profile_graph(graph).node_labels["A"].properties["x"]
        assert prop.distinct == 2  # 1 twice, True once (type-strict)

    def test_array_kind(self):
        graph = GraphBuilder().node("a", "A", xs=[1, "two"]).graph()
        prop = profile_graph(graph).node_labels["A"].properties["xs"]
        assert prop.kinds == {"[Int/String]"}

    def test_edge_statistics(self):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "B")
            .edge("a", "r", "b", {"w": 1.0})
            .edge("a", "r", "b")
            .edge("a", "r", "a")
            .graph()
        )
        edge_profile = profile_graph(graph).edge_labels["r"]
        assert edge_profile.count == 3
        assert edge_profile.max_out_degree == 3
        assert edge_profile.max_in_degree == 2
        assert edge_profile.loops == 1
        assert edge_profile.endpoint_pairs == {("A", "B"): 2, ("A", "A"): 1}
        assert edge_profile.properties["w"].count == 1

    def test_summary_mentions_everything(self):
        graph = library_graph(3, 4, 1, 1, seed=0)
        text = "\n".join(profile_graph(graph).summary_lines())
        for token in ("Author", "Book", "published", "title", "max out-degree"):
            assert token in text
