"""The SAT encoding of bounded Property Graph satisfiability."""

import pytest

from repro.satisfiability import BoundedModelFinder, SATModelFinder
from repro.schema import parse_schema
from repro.validation import validate
from repro.workloads import CORPUS, random_schema


class TestAgainstBacktrackingFinder:
    """The two finite-model engines must agree type by type."""

    @pytest.mark.parametrize(
        "name",
        [
            "user_session_edge_props",
            "library",
            "food_union",
            "food_interface",
            "vehicles",
            "example_6_1_a",
            "diagram_b",
            "diagram_c",
        ],
    )
    def test_corpus_agreement(self, name):
        schema = CORPUS[name].load()
        sat_finder = SATModelFinder(schema)
        backtracking = BoundedModelFinder(schema)
        for object_type in sorted(schema.object_types):
            via_sat = sat_finder.find_model(object_type, max_nodes=4)
            via_backtracking = backtracking.find_model(object_type, max_nodes=4)
            assert via_sat.satisfiable == via_backtracking.satisfiable, (
                name,
                object_type,
            )
            if via_sat.satisfiable:
                assert validate(schema, via_sat.witness).conforms

    @pytest.mark.parametrize("seed", range(4))
    def test_random_schema_agreement(self, seed):
        schema = random_schema(
            num_object_types=4,
            num_interface_types=1,
            num_union_types=1,
            directive_probability=0.3,
            seed=seed,
        )
        sat_finder = SATModelFinder(schema)
        backtracking = BoundedModelFinder(schema)
        for object_type in sorted(schema.object_types):
            via_sat = sat_finder.find_model(object_type, max_nodes=3)
            via_backtracking = backtracking.find_model(object_type, max_nodes=3)
            assert via_sat.satisfiable == via_backtracking.satisfiable, (
                seed,
                object_type,
            )


class TestWitnessProperties:
    def test_minimal_witness(self):
        schema = CORPUS["user_session_edge_props"].load()
        result = SATModelFinder(schema).find_model("UserSession", max_nodes=4)
        assert result.satisfiable
        assert result.witness.num_nodes == 2  # session + user, found at k=2

    def test_witness_validates(self):
        schema = CORPUS["library"].load()
        result = SATModelFinder(schema).find_model("BookSeries", max_nodes=4)
        assert result.satisfiable
        assert validate(schema, result.witness).conforms
        assert result.witness.nodes_with_label("BookSeries")

    def test_unsatisfiable_type(self):
        schema = CORPUS["diagram_c"].load()
        result = SATModelFinder(schema).find_model("OT2", max_nodes=4)
        assert not result.satisfiable

    def test_infinite_only_model_not_found(self):
        schema = CORPUS["diagram_b"].load()
        result = SATModelFinder(schema).find_model("OT2", max_nodes=5)
        assert not result.satisfiable  # finite semantics: no witness exists

    def test_unknown_type(self):
        schema = CORPUS["library"].load()
        assert not SATModelFinder(schema).find_model("Ghost", max_nodes=3).satisfiable

    def test_unique_for_target_respected(self):
        schema = parse_schema(
            """
            type Hub { spokes: [Leaf] @required @uniqueForTarget }
            type Leaf { hubs: Hub }
            """
        )
        result = SATModelFinder(schema).find_model("Hub", max_nodes=4)
        assert result.satisfiable
        witness = result.witness
        for leaf in witness.nodes_with_label("Leaf"):
            assert len(witness.in_edges(leaf, "spokes")) <= 1

    def test_no_loops_respected(self):
        schema = parse_schema("type A { next: A @required @noLoops }")
        # one node cannot satisfy (needs a non-loop edge); two can cycle
        finder = SATModelFinder(schema)
        assert not finder.find_model("A", max_nodes=1).satisfiable
        result = finder.find_model("A", max_nodes=2)
        assert result.satisfiable
        assert result.witness.num_nodes == 2
