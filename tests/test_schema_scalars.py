"""Scalar value domains and values_W (§4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.schema import ScalarRegistry, TypeRef


@pytest.fixture
def registry() -> ScalarRegistry:
    reg = ScalarRegistry()
    reg.register_scalar("Time")
    reg.register_enum("Color", ["RED", "GREEN"])
    return reg


class TestBuiltinDomains:
    def test_int_range(self, registry):
        assert registry.in_values(0, "Int")
        assert registry.in_values(2**31 - 1, "Int")
        assert not registry.in_values(2**31, "Int")
        assert not registry.in_values(-(2**31) - 1, "Int")

    def test_int_rejects_bool_and_float(self, registry):
        assert not registry.in_values(True, "Int")
        assert not registry.in_values(1.0, "Int")

    def test_float_accepts_ints(self, registry):
        assert registry.in_values(1, "Float")
        assert registry.in_values(1.5, "Float")

    def test_float_rejects_nan_and_inf(self, registry):
        assert not registry.in_values(float("nan"), "Float")
        assert not registry.in_values(float("inf"), "Float")

    def test_string(self, registry):
        assert registry.in_values("x", "String")
        assert not registry.in_values(1, "String")

    def test_boolean(self, registry):
        assert registry.in_values(False, "Boolean")
        assert not registry.in_values(0, "Boolean")

    def test_id_accepts_strings_and_ints(self, registry):
        assert registry.in_values("abc", "ID")
        assert registry.in_values(42, "ID")
        assert not registry.in_values(True, "ID")
        assert not registry.in_values(1.5, "ID")

    def test_null_never_in_values(self, registry):
        for name in ("Int", "Float", "String", "Boolean", "ID"):
            assert not registry.in_values(None, name)


class TestCustomAndEnum:
    def test_custom_scalar_accepts_atoms(self, registry):
        assert registry.in_values("12:30", "Time")
        assert registry.in_values(5, "Time")

    def test_custom_scalar_rejects_arrays(self, registry):
        assert not registry.in_values((1, 2), "Time")

    def test_custom_predicate(self):
        reg = ScalarRegistry()
        reg.register_scalar("Even", lambda v: isinstance(v, int) and v % 2 == 0)
        assert reg.in_values(4, "Even")
        assert not reg.in_values(3, "Even")

    def test_enum_values(self, registry):
        assert registry.in_values("RED", "Color")
        assert not registry.in_values("BLUE", "Color")
        assert not registry.in_values(1, "Color")
        assert registry.enum_values("Color") == {"RED", "GREEN"}

    def test_duplicate_registration_rejected(self, registry):
        with pytest.raises(SchemaError):
            registry.register_scalar("Time")
        with pytest.raises(SchemaError):
            registry.register_enum("Color", ["X"])

    def test_empty_enum_rejected(self):
        with pytest.raises(SchemaError):
            ScalarRegistry().register_enum("E", [])

    def test_unknown_scalar_raises(self, registry):
        with pytest.raises(SchemaError):
            registry.in_values(1, "NoSuchScalar")
        with pytest.raises(SchemaError):
            registry.enum_values("Time")

    def test_names_views(self, registry):
        assert "Int" in registry.names
        assert registry.custom_names == {"Time", "Color"}
        assert registry.is_builtin("Int") and not registry.is_builtin("Time")


class TestValuesW:
    """The recursive definition of values_W (three clauses of §4.1)."""

    def test_plain_scalar_includes_null(self, registry):
        assert registry.in_values_w(None, TypeRef.parse("Int"))
        assert registry.in_values_w(3, TypeRef.parse("Int"))

    def test_non_null_excludes_null(self, registry):
        assert not registry.in_values_w(None, TypeRef.parse("Int!"))
        assert registry.in_values_w(3, TypeRef.parse("Int!"))

    def test_list_type_takes_lists(self, registry):
        assert registry.in_values_w((1, 2), TypeRef.parse("[Int]"))
        assert registry.in_values_w((), TypeRef.parse("[Int]"))
        assert not registry.in_values_w(1, TypeRef.parse("[Int]"))

    def test_list_nullability(self, registry):
        assert registry.in_values_w(None, TypeRef.parse("[Int]"))
        assert not registry.in_values_w(None, TypeRef.parse("[Int]!"))
        assert registry.in_values_w((1,), TypeRef.parse("[Int!]!"))

    def test_inner_elements_checked(self, registry):
        assert not registry.in_values_w((1, "two"), TypeRef.parse("[Int]"))
        assert not registry.in_values_w(("RED", "BLUE"), TypeRef.parse("[Color]"))
        assert registry.in_values_w(("RED",), TypeRef.parse("[Color!]"))

    def test_values_w_requires_scalar_base(self, registry):
        with pytest.raises(SchemaError):
            registry.in_values_w(1, TypeRef.parse("SomeObject"))

    @given(
        st.one_of(
            st.integers(min_value=-(2**31), max_value=2**31 - 1),
            st.text(max_size=5),
            st.booleans(),
            st.floats(allow_nan=False, allow_infinity=False),
        )
    )
    def test_non_null_agrees_with_plain_on_non_null_values(self, value):
        reg = ScalarRegistry()
        for scalar in ("Int", "Float", "String", "Boolean", "ID"):
            plain = reg.in_values_w(value, TypeRef.parse(scalar))
            non_null = reg.in_values_w(value, TypeRef.parse(f"{scalar}!"))
            assert plain == non_null

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=5).map(tuple))
    def test_list_membership_is_elementwise(self, items):
        reg = ScalarRegistry()
        assert reg.in_values_w(items, TypeRef.parse("[Int]"))
        assert reg.in_values_w(items, TypeRef.parse("[Int!]"))
