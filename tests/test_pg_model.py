"""The Property Graph model (Definition 2.1)."""

import pytest

from repro.errors import GraphError
from repro.pg import GraphBuilder, PropertyGraph


@pytest.fixture
def small_graph() -> PropertyGraph:
    graph = PropertyGraph()
    graph.add_node("a", "A", {"p": 1})
    graph.add_node("b", "B")
    graph.add_edge("e", "a", "b", "r", {"w": 0.5})
    return graph


class TestConstruction:
    def test_nodes_and_edges_counted(self, small_graph):
        assert small_graph.num_nodes == 2
        assert small_graph.num_edges == 1
        assert len(small_graph) == 3

    def test_duplicate_node_id_rejected(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.add_node("a", "A")

    def test_node_and_edge_ids_disjoint(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.add_node("e", "A")
        with pytest.raises(GraphError):
            small_graph.add_edge("a", "a", "b", "r")

    def test_edge_requires_existing_endpoints(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.add_edge("e2", "a", "missing", "r")
        with pytest.raises(GraphError):
            small_graph.add_edge("e3", "missing", "b", "r")

    def test_non_string_label_rejected(self):
        graph = PropertyGraph()
        with pytest.raises(GraphError):
            graph.add_node("x", 42)

    def test_self_loop_allowed(self):
        graph = PropertyGraph()
        graph.add_node("a", "A")
        graph.add_edge("e", "a", "a", "r")
        assert graph.endpoints("e") == ("a", "a")

    def test_parallel_edges_allowed(self):
        graph = PropertyGraph()
        graph.add_node("a", "A")
        graph.add_node("b", "B")
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "a", "b", "r")
        assert graph.num_edges == 2


class TestComponents:
    def test_rho(self, small_graph):
        assert small_graph.endpoints("e") == ("a", "b")

    def test_rho_on_missing_edge(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.endpoints("nope")

    def test_lambda_total(self, small_graph):
        assert small_graph.label("a") == "A"
        assert small_graph.label("e") == "r"

    def test_lambda_missing(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.label("nope")

    def test_sigma_partial(self, small_graph):
        assert small_graph.property_value("a", "p") == 1
        assert small_graph.property_value("a", "missing") is None
        assert small_graph.has_property("a", "p")
        assert not small_graph.has_property("b", "p")

    def test_sigma_on_edges(self, small_graph):
        assert small_graph.property_value("e", "w") == 0.5

    def test_property_items(self, small_graph):
        items = set(small_graph.property_items())
        assert items == {("a", "p", 1), ("e", "w", 0.5)}

    def test_list_property_normalised(self):
        graph = PropertyGraph()
        graph.add_node("a", "A", {"xs": [1, 2]})
        assert graph.property_value("a", "xs") == (1, 2)


class TestMutation:
    def test_set_and_remove_property(self, small_graph):
        small_graph.set_property("b", "q", "hi")
        assert small_graph.property_value("b", "q") == "hi"
        small_graph.remove_property("b", "q")
        assert not small_graph.has_property("b", "q")

    def test_remove_property_noop(self, small_graph):
        small_graph.remove_property("b", "never_there")

    def test_remove_edge(self, small_graph):
        small_graph.remove_edge("e")
        assert small_graph.num_edges == 0
        assert small_graph.out_edges("a") == []
        assert small_graph.in_edges("b") == []

    def test_remove_node_cascades(self, small_graph):
        small_graph.remove_node("a")
        assert small_graph.num_nodes == 1
        assert small_graph.num_edges == 0

    def test_remove_missing(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.remove_edge("nope")
        with pytest.raises(GraphError):
            small_graph.remove_node("nope")


class TestIncidence:
    def test_out_edges_by_label(self, small_graph):
        assert small_graph.out_edges("a", "r") == ["e"]
        assert small_graph.out_edges("a", "other") == []
        assert small_graph.out_edges("b") == []

    def test_in_edges_by_label(self, small_graph):
        assert small_graph.in_edges("b", "r") == ["e"]
        assert small_graph.in_edges("a") == []

    def test_nodes_with_label(self, small_graph):
        assert small_graph.nodes_with_label("A") == ["a"]
        assert small_graph.nodes_with_label("Z") == []


class TestCopy:
    def test_copy_independent(self, small_graph):
        clone = small_graph.copy()
        clone.add_node("c", "C")
        clone.set_property("a", "p", 99)
        assert small_graph.num_nodes == 2
        assert small_graph.property_value("a", "p") == 1

    def test_copy_preserves_incidence(self, small_graph):
        clone = small_graph.copy()
        assert clone.out_edges("a", "r") == ["e"]


class TestBuilder:
    def test_builder_chains(self):
        graph = (
            GraphBuilder()
            .node("x", "X", p=1)
            .nodes("Y", "y1", "y2")
            .edge("x", "r", "y1")
            .edge("x", "r", "y2", {"w": 2})
            .prop("y1", "q", "val")
            .graph()
        )
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.property_value("y1", "q") == "val"

    def test_builder_generates_fresh_edge_ids(self):
        graph = GraphBuilder().node("a", "A").edge("a", "r", "a").edge("a", "r", "a").graph()
        assert graph.num_edges == 2

    def test_builder_explicit_edge_id(self):
        graph = GraphBuilder().node("a", "A").edge("a", "r", "a", edge_id="myedge").graph()
        assert graph.label("myedge") == "r"


class TestEmptyPropertyMap:
    """Regression: the shared empty mapping behind ``property_map`` must be
    immutable.  It used to be a plain dict; one careless mutation through a
    property-less element's map would silently leak properties onto *every*
    property-less element of every graph in the process."""

    def test_property_map_of_bare_element_is_readonly(self):
        graph = PropertyGraph()
        graph.add_node("a", "A")
        empty = graph.property_map("a")
        with pytest.raises(TypeError):
            empty["sneaky"] = 1  # type: ignore[index]

    def test_shared_empty_map_cannot_cross_elements(self):
        graph = PropertyGraph()
        graph.add_node("a", "A")
        graph.add_node("b", "B")
        try:
            graph.property_map("a")["x"] = 1  # type: ignore[index]
        except TypeError:
            pass
        assert dict(graph.property_map("b")) == {}
        assert dict(graph.property_map("a")) == {}
