"""Incremental validation must always equal from-scratch validation."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pg import PropertyGraph
from repro.validation import IncrementalValidator, IndexedValidator
from repro.workloads import user_session_graph
from repro.workloads.paper_schemas import CORPUS

SCHEMA = CORPUS["user_session_edge_props"].load()
LIBRARY = CORPUS["library"].load()


def assert_matches_scratch(incremental: IncrementalValidator):
    scratch = IndexedValidator(incremental.schema).validate(incremental.graph)
    assert incremental.report().keys() == scratch.keys(), (
        incremental.report().keys() ^ scratch.keys()
    )
    assert incremental.conforms == scratch.conforms


class TestBasicMutations:
    def test_initial_report(self):
        live = IncrementalValidator(SCHEMA, user_session_graph(5, 2, seed=0))
        assert live.conforms
        assert_matches_scratch(live)

    def test_add_bad_node_then_fix(self):
        live = IncrementalValidator(SCHEMA, user_session_graph(3, 1, seed=0))
        live.add_node("x", "Mystery")
        assert not live.conforms
        assert_matches_scratch(live)
        live.remove_node("x")
        assert live.conforms
        assert_matches_scratch(live)

    def test_property_mutations(self):
        live = IncrementalValidator(SCHEMA, user_session_graph(3, 1, seed=0))
        live.set_property("u0", "login", 99)  # WS1
        assert_matches_scratch(live)
        live.set_property("u0", "login", "fixed")
        assert_matches_scratch(live)
        live.remove_property("u0", "login")  # DS5
        assert_matches_scratch(live)
        live.set_property("u0", "login", "back")
        assert live.conforms

    def test_key_collision_and_repair(self):
        live = IncrementalValidator(SCHEMA, user_session_graph(3, 1, seed=0))
        live.set_property("u1", "id", "user-0")  # DS7 with u0
        assert not live.conforms
        assert_matches_scratch(live)
        live.set_property("u1", "id", "user-1b")
        assert live.conforms

    def test_edge_mutations(self):
        live = IncrementalValidator(SCHEMA, user_session_graph(3, 1, seed=0))
        edge = live.graph.out_edges("s0_0", "user")[0]
        live.remove_edge(edge)  # DS6
        assert not live.conforms
        assert_matches_scratch(live)
        live.add_edge("fresh", "s0_0", "u1", "user", {"certainty": 0.4})
        assert live.conforms
        assert_matches_scratch(live)
        live.add_edge("dup", "s0_0", "u2", "user")  # WS4
        assert_matches_scratch(live)

    def test_edge_property_mutations(self):
        live = IncrementalValidator(SCHEMA, user_session_graph(2, 1, seed=0))
        edge = live.graph.out_edges("s0_0", "user")[0]
        live.set_property(edge, "certainty", "broken")  # WS2
        assert_matches_scratch(live)
        live.set_property(edge, "certainty", 0.5)
        assert_matches_scratch(live)
        live.set_property(edge, "surprise", 1)  # SS3
        assert_matches_scratch(live)
        live.remove_property(edge, "surprise")
        assert live.conforms

    def test_remove_node_with_edges(self):
        live = IncrementalValidator(SCHEMA, user_session_graph(3, 2, seed=0))
        live.remove_node("u1")  # sessions s1_* lose their required user edge
        assert not live.conforms
        assert_matches_scratch(live)


class TestRandomisedStreams:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_mutation_stream(self, seed):
        rng = random.Random(seed)
        live = IncrementalValidator(SCHEMA, user_session_graph(4, 2, seed=seed))
        node_pool = list(live.graph.nodes)
        for step in range(30):
            action = rng.randrange(6)
            try:
                if action == 0:
                    node = f"extra{step}"
                    label = rng.choice(["User", "UserSession", "Mystery"])
                    live.add_node(node, label, {"id": f"x{step}"})
                    node_pool.append(node)
                elif action == 1 and node_pool:
                    target = rng.choice(node_pool)
                    if target in live.graph:
                        live.remove_node(target)
                        node_pool.remove(target)
                elif action == 2 and len(node_pool) >= 2:
                    source, target = rng.sample(node_pool, 2)
                    if source in live.graph and target in live.graph:
                        live.add_edge(f"edge{step}", source, target, rng.choice(["user", "odd"]))
                elif action == 3:
                    edges = list(live.graph.edges)
                    if edges:
                        live.remove_edge(rng.choice(edges))
                elif action == 4 and node_pool:
                    node = rng.choice(node_pool)
                    if node in live.graph:
                        live.set_property(
                            node,
                            rng.choice(["id", "login", "startTime", "odd"]),
                            rng.choice(["v", 3, 1.5, ("a", "b")]),
                        )
                else:
                    if node_pool:
                        node = rng.choice(node_pool)
                        if node in live.graph:
                            live.remove_property(node, rng.choice(["id", "login"]))
            except Exception:
                continue  # structurally invalid mutation; state unchanged
            assert_matches_scratch(live)

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_library_streams(self, seed):
        from repro.workloads import library_graph

        rng = random.Random(seed)
        live = IncrementalValidator(LIBRARY, library_graph(3, 4, 1, 1, seed=seed))
        nodes = list(live.graph.nodes)
        for step in range(12):
            roll = rng.random()
            if roll < 0.4 and len(nodes) >= 2:
                source, target = rng.sample(nodes, 2)
                if source in live.graph and target in live.graph:
                    live.add_edge(
                        f"m{step}",
                        source,
                        target,
                        rng.choice(["author", "relatedAuthor", "contains", "published"]),
                    )
            elif roll < 0.7:
                edges = list(live.graph.edges)
                if edges:
                    live.remove_edge(rng.choice(edges))
            else:
                node = rng.choice(nodes)
                if node in live.graph:
                    live.set_property(node, "title", rng.choice(["t", 5]))
            assert_matches_scratch(live)


class TestFromEmpty:
    def test_grow_from_empty(self):
        live = IncrementalValidator(SCHEMA, PropertyGraph())
        assert live.conforms
        live.add_node("u", "User", {"id": "1", "login": "a"})
        assert live.conforms
        live.add_node("s", "UserSession", {"id": "2"})
        assert not live.conforms  # missing startTime + user edge
        assert_matches_scratch(live)
        live.set_property("s", "startTime", "t")
        live.add_edge("e", "s", "u", "user", {"certainty": 1.0})
        assert live.conforms
        assert_matches_scratch(live)
