"""Every example script must run end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    sys_path = list(sys.path)
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.path[:] = sys_path
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} should print something"
