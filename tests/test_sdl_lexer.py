"""The GraphQL lexer (spec §2: lexical grammar)."""

import pytest

from repro.errors import SDLSyntaxError
from repro.sdl import TokenKind, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestPunctuators:
    def test_all_single_punctuators(self):
        source = "! $ ( ) : = @ [ ] { } | &"
        expected = [
            TokenKind.BANG,
            TokenKind.DOLLAR,
            TokenKind.PAREN_L,
            TokenKind.PAREN_R,
            TokenKind.COLON,
            TokenKind.EQUALS,
            TokenKind.AT,
            TokenKind.BRACKET_L,
            TokenKind.BRACKET_R,
            TokenKind.BRACE_L,
            TokenKind.BRACE_R,
            TokenKind.PIPE,
            TokenKind.AMP,
            TokenKind.EOF,
        ]
        assert kinds(source) == expected

    def test_spread(self):
        assert kinds("...")[:-1] == [TokenKind.SPREAD]

    def test_lone_dot_rejected(self):
        with pytest.raises(SDLSyntaxError):
            tokenize(".")

    def test_two_dots_rejected(self):
        with pytest.raises(SDLSyntaxError):
            tokenize("..")


class TestIgnoredTokens:
    def test_commas_ignored(self):
        assert values("a, b,, c") == ["a", "b", "c"]

    def test_comments_ignored(self):
        assert values("a # this is a comment\nb") == ["a", "b"]

    def test_comment_at_eof(self):
        assert values("a # no newline") == ["a"]

    def test_crlf_and_cr_newlines(self):
        tokens = tokenize("a\r\nb\rc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]


class TestNames:
    def test_simple_name(self):
        assert values("hello") == ["hello"]

    def test_underscore_names(self):
        assert values("_private __double") == ["_private", "__double"]

    def test_names_with_digits(self):
        assert values("a1b2") == ["a1b2"]


class TestNumbers:
    def test_int(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.INT
        assert tokens[0].value == "42"

    def test_negative_int(self):
        assert tokenize("-7")[0].value == "-7"

    def test_zero(self):
        assert tokenize("0")[0].kind is TokenKind.INT

    def test_leading_zero_rejected(self):
        with pytest.raises(SDLSyntaxError):
            tokenize("012")

    def test_float(self):
        assert tokenize("3.14")[0].kind is TokenKind.FLOAT

    def test_exponent(self):
        assert tokenize("1e10")[0].kind is TokenKind.FLOAT
        assert tokenize("1.5E-3")[0].kind is TokenKind.FLOAT

    def test_trailing_dot_rejected(self):
        with pytest.raises(SDLSyntaxError):
            tokenize("1.")

    def test_bare_minus_rejected(self):
        with pytest.raises(SDLSyntaxError):
            tokenize("-")

    def test_malformed_exponent_rejected(self):
        with pytest.raises(SDLSyntaxError):
            tokenize("1e")


class TestStrings:
    def test_simple_string(self):
        token = tokenize('"hi"')[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "hi"

    def test_escapes(self):
        assert tokenize(r'"a\nb\tc\"d\\e"')[0].value == 'a\nb\tc"d\\e'

    def test_unicode_escape(self):
        assert tokenize('"\\u0041"')[0].value == "A"

    def test_bad_unicode_escape(self):
        with pytest.raises(SDLSyntaxError):
            tokenize(r'"\uZZZZ"')

    def test_unknown_escape_rejected(self):
        with pytest.raises(SDLSyntaxError):
            tokenize(r'"\q"')

    def test_unterminated_string(self):
        with pytest.raises(SDLSyntaxError):
            tokenize('"never ends')

    def test_newline_terminates_string_error(self):
        with pytest.raises(SDLSyntaxError):
            tokenize('"line\nbreak"')


class TestBlockStrings:
    def test_simple_block(self):
        token = tokenize('"""hello"""')[0]
        assert token.kind is TokenKind.BLOCK_STRING
        assert token.value == "hello"

    def test_dedent(self):
        source = '"""\n    line one\n      line two\n    """'
        assert tokenize(source)[0].value == "line one\n  line two"

    def test_escaped_triple_quote(self):
        assert tokenize('"""a \\""" b"""')[0].value == 'a """ b'

    def test_unterminated_block(self):
        with pytest.raises(SDLSyntaxError):
            tokenize('"""open')

    def test_lines_counted_through_block(self):
        tokens = tokenize('"""\na\nb\n""" next')
        assert tokens[1].line == 4


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            tokenize("abc\n  ?")
        except SDLSyntaxError as error:
            assert error.line == 2
            assert error.column == 3
        else:  # pragma: no cover
            raise AssertionError("expected SDLSyntaxError")
