"""Weak satisfaction: rules WS1-WS4 (Definition 5.1).

Each rule is tested on both engines via the parametrized ``engine`` fixture.
"""

import pytest

from repro.pg import GraphBuilder
from repro.schema import parse_schema
from repro.validation import validate


@pytest.fixture(params=["indexed", "naive"])
def engine(request):
    return request.param


SCHEMA = parse_schema(
    """
    enum Color { RED GREEN }
    type Node {
      count: Int
      score: Float!
      tags: [String!]
      color: Color
      next: Node
      friends: [Node]
    }
    """
)


def check(graph, engine, mode="weak"):
    return {
        violation.rule
        for violation in validate(SCHEMA, graph, mode=mode, engine=engine).violations
    }


class TestWS1:
    """Node properties must be of the required type."""

    def test_conforming_properties(self, engine):
        graph = (
            GraphBuilder()
            .node("n", "Node", count=3, score=1.5, tags=["a"], color="RED")
            .graph()
        )
        assert check(graph, engine) == set()

    def test_wrong_scalar_type(self, engine):
        graph = GraphBuilder().node("n", "Node", count="three").graph()
        assert check(graph, engine) == {"WS1"}

    def test_int_out_of_range(self, engine):
        graph = GraphBuilder().node("n", "Node", count=2**31).graph()
        assert check(graph, engine) == {"WS1"}

    def test_bool_is_not_int(self, engine):
        graph = GraphBuilder().node("n", "Node", count=True).graph()
        assert check(graph, engine) == {"WS1"}

    def test_atom_for_list_type(self, engine):
        graph = GraphBuilder().node("n", "Node", tags="solo").graph()
        assert check(graph, engine) == {"WS1"}

    def test_list_with_wrong_element(self, engine):
        graph = GraphBuilder().node("n", "Node", tags=["ok", 5]).graph()
        assert check(graph, engine) == {"WS1"}

    def test_bad_enum_value(self, engine):
        graph = GraphBuilder().node("n", "Node", color="BLUE").graph()
        assert check(graph, engine) == {"WS1"}

    def test_absent_property_is_fine_even_for_non_null(self, engine):
        # score: Float! without @required: non-null constrains present
        # values only; absence models null at the graph level
        graph = GraphBuilder().node("n", "Node").graph()
        assert check(graph, engine) == set()

    def test_undeclared_property_not_ws1(self, engine):
        # justification is SS2's business; WS1 is silent
        graph = GraphBuilder().node("n", "Node", mystery=1).graph()
        assert check(graph, engine) == set()
        assert check(graph, engine, mode="strong") == {"SS2"}

    def test_unknown_label_not_ws1(self, engine):
        graph = GraphBuilder().node("n", "Ghost", count="x").graph()
        assert check(graph, engine) == set()


class TestWS2:
    """Edge properties must be of the required type."""

    EDGE_SCHEMA = parse_schema(
        "type A { rel(w: Float! note: String tags: [Int!]): A }"
    )

    def run(self, properties, engine):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "A")
            .edge("a", "rel", "b", properties)
            .graph()
        )
        return {
            v.rule
            for v in validate(self.EDGE_SCHEMA, graph, mode="weak", engine=engine).violations
        }

    def test_conforming_edge_properties(self, engine):
        assert self.run({"w": 0.5, "note": "hi", "tags": [1, 2]}, engine) == set()

    def test_wrong_type(self, engine):
        assert self.run({"w": "heavy"}, engine) == {"WS2"}

    def test_wrong_list_element(self, engine):
        assert self.run({"tags": ["x"]}, engine) == {"WS2"}

    def test_undeclared_edge_property_not_ws2(self, engine):
        assert self.run({"bogus": 1}, engine) == set()

    def test_missing_non_null_property_not_ws2(self, engine):
        # the formal rules do not make non-null arguments mandatory
        # (recorded as extension rule EP1)
        assert self.run(None, engine) == set()


class TestWS3:
    """Target nodes must be of the required type."""

    def test_correct_target(self, engine):
        graph = (
            GraphBuilder().node("a", "Node").node("b", "Node").edge("a", "next", "b").graph()
        )
        assert check(graph, engine) == set()

    def test_wrong_target(self, engine):
        graph = (
            GraphBuilder()
            .node("a", "Node")
            .node("x", "Ghost")
            .edge("a", "next", "x")
            .graph()
        )
        assert check(graph, engine) == {"WS3"}

    def test_interface_target(self, engine, food_interface_schema):
        graph = (
            GraphBuilder()
            .node("p", "Person", name="Ann")
            .node("z", "Pizza", name="QP", toppings=["c"])
            .edge("p", "favoriteFood", "z")
            .graph()
        )
        report = validate(food_interface_schema, graph, mode="weak", engine=engine)
        assert report.conforms

    def test_union_target(self, engine, food_union_schema):
        graph = (
            GraphBuilder()
            .node("p", "Person", name="Ann")
            .node("z", "Pasta", name="C")
            .edge("p", "favoriteFood", "z")
            .graph()
        )
        assert validate(food_union_schema, graph, mode="weak", engine=engine).conforms

    def test_union_wrong_target(self, engine, food_union_schema):
        graph = (
            GraphBuilder()
            .node("p", "Person", name="Ann")
            .node("q", "Person", name="Ben")
            .edge("p", "favoriteFood", "q")
            .graph()
        )
        fired = {
            v.rule
            for v in validate(
                food_union_schema, graph, mode="weak", engine=engine
            ).violations
        }
        assert fired == {"WS3"}

    def test_undeclared_edge_not_ws3(self, engine):
        graph = (
            GraphBuilder().node("a", "Node").node("b", "Node").edge("a", "bogus", "b").graph()
        )
        assert check(graph, engine) == set()


class TestWS4:
    """Non-list fields contain at most one edge."""

    def test_single_edge_ok(self, engine):
        graph = (
            GraphBuilder()
            .node("a", "Node")
            .node("b", "Node")
            .edge("a", "next", "b")
            .graph()
        )
        assert check(graph, engine) == set()

    def test_two_edges_violate(self, engine):
        graph = (
            GraphBuilder()
            .node("a", "Node")
            .node("b", "Node")
            .node("c", "Node")
            .edge("a", "next", "b")
            .edge("a", "next", "c")
            .graph()
        )
        assert check(graph, engine) == {"WS4"}

    def test_list_fields_allow_many(self, engine):
        graph = (
            GraphBuilder()
            .node("a", "Node")
            .node("b", "Node")
            .node("c", "Node")
            .edge("a", "friends", "b")
            .edge("a", "friends", "c")
            .edge("a", "friends", "b")
            .graph()
        )
        assert check(graph, engine) == set()

    def test_three_edges_give_three_pair_witnesses(self, engine):
        graph = GraphBuilder().node("a", "Node").node("b", "Node").graph()
        for index in range(3):
            graph.add_edge(f"e{index}", "a", "b", "next")
        report = validate(SCHEMA, graph, mode="weak", engine=engine)
        assert len([v for v in report.violations if v.rule == "WS4"]) == 3

    def test_different_sources_fine(self, engine):
        graph = (
            GraphBuilder()
            .node("a", "Node")
            .node("b", "Node")
            .node("c", "Node")
            .edge("a", "next", "c")
            .edge("b", "next", "c")
            .graph()
        )
        assert check(graph, engine) == set()
