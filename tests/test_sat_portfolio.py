"""Portfolio satisfiability: determinism, agreement, caching, recovery.

The contracts under test (docs/PERFORMANCE.md, E13):

1. the portfolio engine's ``check_schema`` report is *byte-identical*
   (through ``to_json()``) to the serial engine's, for any jobs count,
   cold or warm cache;
2. racing the tableau against the bounded finder never changes a verdict
   (a bounded failure is not decisive), including on the paper's
   diagram (b) schema where the two engines genuinely diverge;
3. the :class:`SatCache` memoizes decided verdicts across
   ``check_type`` / ``check_field`` / ``check_schema`` and across checker
   instances, and never caches budget-exhausted UNKNOWNs;
4. a hard worker kill during a process-executor sweep is recovered by the
   executor ladder with the report unchanged.
"""

import json

import pytest

from repro.errors import BudgetExhaustedError
from repro.resilience import Budget, faults
from repro.satisfiability import (
    SatCache,
    SatisfiabilityChecker,
    build_units,
    sat_cache_clear,
    sat_cache_for,
    sat_cache_info,
)
from repro.schema import parse_schema
from repro.workloads import CORPUS, hub_chain_schema, load

JOBS = [1, 2, 4]


@pytest.fixture(autouse=True)
def _fresh_registry():
    sat_cache_clear()
    yield
    sat_cache_clear()


def _dump(report):
    return json.dumps(report.to_json(), sort_keys=True)


# --------------------------------------------------------------------------- #
# determinism: byte-identical reports
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("jobs", JOBS)
def test_portfolio_reports_byte_identical_across_jobs(jobs):
    for name in CORPUS:
        schema = load(name)
        expected = _dump(
            SatisfiabilityChecker(schema, cache=False).check_schema(engine="serial")
        )
        checker = SatisfiabilityChecker(schema, cache=SatCache(schema))
        cold = checker.check_schema(jobs=jobs, engine="portfolio")
        warm = checker.check_schema(jobs=jobs, engine="portfolio")
        assert _dump(cold) == expected, name
        assert _dump(warm) == expected, (name, "warm replay must not differ")


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_portfolio_reports_byte_identical_across_executors(executor):
    schema = load("example_6_1_a")
    expected = _dump(
        SatisfiabilityChecker(schema, cache=False).check_schema(
            find_witnesses=True, engine="serial"
        )
    )
    report = SatisfiabilityChecker(schema, cache=SatCache(schema)).check_schema(
        find_witnesses=True, jobs=4, engine="portfolio", executor=executor
    )
    assert _dump(report) == expected


def test_portfolio_with_witnesses_matches_serial():
    for name in ("library", "diagram_c", "hub"):
        schema = hub_chain_schema(depth=4, leaves=3) if name == "hub" else load(name)
        expected = _dump(
            SatisfiabilityChecker(schema, cache=False).check_schema(
                find_witnesses=True, engine="serial"
            )
        )
        report = SatisfiabilityChecker(schema, cache=SatCache(schema)).check_schema(
            find_witnesses=True, jobs=2, engine="portfolio"
        )
        assert _dump(report) == expected, name


# --------------------------------------------------------------------------- #
# agreement: racing cannot flip verdicts
# --------------------------------------------------------------------------- #


def test_race_agrees_with_serial_on_whole_corpus():
    for name in CORPUS:
        schema = load(name)
        serial = SatisfiabilityChecker(schema, cache=False).check_schema(
            engine="serial"
        )
        race = SatisfiabilityChecker(schema, cache=SatCache(schema)).check_schema(
            engine="race"
        )
        assert set(race.types) == set(serial.types), name
        for type_name, verdict in race.types.items():
            assert verdict.verdict == serial.types[type_name].verdict, (name, type_name)
        assert race.fields == serial.fields, name


def test_race_preserves_diagram_b_infinite_model_divergence():
    """Diagram (b)'s OT2 is tableau-SAT but has no finite model: the race
    must report it satisfiable with the bounded search empty-handed, not
    let the bounded failure masquerade as a verdict."""
    schema = load("diagram_b")
    report = SatisfiabilityChecker(schema, cache=SatCache(schema)).check_schema(
        find_witnesses=True, engine="race"
    )
    ot2 = report.types["OT2"]
    assert ot2.tableau_satisfiable is True
    assert ot2.bounded is not None and not ot2.bounded.satisfiable
    assert ot2.finitely_satisfiable is None
    # the divergence is OT2's alone: its neighbours have finite witnesses
    assert report.types["OT1"].finitely_satisfiable is True
    assert report.types["OT3"].finitely_satisfiable is True


# --------------------------------------------------------------------------- #
# unit partitioning
# --------------------------------------------------------------------------- #


def test_build_units_covers_every_element_once():
    schema = load("food_interface")
    units = build_units(schema)
    typed = [unit.type_name for unit in units if unit.type_name is not None]
    assert sorted(typed) == sorted(schema.object_types)
    seen = set()
    for unit in units:
        for field_name, _base in unit.fields:
            key = (unit.declaring, field_name)
            assert key not in seen, "field assigned to two units"
            seen.add(key)
    expected = {
        (type_name, field_name)
        for type_name, field_name, field_def in schema.field_declarations()
        if field_def.is_relationship
    }
    assert seen == expected


def test_unknown_engine_and_executor_rejected():
    schema = load("library")
    checker = SatisfiabilityChecker(schema, cache=False)
    with pytest.raises(ValueError, match="unknown engine"):
        checker.check_schema(engine="quantum")
    with pytest.raises(ValueError, match="unknown executor"):
        checker.check_schema(executor="gpu")


# --------------------------------------------------------------------------- #
# verdict caching
# --------------------------------------------------------------------------- #


def test_check_type_hits_cache_on_repeat():
    schema = load("library")
    cache = SatCache(schema)
    checker = SatisfiabilityChecker(schema, cache=cache)
    first = checker.check_type("Book", find_witness=False)
    hits_before = cache.cache_info()["hits"]
    second = checker.check_type("Book", find_witness=False)
    assert cache.cache_info()["hits"] > hits_before
    assert second.verdict == first.verdict
    assert second.decided_by == first.decided_by


def test_check_field_hits_cache_on_repeat():
    schema = load("library")
    cache = SatCache(schema)
    checker = SatisfiabilityChecker(schema, cache=cache)
    assert checker.check_field("Book", "author") is True
    hits_before = cache.cache_info()["hits"]
    assert checker.check_field("Book", "author") is True
    assert cache.cache_info()["hits"] == hits_before + 1


def test_cache_shared_across_checker_instances():
    schema = load("library")
    first = SatisfiabilityChecker(schema)  # cache=True -> shared registry
    first.check_schema(engine="portfolio")
    cache = sat_cache_for(schema)
    hits_before = cache.cache_info()["hits"]
    second = SatisfiabilityChecker(schema)
    second.check_schema(engine="portfolio")
    assert cache.cache_info()["hits"] > hits_before
    assert second.last_profile["wins"].get("cache", 0) > 0


def test_unknown_verdicts_are_never_cached():
    schema = parse_schema("type A { b: B @required }\ntype B { a: A @required }")
    cache = SatCache(schema)
    checker = SatisfiabilityChecker(
        schema, cache=cache, budget=Budget(max_nodes=1), lint_precheck=False
    )
    verdict = checker.check_type("A", find_witness=False)
    assert verdict.verdict == "unknown"
    assert cache.cache_info()["types"] == 0
    # a bigger budget must get a fresh attempt and decide
    decided = SatisfiabilityChecker(schema, cache=cache, lint_precheck=False)
    assert decided.check_type("A", find_witness=False).verdict == "sat"
    assert cache.cache_info()["types"] == 1


def test_label_cache_shares_proofs_between_type_and_field_checks():
    schema = load("library")
    cache = SatCache(schema)
    # analysis off: this test exercises the tableau's label cache, and the
    # dataflow feed would otherwise decide the whole schema without a search
    checker = SatisfiabilityChecker(schema, cache=cache, analysis_precheck=False)
    checker.check_schema(engine="serial")
    info = cache.cache_info()
    assert info["label_entries"] > 0
    assert info["label_hits"] + info["label_misses"] > 0


def test_sat_cache_info_aggregates_registry():
    schema = load("library")
    SatisfiabilityChecker(schema).check_schema()
    info = sat_cache_info()
    assert info["schemas"] == 1
    assert info["types"] == len(schema.object_types)
    assert info["fields"] > 0
    sat_cache_clear()
    assert sat_cache_info()["schemas"] == 0


# --------------------------------------------------------------------------- #
# budget cancellation (the racing primitive)
# --------------------------------------------------------------------------- #


def test_cancelled_budget_raises_at_every_check():
    budget = Budget()
    budget.cancel()
    for check in (
        lambda: budget.check_deadline(site="t"),
        lambda: budget.charge_nodes(1, site="t"),
        lambda: budget.charge_expansions(1, site="t"),
    ):
        with pytest.raises(BudgetExhaustedError) as error:
            check()
        assert error.value.reason.dimension == "cancelled"
    # renewals are born un-cancelled: the next check gets a fresh chance
    budget.renew().check_deadline(site="t")


def test_cancel_stops_a_running_tableau():
    schema = parse_schema("type A { b: B @required }\ntype B { a: A @required }")
    checker = SatisfiabilityChecker(schema, cache=False, lint_precheck=False)
    budget = Budget()
    budget.cancel()
    from repro.dl.concepts import Name

    with pytest.raises(BudgetExhaustedError) as error:
        checker.tableau.is_satisfiable(Name("A"), budget=budget)
    assert error.value.reason.dimension == "cancelled"


# --------------------------------------------------------------------------- #
# worker-crash recovery
# --------------------------------------------------------------------------- #


def test_hard_worker_kill_recovers_byte_identically():
    """An os._exit kill of a portfolio pool worker must be retried by the
    executor ladder and produce the undisturbed report byte-for-byte."""
    schema = load("library")
    faults.install(None)
    try:
        expected = _dump(
            SatisfiabilityChecker(schema, cache=False).check_schema(engine="serial")
        )
    finally:
        faults.uninstall()
    faults.install("crash@portfolio.worker:unit=1,attempt=0,mode=exit")
    try:
        checker = SatisfiabilityChecker(
            schema, cache=SatCache(schema)
        )
        report = checker.check_schema(
            jobs=2, engine="portfolio", executor="process", retry_base_delay=0.01
        )
    finally:
        faults.uninstall()
    assert _dump(report) == expected
    assert checker.last_recovery_log, "the fault must have fired and been survived"
    # the dying worker takes its whole pool attempt down: the crashed unit
    # is logged, possibly alongside pool-mates that failed collaterally
    assert any(entry["unit"] == 1 for entry in checker.last_recovery_log)
    assert all(entry["executor"] == "process" for entry in checker.last_recovery_log)


@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_raised_worker_crash_recovers_on_lighter_executors(executor):
    schema = load("library")
    faults.install(None)
    try:
        expected = _dump(
            SatisfiabilityChecker(schema, cache=False).check_schema(engine="serial")
        )
    finally:
        faults.uninstall()
    faults.install("crash@portfolio.worker:unit=0,attempt=0")
    try:
        checker = SatisfiabilityChecker(schema, cache=SatCache(schema))
        report = checker.check_schema(
            jobs=2, engine="portfolio", executor=executor, retry_base_delay=0.01
        )
    finally:
        faults.uninstall()
    assert _dump(report) == expected
    assert checker.last_recovery_log
    assert checker.last_recovery_log[0]["unit"] == 0


# --------------------------------------------------------------------------- #
# profile surface
# --------------------------------------------------------------------------- #


def test_last_profile_records_engine_and_wins():
    schema = hub_chain_schema(depth=3, leaves=2)
    checker = SatisfiabilityChecker(schema, cache=SatCache(schema))
    checker.check_schema(jobs=2, engine="portfolio")
    profile = checker.last_profile
    assert profile["engine"] == "portfolio"
    assert profile["units"] == len(build_units(schema))
    assert sum(profile["wins"].values()) > 0
    checker.check_schema(engine="serial")
    assert checker.last_profile["engine"] == "serial"
