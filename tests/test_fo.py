"""The first-order substrate: structures, evaluation, encoding."""

import pytest

from repro.fo import (
    Atom,
    Const,
    Eq,
    Exists,
    FOStructure,
    ForAll,
    Implies,
    Not,
    SENTENCES,
    Var,
    conj,
    disj,
    encode,
    evaluate,
    exists,
    forall,
)
from repro.fo.structure import Relation
from repro.pg import GraphBuilder
from repro.workloads.paper_schemas import CORPUS


@pytest.fixture
def structure() -> FOStructure:
    s = FOStructure()
    s.add_sort("node", ["a", "b", "c"])
    s.declare_relation("edge", 2)
    s.add_fact("edge", "a", "b")
    s.add_fact("edge", "b", "c")
    s.declare_relation("red", 1)
    s.add_fact("red", "a")
    return s


class TestRelation:
    def test_arity_checked(self):
        relation = Relation("r", 2)
        with pytest.raises(ValueError):
            relation.add(("x",))

    def test_matching_uses_indexes(self):
        relation = Relation("r", 2)
        relation.add(("a", "b"))
        relation.add(("a", "c"))
        relation.add(("d", "b"))
        assert set(relation.matching(("a", None))) == {("a", "b"), ("a", "c")}
        assert set(relation.matching((None, "b"))) == {("a", "b"), ("d", "b")}
        assert set(relation.matching((None, None))) == set(relation.tuples)
        assert list(relation.matching(("z", None))) == []

    def test_duplicate_add_is_noop(self):
        relation = Relation("r", 1)
        relation.add(("x",))
        relation.add(("x",))
        assert len(relation) == 1


class TestEvaluator:
    def test_atoms(self, structure):
        assert evaluate(structure, Atom("edge", (Const("a"), Const("b"))))
        assert not evaluate(structure, Atom("edge", (Const("b"), Const("a"))))

    def test_connectives(self, structure):
        red_a = Atom("red", (Const("a"),))
        red_b = Atom("red", (Const("b"),))
        assert evaluate(structure, conj(red_a, Not(red_b)))
        assert evaluate(structure, disj(red_b, red_a))
        assert evaluate(structure, Implies(red_b, red_a))
        assert not evaluate(structure, conj(red_a, red_b))

    def test_equality(self, structure):
        assert evaluate(structure, Eq(Const(1), Const(1)))
        assert not evaluate(structure, Eq(Const(1), Const(2)))

    def test_exists(self, structure):
        formula = exists([("x", "node")], Atom("red", (Var("x"),)))
        assert evaluate(structure, formula)
        formula2 = exists(
            [("x", "node"), ("y", "node")],
            conj(Atom("edge", (Var("x"), Var("y"))), Atom("red", (Var("x"),))),
        )
        assert evaluate(structure, formula2)

    def test_forall(self, structure):
        all_red = forall([("x", "node")], Atom("red", (Var("x"),)))
        assert not evaluate(structure, all_red)
        edges_from_red = forall(
            [("x", "node")],
            Implies(
                Atom("edge", (Const("a"), Var("x"))),
                Not(Atom("red", (Var("x"),))),
            ),
        )
        assert evaluate(structure, edges_from_red)

    def test_forall_without_guard_is_not_narrowed(self, structure):
        # regression: narrowing ∀ by its own body would be unsound
        formula = ForAll(Var("x"), "node", Atom("red", (Var("x"),)))
        assert not evaluate(structure, formula)

    def test_nested_quantifiers(self, structure):
        # every edge target is reachable: ∀x∀y(edge(x,y) → ∃z edge(x,z))
        formula = forall(
            [("x", "node"), ("y", "node")],
            Implies(
                Atom("edge", (Var("x"), Var("y"))),
                Exists(Var("z"), "node", Atom("edge", (Var("x"), Var("z")))),
            ),
        )
        assert evaluate(structure, formula)

    def test_unbound_variable_raises(self, structure):
        with pytest.raises(NameError):
            evaluate(structure, Atom("red", (Var("free"),)))

    def test_formula_str_forms(self):
        formula = forall(
            [("x", "node")],
            Implies(Atom("red", (Var("x"),)), Eq(Var("x"), Const("a"))),
        )
        text = str(formula)
        assert "∀" in text and "→" in text


class TestEncoding:
    def test_vocabulary_present(self):
        schema = CORPUS["user_session_edge_props"].load()
        graph = (
            GraphBuilder()
            .node("u", "User", id="1", login="a")
            .node("s", "UserSession", id="2", startTime="t")
            .edge("s", "user", "u", {"certainty": 0.5})
            .graph()
        )
        structure = encode(schema, graph)
        assert structure.holds("V", ("u",))
        assert structure.holds("E", ("_e1",))
        assert structure.holds("label", ("u", "User"))
        assert structure.holds("attrdecl", ("User", "login"))
        assert structure.holds("reldecl", ("UserSession", "user"))
        assert structure.holds("argdecl", ("UserSession", "user", "certainty"))
        assert structure.holds("OT", ("User",))
        assert structure.holds("subtype", ("User", "User"))
        assert structure.holds("reqattr", ("User", "login"))

    def test_every_sentence_closed_and_evaluable(self):
        schema = CORPUS["library"].load()
        from repro.workloads import library_graph

        graph = library_graph(2, 2, 0, 1, seed=0)
        structure = encode(schema, graph)
        for rule, sentence in SENTENCES.items():
            result = evaluate(structure, sentence)
            assert result is True, f"{rule} should hold on a conformant graph"
