"""Property values: normalisation, signatures, type-strict equality."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.pg.values import (
    is_array_value,
    is_atomic_value,
    is_property_value,
    normalize_value,
    value_signature,
    values_equal,
)

atoms = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
values = st.one_of(atoms, st.lists(atoms, max_size=5).map(tuple))


class TestAtomicValues:
    def test_ints_are_atomic(self):
        assert is_atomic_value(42)

    def test_floats_are_atomic(self):
        assert is_atomic_value(3.14)

    def test_strings_are_atomic(self):
        assert is_atomic_value("hello")

    def test_bools_are_atomic(self):
        assert is_atomic_value(True)

    def test_none_is_not_atomic(self):
        assert not is_atomic_value(None)

    def test_tuple_is_not_atomic(self):
        assert not is_atomic_value((1, 2))

    def test_dict_is_not_a_value(self):
        assert not is_property_value({"a": 1})


class TestArrayValues:
    def test_tuple_of_atoms_is_array(self):
        assert is_array_value((1, "two", 3.0))

    def test_empty_tuple_is_array(self):
        assert is_array_value(())

    def test_nested_tuple_is_not_array(self):
        assert not is_array_value((1, (2,)))

    def test_list_is_not_array_until_normalised(self):
        assert not is_array_value([1, 2])
        assert is_array_value(normalize_value([1, 2]))


class TestNormalize:
    def test_atoms_pass_through(self):
        assert normalize_value(7) == 7

    def test_lists_become_tuples(self):
        assert normalize_value([1, 2]) == (1, 2)

    def test_none_rejected(self):
        with pytest.raises(GraphError):
            normalize_value(None)

    def test_nested_lists_rejected(self):
        with pytest.raises(GraphError):
            normalize_value([[1], [2]])

    def test_dict_rejected(self):
        with pytest.raises(GraphError):
            normalize_value({"x": 1})


class TestTypeStrictEquality:
    def test_bool_not_equal_to_int(self):
        assert not values_equal(True, 1)

    def test_int_not_equal_to_float(self):
        assert not values_equal(1, 1.0)

    def test_equal_ints(self):
        assert values_equal(5, 5)

    def test_equal_arrays(self):
        assert values_equal((1, 2), (1, 2))

    def test_array_vs_atom(self):
        assert not values_equal((1,), 1)

    def test_arrays_of_different_length(self):
        assert not values_equal((1,), (1, 2))

    def test_array_elements_type_strict(self):
        assert not values_equal((1,), (1.0,))


class TestSignatures:
    @given(values)
    def test_signature_consistent_with_equality(self, value):
        assert values_equal(value, value)
        assert value_signature(value) == value_signature(value)

    @given(values, values)
    def test_signature_iff_equal(self, left, right):
        assert (value_signature(left) == value_signature(right)) == values_equal(
            left, right
        )

    @given(values)
    def test_signature_hashable(self, value):
        hash(value_signature(value))
