"""Chaos tests: injected crashes, stuck workers, and mid-search deadlines.

Every scenario here drives the deterministic fault harness
(:mod:`repro.resilience.faults`) against the real engines -- including hard
``os._exit`` kills of pool worker processes -- and asserts the two recovery
contracts from docs/RESILIENCE.md:

1. a recovered run is *byte-identical* to an undisturbed one (positional
   shard merging), and
2. a budget or fault may degrade an answer to UNKNOWN, never to a wrong one.

CI runs this module twice: once clean, and once with ``PGSCHEMA_FAULTS``
already set to a worker-crash plan (the chaos-smoke job).  Tests therefore
install their plans explicitly -- ``install()`` overrides the env plan,
``install(None)`` disables injection for baseline runs -- and restore the
environment plan with ``uninstall()``.
"""

import os
import subprocess
import sys

import pytest

from repro.errors import BudgetExhaustedError, WorkerFailureError
from repro.resilience import Budget, faults
from repro.sat import pigeonhole, solve
from repro.satisfiability import SatisfiabilityChecker
from repro.schema import parse_schema
from repro.validation import ParallelValidator
from repro.workloads import corrupt_graph, load, user_session_graph

SCHEMA = load("user_session_edge_props")
GRAPH = user_session_graph(120, sessions_per_user=2, seed=13)
BAD_GRAPH = corrupt_graph(GRAPH, SCHEMA, "DS5", seed=3)

CYCLIC_SDL = """
type A { b: B @required }
type B { a: A @required }
"""


def _run(spec, graph=GRAPH, *, executor, jobs=4, budget=None, **kwargs):
    """Validate under an installed fault plan; always restore the env plan."""
    kwargs.setdefault("retry_base_delay", 0.01)
    faults.install(spec)
    try:
        validator = ParallelValidator(SCHEMA, jobs=jobs, executor=executor, **kwargs)
        report = validator.validate(graph, budget=budget)
    finally:
        faults.uninstall()
    return validator, report


@pytest.fixture(scope="module")
def baseline():
    """The undisturbed report (fault injection hard-disabled)."""
    faults.install(None)
    try:
        return ParallelValidator(SCHEMA, jobs=4, executor="serial").validate(GRAPH)
    finally:
        faults.uninstall()


@pytest.fixture(scope="module")
def bad_baseline():
    faults.install(None)
    try:
        return ParallelValidator(SCHEMA, jobs=4, executor="serial").validate(BAD_GRAPH)
    finally:
        faults.uninstall()


def _assert_identical(report, expected):
    assert report.complete
    assert report.conforms == expected.conforms
    assert report.keys() == expected.keys()
    assert report.summary() == expected.summary()


# --------------------------------------------------------------------------- #
# worker crashes
# --------------------------------------------------------------------------- #


def test_hard_worker_kill_recovers_byte_identically(baseline):
    """An os._exit(70) in a pool worker (the segfault/OOM-kill simulation)
    surfaces as BrokenProcessPool; retry must reproduce the exact report."""
    validator, report = _run(
        "crash@parallel.worker:shard=1,attempt=0,mode=exit", executor="process"
    )
    _assert_identical(report, baseline)
    assert validator.recovery_log  # the fault fired and was survived
    assert any(entry["executor"] == "process" for entry in validator.recovery_log)


def test_hard_worker_kill_with_violations_present(bad_baseline):
    """Recovery must also preserve a *failing* report byte-for-byte."""
    validator, report = _run(
        "crash@parallel.worker:shard=1,attempt=0,mode=exit",
        BAD_GRAPH,
        executor="process",
    )
    _assert_identical(report, bad_baseline)
    assert not report.conforms  # sanity: the corruption survived recovery
    assert validator.recovery_log


def test_raised_worker_crash_recovers(baseline):
    validator, report = _run(
        "crash@parallel.worker:shard=0,attempt=0", executor="process"
    )
    _assert_identical(report, baseline)
    assert validator.recovery_log


@pytest.mark.parametrize("executor", ["thread", "serial"])
def test_crash_recovery_on_lighter_executors(baseline, executor):
    validator, report = _run(
        "crash@parallel.worker:shard=0,attempt=0", executor=executor
    )
    _assert_identical(report, baseline)
    assert validator.recovery_log
    assert validator.recovery_log[0]["shard"] == 0
    assert validator.recovery_log[0]["attempt"] == 0


def test_non_matching_plan_changes_nothing(baseline):
    """A plan that never matches must leave run and report untouched."""
    validator, report = _run("crash@parallel.worker:shard=999", executor="process")
    _assert_identical(report, baseline)
    assert validator.recovery_log == []


# --------------------------------------------------------------------------- #
# the executor fallback ladder
# --------------------------------------------------------------------------- #


def test_ladder_falls_from_process_to_thread(baseline):
    """Crash *every* process attempt: shards must fall to the thread rung
    and still produce the identical report."""
    validator, report = _run(
        "crash@parallel.worker:executor=process", executor="process", max_retries=1
    )
    _assert_identical(report, baseline)
    assert {entry["executor"] for entry in validator.recovery_log} == {"process"}


def test_ladder_falls_all_the_way_to_serial(baseline):
    validator, report = _run(
        "crash@parallel.worker:executor=process;"
        "crash@parallel.worker:executor=thread",
        executor="process",
        max_retries=0,
    )
    _assert_identical(report, baseline)
    executors = {entry["executor"] for entry in validator.recovery_log}
    assert executors == {"process", "thread"}


def test_exhausted_ladder_raises_typed_worker_failure():
    """When even the serial rung crashes, the run must end in E_WORKER --
    not a hang, not a partial report pretending to be complete."""
    with pytest.raises(WorkerFailureError) as caught:
        _run(
            "crash@parallel.worker",
            executor="process",
            max_retries=0,
            retry_base_delay=0.0,
        )
    assert caught.value.code == "E_WORKER"
    assert caught.value.shard is not None


def test_fallback_disabled_raises_after_retries():
    with pytest.raises(WorkerFailureError) as caught:
        _run(
            "crash@parallel.worker",
            executor="serial",
            max_retries=1,
            retry_base_delay=0.0,
            fallback=False,
        )
    assert caught.value.attempts == 2  # initial try + one retry


# --------------------------------------------------------------------------- #
# stuck workers and deadlines
# --------------------------------------------------------------------------- #


def test_stuck_worker_hits_shard_timeout_and_recovers(baseline):
    """A worker sleeping past shard_timeout is treated as stuck; the retry
    (where the attempt=0 matcher no longer fires) must recover."""
    validator, report = _run(
        "delay@parallel.worker:shard=0,attempt=0,seconds=1.5",
        executor="thread",
        shard_timeout=0.2,
    )
    _assert_identical(report, baseline)
    assert validator.recovery_log
    assert "shard_timeout" in validator.recovery_log[0]["error"]


def test_deadline_during_stuck_worker_yields_partial_report():
    """When the *run deadline* (not the shard ceiling) expires while a
    worker sleeps, the result is a typed partial report -- never a report
    claiming completeness."""
    _validator, report = _run(
        "delay@parallel.worker:shard=0,attempt=0,seconds=1.5",
        executor="thread",
        budget=Budget(deadline=0.2),
    )
    assert not report.complete
    assert report.verdict == "unknown"
    assert report.interruption.dimension == "deadline"


def test_malformed_env_spec_is_a_uniform_cli_error(tmp_path):
    """A typo in PGSCHEMA_FAULTS must print error[E_FAULTS] and exit 2 --
    not escape as an import-time traceback."""
    schema = tmp_path / "s.graphql"
    schema.write_text("type T { id: ID }")
    import repro

    env = dict(os.environ, PGSCHEMA_FAULTS="boom@nowhere")
    env["PYTHONPATH"] = os.pathsep.join(
        filter(
            None,
            [os.path.dirname(os.path.dirname(repro.__file__)),
             env.get("PYTHONPATH", "")],
        )
    )
    done = subprocess.run(
        [sys.executable, "-m", "repro.cli", "check", str(schema)],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    assert done.returncode == 2
    assert done.stderr.startswith("error[E_FAULTS]:")
    assert "Traceback" not in done.stderr


def test_merge_fault_cannot_kill_the_main_process():
    """``mode=exit`` outside a registered pool worker degrades to a raised
    InjectedCrashError: a stray plan must never hard-kill the parent."""
    with pytest.raises(faults.InjectedCrashError):
        _run("crash@parallel.merge:mode=exit", executor="serial")


# --------------------------------------------------------------------------- #
# mid-search chaos in the decision procedures: UNKNOWN is never wrong
# --------------------------------------------------------------------------- #


def test_slowed_dpll_hits_deadline_instead_of_answering():
    """pigeonhole(4) is UNSAT but needs many decisions; with every decision
    delayed and a tight deadline the solver must raise -- answering SAT or
    UNSAT without finishing the search would be a guess."""
    faults.install("delay@sat.decision:seconds=0.005")
    try:
        with pytest.raises(BudgetExhaustedError) as caught:
            solve(pigeonhole(4), budget=Budget(deadline=0.05))
    finally:
        faults.uninstall()
    assert caught.value.reason.dimension == "deadline"


def test_slowed_bounded_search_reports_exhaustion():
    schema = parse_schema(CYCLIC_SDL)
    checker = SatisfiabilityChecker(schema, lint_precheck=False)
    # the witness for A is only 3 assignments away, so the injected delay
    # must exceed the deadline to deterministically interrupt the search
    faults.install("delay@bounded.assignment:seconds=0.01")
    try:
        result = checker.check_type_finite(
            "A", max_nodes=4, budget=Budget(deadline=0.005)
        )
    finally:
        faults.uninstall()
    assert result.exhausted
    assert result.reason.dimension == "deadline"
    assert not result.satisfiable  # exhausted search never claims a witness


def test_slowed_tableau_degrades_only_to_unknown():
    """Under injected per-expansion delays and shrinking deadlines, every
    verdict is either UNKNOWN or exactly the undisturbed one."""
    truth = {
        name: SatisfiabilityChecker(SCHEMA, lint_precheck=False)
        .check_type(name, find_witness=False)
        .verdict
        for name in sorted(SCHEMA.object_types)
    }
    faults.install("delay@dl.tableau:seconds=0.002")
    try:
        for deadline in (0.001, 0.01, 0.1):
            checker = SatisfiabilityChecker(
                SCHEMA, lint_precheck=False, budget=Budget(deadline=deadline)
            )
            for name, expected in truth.items():
                verdict = checker.check_type(name, find_witness=False).verdict
                assert verdict in ("unknown", expected)
    finally:
        faults.uninstall()


# --------------------------------------------------------------------------- #
# observed fault -> recovery sequences
# --------------------------------------------------------------------------- #


def test_recovery_log_entries_carry_site_and_ordered_timestamps(baseline):
    """Every recovery entry names its ladder site and carries a monotonic
    ``at`` timestamp, so the fault -> recovery sequence of a run can be
    reconstructed from the log alone."""
    validator, report = _run(
        "crash@parallel.worker:shard=0,attempt=0", executor="thread"
    )
    _assert_identical(report, baseline)
    assert validator.recovery_log
    for entry in validator.recovery_log:
        assert entry["site"] == "validation.parallel"
        assert isinstance(entry["at"], float)
    stamps = [entry["at"] for entry in validator.recovery_log]
    assert stamps == sorted(stamps)


def test_trace_records_fault_then_recovery(baseline):
    """With tracing on, an injected crash leaves a ``fault.crash`` instant
    (recorded at the injection site) followed by a ``ladder.recovery``
    instant (recorded by the parent), in that order on one timeline."""
    from repro import obs

    obs.uninstall()
    with obs.observed(trace=True, metrics=True) as observation:
        validator, report = _run(
            "crash@parallel.worker:shard=0,attempt=0", executor="thread"
        )
    _assert_identical(report, baseline)
    events = observation.tracer.events()
    fault_instants = [e for e in events if e.name == "fault.crash"]
    recoveries = [e for e in events if e.name == "ladder.recovery"]
    assert fault_instants and recoveries
    assert fault_instants[0].attrs["site"] == "parallel.worker"
    assert recoveries[0].attrs["task"] == 0
    assert recoveries[0].attrs["executor"] == "thread"
    assert fault_instants[0].start <= recoveries[0].start
    # recovery_log timestamps live on the same monotonic clock as the trace
    assert validator.recovery_log[0]["at"] >= fault_instants[0].start
    counters = observation.registry.snapshot()["counters"]
    assert counters["faults.fired.crash"] >= 1
    assert counters["ladder.failures"] >= 1
    assert counters["ladder.retries"] >= 1
