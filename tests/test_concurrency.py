"""Thread-safety hammers for the process-wide caches (ISSUE 9, satellite 1).

The service serves many tenants from one process, so the plan LRU, the
sat-cache registry and the compiled-scalar memo are hit from concurrent
threads.  These tests hammer the public entry points from a thread pool
and assert

* every thread observes **byte-identical** reports (no torn plans, no
  cross-talk between cached checkers);
* the cache bookkeeping stays consistent (hits + misses add up, sizes
  respect maxsize, eviction counters move when they should).
"""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.satisfiability import SatisfiabilityChecker
from repro.satisfiability.cache import sat_cache_clear, sat_cache_info
from repro.schema import parse_schema
from repro.schema.scalars import scalar_checker_clear, scalar_checker_info
from repro.service import report_payload
from repro.validation import plan_cache_clear, plan_cache_info, validate
from repro.validation import plan as plan_module
from repro.workloads import CORPUS, user_session_graph

THREADS = 8
ROUNDS = 6


@pytest.fixture(autouse=True)
def fresh_caches():
    plan_cache_clear()
    sat_cache_clear()
    scalar_checker_clear()
    yield
    plan_cache_clear()
    sat_cache_clear()
    scalar_checker_clear()


def canonical(report) -> str:
    return json.dumps(report_payload(report), sort_keys=True)


class TestValidateHammer:
    def test_concurrent_validate_byte_identical(self):
        """One shared schema, many threads: every report byte-identical to
        the single-threaded baseline, one plan compile total."""
        schema = parse_schema(CORPUS["user_session_edge_props"].sdl)
        graph = user_session_graph(30, 3, seed=0)
        expected = canonical(validate(schema, graph, mode="strong"))

        def worker(_index: int) -> list[str]:
            return [
                canonical(validate(schema, graph, mode="strong"))
                for _ in range(ROUNDS)
            ]

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            outcomes = list(pool.map(worker, range(THREADS)))
        assert {payload for batch in outcomes for payload in batch} == {expected}
        info = plan_cache_info()
        # the double-compile race is benign (last write wins) but must be
        # rare enough that the memo is doing its job
        assert info["size"] == 1
        assert info["hits"] >= THREADS * ROUNDS - THREADS

    def test_concurrent_distinct_schemas_no_crosstalk(self):
        """Different schemas validated concurrently never swap plans: a
        graph violating schema B still conforms to schema A."""
        sdl_a = CORPUS["user_session_edge_props"].sdl
        sdl_b = sdl_a.replace("login: String!", "login: Int!")
        schema_a = parse_schema(sdl_a)
        schema_b = parse_schema(sdl_b)
        graph = user_session_graph(10, 2, seed=0)
        expected_a = canonical(validate(schema_a, graph, mode="strong"))
        expected_b = canonical(validate(schema_b, graph, mode="strong"))
        assert expected_a != expected_b  # the schemas genuinely disagree

        def worker(index: int) -> tuple[str, ...]:
            schema, expected = (
                (schema_a, expected_a) if index % 2 == 0 else (schema_b, expected_b)
            )
            return tuple(
                canonical(validate(schema, graph, mode="strong"))
                for _ in range(ROUNDS)
            ), expected

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            for payloads, expected in pool.map(worker, range(THREADS)):
                assert set(payloads) == {expected}
        assert plan_cache_info()["size"] == 2

    def test_concurrent_eviction_churn_stays_consistent(self):
        """Hammering more schemas than the LRU holds: reports stay correct
        and the bookkeeping (size <= maxsize, evictions > 0) holds."""
        maxsize = plan_module.PLAN_CACHE_MAXSIZE
        schemas = [
            parse_schema(CORPUS["library"].sdl) for _ in range(maxsize + 4)
        ]
        graph = user_session_graph(4, 1, seed=0)
        expected = canonical(validate(schemas[0], graph, mode="weak"))

        def worker(index: int) -> str:
            return canonical(
                validate(schemas[index % len(schemas)], graph, mode="weak")
            )

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            outcomes = set(pool.map(worker, range(len(schemas) * 2)))
        assert outcomes == {expected}
        info = plan_cache_info()
        assert info["size"] <= maxsize
        assert info["evictions"] > 0


class TestSatHammer:
    def test_concurrent_check_schema_byte_identical(self):
        schema = parse_schema(CORPUS["user_session_edge_props"].sdl)
        expected = json.dumps(
            SatisfiabilityChecker(schema).check_schema(find_witnesses=False).to_json(),
            sort_keys=True,
        )

        def worker(_index: int) -> list[str]:
            checker = SatisfiabilityChecker(schema)
            return [
                json.dumps(
                    checker.check_schema(find_witnesses=False).to_json(),
                    sort_keys=True,
                )
                for _ in range(3)
            ]

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            outcomes = list(pool.map(worker, range(THREADS)))
        assert {payload for batch in outcomes for payload in batch} == {expected}
        totals = sat_cache_info()
        assert totals["hits"] + totals["misses"] > 0
        assert totals["schemas"] == 1  # one shared per-schema cache, no dupes


class TestScalarCheckerHammer:
    def test_concurrent_checker_w_memo_consistent(self):
        """checker_w memoization under contention: every thread gets a
        predicate deciding exactly values_W, and hits+misses adds up."""
        schema = parse_schema(CORPUS["user_session_edge_props"].sdl)
        refs = [
            field_def.type
            for name in sorted(schema.object_types)
            for field_def in schema.composite(name).fields
            if schema.is_scalar_type(field_def.type.base)
        ]
        samples = ("text", "", 0, 1, True, None, 3.5)

        def worker(_index: int) -> None:
            for _ in range(ROUNDS):
                for ref in refs:
                    checker = schema.scalars.checker_w(ref)
                    for value in samples:
                        assert checker(value) == schema.scalars.in_values_w(
                            value, ref
                        )

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            for result in pool.map(worker, range(THREADS)):
                assert result is None
        info = scalar_checker_info()
        # per-ref memo: at most one compiled checker per distinct TypeRef
        # (the benign double-compile race can only lose, never duplicate)
        assert info["size"] <= len(set(refs))
        assert info["hits"] + info["misses"] == THREADS * ROUNDS * len(refs)
