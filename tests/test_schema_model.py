"""The formal schema model and its accessors (Definition 4.1)."""

import pytest

from repro.errors import SchemaError
from repro.schema import FieldKind, TypeRef, parse_schema
from repro.workloads.paper_schemas import CORPUS


@pytest.fixture(scope="module")
def schema():
    return parse_schema(CORPUS["user_session_edge_props"].sdl)


class TestTypeSets:
    def test_type_names(self, schema):
        names = schema.type_names
        assert {"UserSession", "User", "Time", "Int", "String"} <= names

    def test_field_names(self, schema):
        assert {"id", "user", "startTime", "endTime", "login", "nicknames"} == set(
            schema.field_names
        )

    def test_kind_predicates(self, schema):
        assert schema.is_object_type("User")
        assert not schema.is_object_type("Time")
        assert schema.is_scalar_type("Time")
        assert schema.is_scalar_type("Int")
        assert schema.is_composite_type("User")
        assert not schema.is_union_type("User")


class TestTypeF:
    def test_attribute_types(self, schema):
        assert schema.type_f("User", "login") == TypeRef.parse("String!")
        assert schema.type_f("User", "nicknames") == TypeRef.parse("[String!]!")

    def test_relationship_types(self, schema):
        assert schema.type_f("UserSession", "user") == TypeRef.parse("User!")

    def test_undefined_points_are_none(self, schema):
        assert schema.type_f("User", "nope") is None
        assert schema.type_f("Nope", "login") is None

    def test_fields_function(self, schema):
        assert set(schema.fields("UserSession")) == {"id", "user", "startTime", "endTime"}

    def test_fields_on_unknown_type_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.fields("Nope")


class TestTypeAF:
    def test_argument_types(self, schema):
        assert schema.type_af("UserSession", "user", "certainty") == TypeRef.parse(
            "Float!"
        )
        assert schema.type_af("UserSession", "user", "comment") == TypeRef.parse(
            "String"
        )

    def test_args_function(self, schema):
        assert schema.args("UserSession", "user") == ("certainty", "comment")
        assert schema.args("User", "login") == ()
        assert schema.args("Nope", "x") == ()

    def test_undefined_argument(self, schema):
        assert schema.type_af("UserSession", "user", "nope") is None


class TestTypeAD:
    def test_standard_key_directive(self, schema):
        assert schema.type_ad("key", "fields") == TypeRef.parse("[String!]!")

    def test_argless_directives(self, schema):
        assert schema.type_ad("required", "anything") is None

    def test_unknown_directive(self, schema):
        assert schema.type_ad("nope", "x") is None


class TestFieldClassification:
    def test_attribute_vs_relationship(self, schema):
        assert schema.field("User", "login").kind is FieldKind.ATTRIBUTE
        assert schema.field("UserSession", "user").kind is FieldKind.RELATIONSHIP

    def test_enum_fields_are_attributes(self):
        s = parse_schema("enum E { A B }\ntype T { e: E }")
        assert s.field("T", "e").is_attribute

    def test_union_fields_are_relationships(self):
        s = parse_schema("type A { x: Int }\nunion U = A\ntype T { u: U }")
        assert s.field("T", "u").is_relationship


class TestUnionsAndInterfaces:
    def test_union_members(self):
        s = parse_schema(CORPUS["food_union"].sdl)
        assert s.union("Food") == {"Pizza", "Pasta"}
        with pytest.raises(SchemaError):
            s.union("Pizza")

    def test_implementation(self):
        s = parse_schema(CORPUS["food_interface"].sdl)
        assert s.implementation("Food") == {"Pizza", "Pasta"}
        with pytest.raises(SchemaError):
            s.implementation("Pizza")

    def test_object_types_below(self):
        s = parse_schema(CORPUS["food_union"].sdl)
        assert s.object_types_below("Food") == {"Pizza", "Pasta"}
        assert s.object_types_below("Pizza") == {"Pizza"}
        assert s.object_types_below("String") == frozenset()


class TestDirectives:
    def test_keys_on_type(self, schema):
        assert schema.object_types["User"].keys == (("id",), ("login",))

    def test_directives_f(self, schema):
        names = [d.name for d in schema.directives_f("UserSession", "user")]
        assert names == ["required"]
        assert schema.has_field_directive("UserSession", "user", "required")
        assert not schema.has_field_directive("UserSession", "endTime", "required")

    def test_directives_t_on_unknown_type(self, schema):
        assert schema.directives_t("Nope") == ()

    def test_applied_directive_helpers(self, schema):
        directive = schema.directives_t("User")[0]
        assert directive.name == "key"
        assert directive.argument("fields") == ("id",)
        assert directive.argument("missing", "dflt") == "dflt"
        assert directive.argument_names == ("fields",)


class TestFieldDeclarations:
    def test_declaration_listing(self, schema):
        declared = {
            (type_name, field_name)
            for type_name, field_name, _field in schema.field_declarations()
        }
        assert ("UserSession", "user") in declared
        assert ("User", "nicknames") in declared
