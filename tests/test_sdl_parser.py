"""The SDL parser (spec §3: type system definitions)."""

import pytest

from repro.errors import SDLSyntaxError
from repro.sdl import ast, parse_document, parse_type, parse_value
from repro.workloads.paper_schemas import CORPUS


def only_definition(source):
    document = parse_document(source)
    assert len(document.definitions) == 1
    return document.definitions[0]


class TestObjectTypes:
    def test_minimal_type(self):
        defn = only_definition("type T { x: Int }")
        assert isinstance(defn, ast.ObjectTypeDefinition)
        assert defn.name == "T"
        assert defn.fields[0].name == "x"

    def test_empty_field_block_allowed(self):
        # the paper's Example 6.1 writes `type OT1 { }`
        defn = only_definition("type OT1 { }")
        assert defn.fields == ()

    def test_no_field_block(self):
        defn = only_definition("type T")
        assert defn.fields == ()

    def test_implements_with_ampersands(self):
        defn = only_definition("type T implements A & B { x: Int }")
        assert defn.interfaces == ("A", "B")

    def test_implements_space_separated(self):
        defn = only_definition("type T implements A B { x: Int }")
        assert defn.interfaces == ("A", "B")

    def test_type_directives(self):
        defn = only_definition('type T @key(fields: ["id"]) { id: ID }')
        assert defn.directives[0].name == "key"
        argument = defn.directives[0].arguments[0]
        assert argument.name == "fields"
        assert argument.value == ast.ListValue((ast.StringValue("id"),))

    def test_repeated_directives(self):
        defn = only_definition('type T @key(fields: ["a"]) @key(fields: ["b"]) { a: ID b: ID }')
        assert len(defn.directives) == 2

    def test_description(self):
        defn = only_definition('"a user" type User { id: ID }')
        assert defn.description == "a user"

    def test_block_description(self):
        defn = only_definition('"""multi\nline""" type User { id: ID }')
        assert defn.description == "multi\nline"


class TestFields:
    def test_field_directives(self):
        defn = only_definition("type T { x: Int @required @deprecated }")
        assert [d.name for d in defn.fields[0].directives] == ["required", "deprecated"]

    def test_field_arguments(self):
        defn = only_definition("type T { rel(a: Float! b: String): T }")
        arguments = defn.fields[0].arguments
        assert [a.name for a in arguments] == ["a", "b"]
        assert arguments[0].type == ast.NonNullTypeNode(ast.NamedTypeNode("Float"))

    def test_argument_default(self):
        defn = only_definition("type T { len(unit: Unit = METER): Float }")
        assert defn.fields[0].arguments[0].default_value == ast.EnumValue("METER")

    def test_field_description(self):
        defn = only_definition('type T { "the x" x: Int }')
        assert defn.fields[0].description == "the x"

    def test_commas_optional(self):
        with_commas = parse_document("type T { a: Int, b: Int }")
        without = parse_document("type T { a: Int b: Int }")
        assert with_commas == without


class TestOtherDefinitions:
    def test_scalar(self):
        defn = only_definition("scalar Time")
        assert isinstance(defn, ast.ScalarTypeDefinition)

    def test_interface(self):
        defn = only_definition("interface I { x: Int }")
        assert isinstance(defn, ast.InterfaceTypeDefinition)

    def test_union(self):
        defn = only_definition("union U = A | B | C")
        assert defn.types == ("A", "B", "C")

    def test_union_leading_pipe(self):
        defn = only_definition("union U = | A | B")
        assert defn.types == ("A", "B")

    def test_enum(self):
        defn = only_definition("enum E { RED GREEN BLUE }")
        assert [v.name for v in defn.values] == ["RED", "GREEN", "BLUE"]

    def test_enum_value_cannot_be_bool_or_null(self):
        with pytest.raises(SDLSyntaxError):
            parse_document("enum E { true }")
        with pytest.raises(SDLSyntaxError):
            parse_document("enum E { null }")

    def test_input_object(self):
        defn = only_definition("input Point { x: Int y: Int }")
        assert isinstance(defn, ast.InputObjectTypeDefinition)
        assert len(defn.fields) == 2

    def test_directive_definition(self):
        defn = only_definition(
            "directive @limit(n: Int!) on FIELD_DEFINITION | OBJECT"
        )
        assert defn.name == "limit"
        assert defn.locations == ("FIELD_DEFINITION", "OBJECT")

    def test_schema_definition(self):
        defn = only_definition("schema { query: Query mutation: Mut }")
        assert defn.operation_types == (("query", "Query"), ("mutation", "Mut"))


class TestTypeReferences:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("T", ast.NamedTypeNode("T")),
            ("T!", ast.NonNullTypeNode(ast.NamedTypeNode("T"))),
            ("[T]", ast.ListTypeNode(ast.NamedTypeNode("T"))),
            ("[T!]", ast.ListTypeNode(ast.NonNullTypeNode(ast.NamedTypeNode("T")))),
            ("[T]!", ast.NonNullTypeNode(ast.ListTypeNode(ast.NamedTypeNode("T")))),
            (
                "[T!]!",
                ast.NonNullTypeNode(
                    ast.ListTypeNode(ast.NonNullTypeNode(ast.NamedTypeNode("T")))
                ),
            ),
            ("[[T]]", ast.ListTypeNode(ast.ListTypeNode(ast.NamedTypeNode("T")))),
        ],
    )
    def test_shapes(self, source, expected):
        assert parse_type(source) == expected

    def test_unclosed_bracket(self):
        with pytest.raises(SDLSyntaxError):
            parse_type("[T")


class TestValues:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("1", ast.IntValue(1)),
            ("-2", ast.IntValue(-2)),
            ("1.5", ast.FloatValue(1.5)),
            ('"s"', ast.StringValue("s")),
            ("true", ast.BooleanValue(True)),
            ("false", ast.BooleanValue(False)),
            ("null", ast.NullValue()),
            ("RED", ast.EnumValue("RED")),
            ("[1, 2]", ast.ListValue((ast.IntValue(1), ast.IntValue(2)))),
            ("{a: 1}", ast.ObjectValue((("a", ast.IntValue(1)),))),
        ],
    )
    def test_literals(self, source, expected):
        assert parse_value(source) == expected

    def test_variables_rejected_in_const_position(self):
        with pytest.raises(SDLSyntaxError):
            parse_value("$var")


class TestErrors:
    def test_unknown_keyword(self):
        with pytest.raises(SDLSyntaxError):
            parse_document("frobnicate T { }")

    def test_missing_colon(self):
        with pytest.raises(SDLSyntaxError):
            parse_document("type T { x Int }")

    def test_unclosed_braces(self):
        with pytest.raises(SDLSyntaxError):
            parse_document("type T { x: Int")

    def test_schema_takes_no_description(self):
        with pytest.raises(SDLSyntaxError):
            parse_document('"desc" schema { query: Q }')

    def test_error_location_reported(self):
        try:
            parse_document("type T {\n  x Int\n}")
        except SDLSyntaxError as error:
            assert error.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected SDLSyntaxError")


class TestPaperCorpus:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_corpus_parses(self, name):
        document = parse_document(CORPUS[name].sdl)
        assert document.definitions

    def test_figure_1_structure(self):
        document = parse_document(CORPUS["figure_1"].sdl)
        names = [
            defn.name
            for defn in document.definitions
            if not isinstance(defn, ast.SchemaDefinition)
        ]
        assert names == [
            "Starship",
            "LenUnit",
            "Character",
            "Human",
            "Droid",
            "Query",
            "Episode",
            "SearchResult",
        ]
