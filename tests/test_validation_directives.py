"""Directives satisfaction: rules DS1-DS7 (Definition 5.2)."""

import pytest

from repro.pg import GraphBuilder
from repro.schema import parse_schema
from repro.validation import validate


@pytest.fixture(params=["indexed", "naive"])
def engine(request):
    return request.param


def fired(schema, graph, engine, mode="directives"):
    return {
        violation.rule
        for violation in validate(schema, graph, mode=mode, engine=engine).violations
    }


class TestDS1Distinct:
    SCHEMA = parse_schema("type A { rel: [A] @distinct \n plain: [A] }")

    def test_parallel_distinct_edges_violate(self, engine):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "A")
            .edge("a", "rel", "b")
            .edge("a", "rel", "b")
            .graph()
        )
        assert fired(self.SCHEMA, graph, engine) == {"DS1"}

    def test_distinct_targets_fine(self, engine):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "A")
            .node("c", "A")
            .edge("a", "rel", "b")
            .edge("a", "rel", "c")
            .graph()
        )
        assert fired(self.SCHEMA, graph, engine) == set()

    def test_parallel_edges_without_directive_fine(self, engine):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "A")
            .edge("a", "plain", "b")
            .edge("a", "plain", "b")
            .graph()
        )
        assert fired(self.SCHEMA, graph, engine) == set()

    def test_interface_declared_distinct_covers_implementors(self, engine):
        schema = parse_schema(
            """
            interface I { rel: [I] @distinct }
            type A implements I { rel: [I] }
            """
        )
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "A")
            .edge("a", "rel", "b")
            .edge("a", "rel", "b")
            .graph()
        )
        assert fired(schema, graph, engine) == {"DS1"}


class TestDS2NoLoops:
    SCHEMA = parse_schema("type A { rel: [A] @noLoops \n free: [A] }")

    def test_loop_violates(self, engine):
        graph = GraphBuilder().node("a", "A").edge("a", "rel", "a").graph()
        assert fired(self.SCHEMA, graph, engine) == {"DS2"}

    def test_non_loop_fine(self, engine):
        graph = (
            GraphBuilder().node("a", "A").node("b", "A").edge("a", "rel", "b").graph()
        )
        assert fired(self.SCHEMA, graph, engine) == set()

    def test_loop_on_free_field_fine(self, engine):
        graph = GraphBuilder().node("a", "A").edge("a", "free", "a").graph()
        assert fired(self.SCHEMA, graph, engine) == set()


class TestDS3UniqueForTarget:
    SCHEMA = parse_schema(
        """
        type Publisher { published: [Book] @uniqueForTarget }
        type Book { title: String }
        """
    )

    def test_two_incoming_violate(self, engine):
        graph = (
            GraphBuilder()
            .node("p1", "Publisher")
            .node("p2", "Publisher")
            .node("b", "Book")
            .edge("p1", "published", "b")
            .edge("p2", "published", "b")
            .graph()
        )
        assert fired(self.SCHEMA, graph, engine) == {"DS3"}

    def test_one_incoming_each_fine(self, engine):
        graph = (
            GraphBuilder()
            .node("p1", "Publisher")
            .node("b1", "Book")
            .node("b2", "Book")
            .edge("p1", "published", "b1")
            .edge("p1", "published", "b2")
            .graph()
        )
        assert fired(self.SCHEMA, graph, engine) == set()

    def test_sources_outside_declaring_type_ignored(self, engine):
        schema = parse_schema(
            """
            type Publisher { published: [Book] @uniqueForTarget }
            type Pirate { published: [Book] }
            type Book { title: String }
            """
        )
        graph = (
            GraphBuilder()
            .node("p", "Publisher")
            .node("x", "Pirate")
            .node("b", "Book")
            .edge("p", "published", "b")
            .edge("x", "published", "b")
            .graph()
        )
        assert fired(schema, graph, engine) == set()


class TestDS4RequiredForTarget:
    SCHEMA = parse_schema(
        """
        type Publisher { published: [Book] @requiredForTarget }
        type Book { title: String }
        """
    )

    def test_book_without_publisher_violates(self, engine):
        graph = GraphBuilder().node("b", "Book").graph()
        assert fired(self.SCHEMA, graph, engine) == {"DS4"}

    def test_book_with_publisher_fine(self, engine):
        graph = (
            GraphBuilder()
            .node("p", "Publisher")
            .node("b", "Book")
            .edge("p", "published", "b")
            .graph()
        )
        assert fired(self.SCHEMA, graph, engine) == set()

    def test_edge_from_wrong_type_does_not_count(self, engine):
        schema = parse_schema(
            """
            type Publisher { published: [Book] @requiredForTarget }
            type Pirate { published: [Book] }
            type Book { title: String }
            """
        )
        graph = (
            GraphBuilder()
            .node("x", "Pirate")
            .node("b", "Book")
            .edge("x", "published", "b")
            .graph()
        )
        assert fired(schema, graph, engine) == {"DS4"}

    def test_union_target_members_all_constrained(self, engine):
        schema = parse_schema(
            """
            type Owner { owns: [Asset] @requiredForTarget }
            union Asset = House | Car
            type House { x: Int }
            type Car { x: Int }
            """
        )
        graph = GraphBuilder().node("h", "House").node("c", "Car").node("o", "Owner").graph()
        graph.add_edge("e", "o", "h", "owns")
        report = validate(schema, graph, mode="directives", engine=engine)
        violated_nodes = {v.elements[0] for v in report.violations if v.rule == "DS4"}
        assert violated_nodes == {"c"}


class TestDS5RequiredProperty:
    SCHEMA = parse_schema(
        "type A { name: String! @required \n tags: [Int] @required \n opt: Int }"
    )

    def test_all_present(self, engine):
        graph = GraphBuilder().node("a", "A", name="x", tags=[1]).graph()
        assert fired(self.SCHEMA, graph, engine) == set()

    def test_missing_required_violates(self, engine):
        graph = GraphBuilder().node("a", "A", tags=[1]).graph()
        assert fired(self.SCHEMA, graph, engine) == {"DS5"}

    def test_empty_required_list_violates(self, engine):
        graph = GraphBuilder().node("a", "A", name="x", tags=[]).graph()
        assert fired(self.SCHEMA, graph, engine) == {"DS5"}

    def test_missing_optional_fine(self, engine):
        graph = GraphBuilder().node("a", "A", name="x", tags=[1, 2]).graph()
        assert fired(self.SCHEMA, graph, engine) == set()

    def test_interface_declared_required_attribute(self, engine):
        schema = parse_schema(
            """
            interface Named { name: String! @required }
            type A implements Named { name: String! }
            """
        )
        graph = GraphBuilder().node("a", "A").graph()
        assert fired(schema, graph, engine) == {"DS5"}


class TestDS6RequiredEdge:
    SCHEMA = parse_schema(
        """
        type Session { user: User! @required }
        type User { id: ID }
        """
    )

    def test_edge_present(self, engine):
        graph = (
            GraphBuilder()
            .node("s", "Session")
            .node("u", "User")
            .edge("s", "user", "u")
            .graph()
        )
        assert fired(self.SCHEMA, graph, engine) == set()

    def test_edge_missing_violates(self, engine):
        graph = GraphBuilder().node("s", "Session").node("u", "User").graph()
        assert fired(self.SCHEMA, graph, engine) == {"DS6"}

    def test_ds6_needs_only_the_label(self, engine):
        # DS6 demands an outgoing edge labelled f; target typing is WS3
        graph = (
            GraphBuilder()
            .node("s", "Session")
            .node("t", "Session")
            .edge("s", "user", "t")
            .graph()
        )
        report = validate(self.SCHEMA, graph, mode="directives", engine=engine)
        ds6_nodes = {v.elements[0] for v in report.violations if v.rule == "DS6"}
        assert "s" not in ds6_nodes
        assert "t" in ds6_nodes  # t itself still lacks a user edge


class TestDS7Keys:
    SCHEMA = parse_schema(
        'type User @key(fields: ["id"]) { id: ID \n login: String }'
    )

    def test_distinct_keys_fine(self, engine):
        graph = (
            GraphBuilder().node("u1", "User", id="a").node("u2", "User", id="b").graph()
        )
        assert fired(self.SCHEMA, graph, engine) == set()

    def test_duplicate_keys_violate(self, engine):
        graph = (
            GraphBuilder().node("u1", "User", id="a").node("u2", "User", id="a").graph()
        )
        assert fired(self.SCHEMA, graph, engine) == {"DS7"}

    def test_both_missing_counts_as_agreeing(self, engine):
        graph = GraphBuilder().node("u1", "User").node("u2", "User").graph()
        assert fired(self.SCHEMA, graph, engine) == {"DS7"}

    def test_one_missing_disagrees(self, engine):
        graph = GraphBuilder().node("u1", "User", id="a").node("u2", "User").graph()
        assert fired(self.SCHEMA, graph, engine) == set()

    def test_type_strict_key_comparison(self, engine):
        graph = GraphBuilder().node("u1", "User", id=1).node("u2", "User", id="1").graph()
        assert fired(self.SCHEMA, graph, engine) == set()

    def test_composite_key(self, engine):
        schema = parse_schema(
            'type P @key(fields: ["x", "y"]) { x: Int \n y: Int }'
        )
        same = (
            GraphBuilder()
            .node("p1", "P", x=1, y=2)
            .node("p2", "P", x=1, y=2)
            .graph()
        )
        differ = (
            GraphBuilder()
            .node("p1", "P", x=1, y=2)
            .node("p2", "P", x=1, y=3)
            .graph()
        )
        assert fired(schema, same, engine) == {"DS7"}
        assert fired(schema, differ, engine) == set()

    def test_multiple_keys_checked_independently(self, engine):
        schema = parse_schema(
            'type U @key(fields: ["a"]) @key(fields: ["b"]) { a: Int \n b: Int }'
        )
        graph = (
            GraphBuilder()
            .node("u1", "U", a=1, b=10)
            .node("u2", "U", a=2, b=10)
            .graph()
        )
        assert fired(schema, graph, engine) == {"DS7"}

    def test_non_scalar_key_fields_ignored(self, engine):
        # DS7 filters key fields to those with scalar types
        schema = parse_schema(
            'type U @key(fields: ["friend"]) { friend: U }'
        )
        graph = GraphBuilder().node("u1", "U").node("u2", "U").graph()
        # every pair vacuously agrees on an empty scalar-field list
        assert fired(schema, graph, engine) == {"DS7"}

    def test_array_valued_keys(self, engine):
        schema = parse_schema('type U @key(fields: ["xs"]) { xs: [Int] }')
        same = (
            GraphBuilder()
            .node("u1", "U", xs=[1, 2])
            .node("u2", "U", xs=[1, 2])
            .graph()
        )
        differ = (
            GraphBuilder()
            .node("u1", "U", xs=[1, 2])
            .node("u2", "U", xs=[2, 1])
            .graph()
        )
        assert fired(schema, same, engine) == {"DS7"}
        assert fired(schema, differ, engine) == set()
