"""The observability layer: registry, tracer, exporters, CLI artifacts.

Three contracts are pinned here:

1. **zero-cost off**: with nothing installed every obs helper is one global
   load and a ``None`` check -- asserted as an absolute per-call ceiling,
   mirroring the fault-harness overhead contract of ``bench_e12``;
2. **span correctness under fan-out**: shard spans nest inside the run span
   on the thread rung, and spans recorded inside pool *processes* ship back
   with the task result and merge at the same barrier as the report merge
   (which therefore stays byte-identical with tracing on or off);
3. **frozen artifact shapes**: the exported Chrome-trace and metrics JSON
   conform to the checked-in schemas under ``docs/schemas/``, and the legacy
   profiling surfaces (``validate --profile`` timings, ``sat --profile``
   ``last_profile``) keep their historical keys while being derived from
   the registry.
"""

import json
import os
import time

import pytest

from repro import obs
from repro.obs import export
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import SpanEvent, TracedResult, Tracer
from repro.satisfiability import SatisfiabilityChecker
from repro.satisfiability.engine import profile_from_registry
from repro.validation import (
    IncrementalValidator,
    IndexedValidator,
    NaiveValidator,
    ParallelValidator,
    compile_plan,
)
from repro.workloads import load, user_session_graph

SCHEMA = load("user_session_edge_props")
GRAPH = user_session_graph(60, sessions_per_user=2, seed=7)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
METRICS_SCHEMA = json.load(
    open(os.path.join(REPO, "docs", "schemas", "metrics.schema.json"))
)
TRACE_SCHEMA = json.load(
    open(os.path.join(REPO, "docs", "schemas", "trace.schema.json"))
)


@pytest.fixture(autouse=True)
def _no_leaked_observation():
    """Every test starts and ends with observation off."""
    obs.uninstall()
    yield
    obs.uninstall()


# --------------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------------- #


def test_histogram_moments_are_exact():
    hist = Histogram()
    hist.extend([1.0, 2.0, 3.0, 4.0])
    payload = hist.to_json()
    assert payload["count"] == 4
    assert payload["sum"] == 10.0
    assert payload["min"] == 1.0
    assert payload["max"] == 4.0
    assert payload["mean"] == 2.5


def test_histogram_reservoir_is_bounded_and_deterministic():
    hist = Histogram(capacity=16)
    for value in range(10_000):
        hist.observe(float(value))
    assert hist.count == 10_000
    assert len(hist._reservoir) <= 16 + 1
    # determinism: a second identical stream gives the identical reservoir
    again = Histogram(capacity=16)
    for value in range(10_000):
        again.observe(float(value))
    assert hist._reservoir == again._reservoir
    # the kept sample spans the stream, so extreme quantiles stay sane
    assert hist.quantile(0.0) <= hist.quantile(0.5) <= hist.quantile(1.0)


def test_registry_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.count("a.b")
    registry.count("a.b", 2)
    registry.gauge("g", 7)
    registry.gauge("g", 9)
    registry.observe("h", 0.5)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"a.b": 3}
    assert snapshot["gauges"] == {"g": 9}
    assert snapshot["histograms"]["h"]["count"] == 1


def test_registry_merge_snapshot_adds_counters_and_merges_histograms():
    parent, worker = MetricsRegistry(), MetricsRegistry()
    parent.count("n", 1)
    parent.observe("h", 1.0)
    worker.count("n", 2)
    worker.observe("h", 3.0)
    parent.merge_snapshot(worker.drain())
    snapshot = parent.snapshot()
    assert snapshot["counters"] == {"n": 3}
    assert snapshot["histograms"]["h"]["count"] == 2
    assert snapshot["histograms"]["h"]["sum"] == 4.0
    # drain cleared the worker side
    assert worker.snapshot()["counters"] == {}


def test_registry_timer_observes_seconds():
    registry = MetricsRegistry()
    with registry.timer("t"):
        pass
    payload = registry.snapshot()["histograms"]["t"]
    assert payload["count"] == 1
    assert payload["sum"] >= 0.0


# --------------------------------------------------------------------------- #
# tracer
# --------------------------------------------------------------------------- #


def test_spans_nest_and_carry_attributes():
    tracer = Tracer()
    with tracer.span("outer", kind="demo"):
        with tracer.span("inner") as inner:
            inner.set(extra=1)
    events = tracer.events()
    by_name = {event.name: event for event in events}
    outer, inner = by_name["outer"], by_name["inner"]
    assert outer.attrs["kind"] == "demo"
    assert inner.attrs["extra"] == 1
    # interval containment is what the trace viewer infers nesting from
    assert outer.start <= inner.start
    assert inner.start + inner.duration <= outer.start + outer.duration


def test_span_records_error_attribute_on_exception():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("no")
    (event,) = tracer.events()
    assert event.attrs["error"] == "ValueError"


def test_instant_events_have_no_duration():
    tracer = Tracer()
    tracer.instant("tick", n=1)
    (event,) = tracer.events()
    assert event.duration is None
    assert event.attrs == {"n": 1}


def test_absorb_merges_foreign_events():
    parent, worker = Tracer(), Tracer(epoch=0.0)
    with parent.span("parent"):
        pass
    with worker.span("worker"):
        pass
    parent.absorb(worker.drain())
    assert {event.name for event in parent.events()} == {"parent", "worker"}
    assert worker.events() == []


# --------------------------------------------------------------------------- #
# the global runtime: off by default, zero-cost off
# --------------------------------------------------------------------------- #


def test_helpers_are_noops_when_off():
    assert obs.active() is None
    obs.count("x")
    obs.gauge("x", 1)
    obs.observe("x", 1)
    obs.instant("x")
    span = obs.span("x", a=1)
    assert span is obs.span("y")  # the shared null span, no allocation
    with span:
        span.set(b=2)


def test_observed_scopes_install_and_uninstall():
    with obs.observed(trace=True, metrics=True) as observation:
        assert obs.active() is observation
        obs.count("c")
        with obs.span("s"):
            pass
    assert obs.active() is None
    assert observation.registry.counter_value("c") == 1
    assert [event.name for event in observation.tracer.events()] == ["s"]


def test_disabled_path_overhead_is_bounded():
    """The off-switch contract: a disabled helper call stays under 2µs.

    The real bound is tens of nanoseconds (one global load, one ``is None``);
    2µs absorbs CI noise by two orders of magnitude while still catching any
    accidental allocation/locking on the disabled path.
    """
    calls = 20_000
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(calls):
            obs.count("validation.checks.WS1")
            obs.span("validation.shard")
        best = min(best, time.perf_counter() - start)
    per_call = best / (2 * calls)
    assert per_call < 2e-6, f"disabled obs call took {per_call * 1e9:.0f}ns"


def test_package_and_unwrap_round_trip():
    # off: package is the identity (allocation-free disabled path)
    payload = {"r": 1}
    assert obs.package(payload) is payload
    assert obs.unwrap(payload) is payload
    assert obs.unwrap(None) is None
    # on: package drains the worker-side buffers into a TracedResult ...
    with obs.observed(trace=True, metrics=True):
        obs.count("w")
        with obs.span("work"):
            pass
        shipped = obs.package(payload)
    assert isinstance(shipped, TracedResult)
    assert shipped.payload is payload
    # ... and unwrap folds them into the (parent-side) active observation
    with obs.observed(trace=True, metrics=True) as parent:
        assert obs.unwrap(shipped) is payload
    assert parent.registry.counter_value("w") == 1
    assert "work" in {event.name for event in parent.tracer.events()}


def test_worker_config_round_trip():
    assert obs.worker_config() is None
    with obs.observed(trace=True, metrics=True) as parent:
        config = obs.worker_config()
    assert config == {"epoch": parent.tracer.epoch, "trace": True, "metrics": True}
    obs.install_worker(config)
    try:
        worker = obs.active()
        assert worker.tracer.epoch == parent.tracer.epoch
        assert worker.registry is not None
    finally:
        obs.uninstall()
    obs.install_worker(None)
    assert obs.active() is None


# --------------------------------------------------------------------------- #
# span correctness under fan-out
# --------------------------------------------------------------------------- #


def _contains(outer: SpanEvent, inner: SpanEvent) -> bool:
    return (
        outer.start <= inner.start
        and inner.start + (inner.duration or 0.0)
        <= outer.start + outer.duration + 1e-9
    )


def test_thread_fanout_spans_nest_inside_run_span():
    with obs.observed(trace=True, metrics=True) as observation:
        validator = ParallelValidator(SCHEMA, jobs=2, executor="thread")
        report = validator.validate(GRAPH)
    assert report.complete
    events = observation.tracer.events()
    by_name: dict = {}
    for event in events:
        by_name.setdefault(event.name, []).append(event)
    (run,) = by_name["validation.run"]
    shards = by_name["validation.shard"]
    assert len(shards) == validator.jobs
    for shard in shards:
        assert shard.attrs["executor"] == "thread"
        assert _contains(run, shard)
    (merge,) = by_name["validation.merge"]
    assert _contains(run, merge)
    counters = observation.registry.snapshot()["counters"]
    assert counters["validation.shards"] == validator.jobs
    assert counters["validation.checks.WS1"] == GRAPH.num_nodes
    assert counters["validation.checks.DS1"] == GRAPH.num_edges


def test_process_fanout_merges_worker_spans_and_keeps_report_identical():
    baseline = ParallelValidator(SCHEMA, jobs=2, executor="process").validate(GRAPH)
    with obs.observed(trace=True, metrics=True) as observation:
        traced = ParallelValidator(SCHEMA, jobs=2, executor="process").validate(GRAPH)
    # contract 2 of docs/RESILIENCE.md survives tracing: identical reports
    assert traced.complete and traced.conforms == baseline.conforms
    assert traced.keys() == baseline.keys()
    assert traced.summary() == baseline.summary()
    events = observation.tracer.events()
    shards = [event for event in events if event.name == "validation.shard"]
    assert len(shards) == 2
    worker_pids = {event.pid for event in shards}
    assert os.getpid() not in worker_pids  # recorded inside the workers ...
    (run,) = [event for event in events if event.name == "validation.run"]
    for shard in shards:  # ... on the shared monotonic epoch
        assert _contains(run, shard)
    # worker-side counters merged at the same barrier
    counters = observation.registry.snapshot()["counters"]
    assert counters["validation.checks.WS1"] == GRAPH.num_nodes


def test_sat_portfolio_spans_and_counters():
    with obs.observed(trace=True, metrics=True) as observation:
        # analysis off: the test asserts tableau spans/counters, which the
        # dataflow pre-verdict feed would otherwise skip entirely
        checker = SatisfiabilityChecker(
            load("library"), cache=False, analysis_precheck=False
        )
        report = checker.check_schema(engine="portfolio", jobs=2)
    names = {event.name for event in observation.tracer.events()}
    assert {"sat.run", "sat.unit", "tableau.search"} <= names
    counters = observation.registry.snapshot()["counters"]
    assert counters["sat.units"] == checker.last_profile["units"]
    assert counters["tableau.searches"] >= 1
    assert sum(
        value for name, value in counters.items() if name.startswith("sat.types.")
    ) == len(report.types)


# --------------------------------------------------------------------------- #
# exporters and checked-in artifact schemas
# --------------------------------------------------------------------------- #


def test_chrome_trace_payload_shape():
    tracer = Tracer()
    with tracer.span("validation.run", jobs=2):
        tracer.instant("fault.crash", site="parallel.worker")
    payload = export.chrome_trace_payload(tracer, command="test")
    assert export.check_schema(payload, TRACE_SCHEMA) == []
    complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
    assert complete[0]["name"] == "validation.run"
    assert complete[0]["cat"] == "validation"
    assert complete[0]["args"] == {"jobs": 2}
    assert instants[0]["s"] == "t"
    assert payload["otherData"]["command"] == "test"
    # ts is relative to the tracer epoch, so every event lands at >= 0
    assert all(event["ts"] >= 0 for event in payload["traceEvents"])


def test_metrics_payload_conforms_and_carries_cache_gauges():
    registry = MetricsRegistry()
    registry.count("validation.runs")
    registry.observe("validation.shard_size", 42)
    export.attach_cache_stats(registry)
    payload = export.metrics_payload(registry, command="test")
    assert export.check_schema(payload, METRICS_SCHEMA) == []
    assert payload["format"] == "pgschema-metrics"
    assert "validation.plan_cache_info.hits" in payload["gauges"]
    assert "sat.cache_info.hits" in payload["gauges"]


def test_check_schema_rejects_bad_payloads():
    schema = METRICS_SCHEMA
    assert export.check_schema([], schema)  # wrong top-level type
    assert export.check_schema({"format": "pgschema-metrics"}, schema)  # missing keys
    bad = {
        "format": "wrong",
        "version": 1,
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    problems = export.check_schema(bad, schema)
    assert any("format" in problem for problem in problems)
    assert export.check_schema(
        {
            "format": "pgschema-metrics",
            "version": 1,
            "counters": {"a": "not a number"},
            "gauges": {},
            "histograms": {},
        },
        schema,
    )


def test_cli_trace_and_metrics_artifacts(tmp_path):
    from repro.cli import main
    from repro.pg.io import dumps_graph
    from repro.workloads import CORPUS

    schema_path = tmp_path / "schema.graphql"
    graph_path = tmp_path / "graph.json"
    schema_path.write_text(CORPUS["user_session_edge_props"].sdl)
    graph_path.write_text(dumps_graph(GRAPH))
    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.json"
    code = main(
        [
            "validate", str(schema_path), str(graph_path),
            "--engine", "parallel", "--jobs", "2",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ]
    )
    assert code == 0
    assert obs.active() is None  # the CLI uninstalled its observation
    trace = json.loads(trace_path.read_text())
    metrics = json.loads(metrics_path.read_text())
    assert export.check_schema(trace, TRACE_SCHEMA) == []
    assert export.check_schema(metrics, METRICS_SCHEMA) == []
    names = {event["name"] for event in trace["traceEvents"]}
    assert {"sdl.parse", "schema.build", "pg.load", "validation.run"} <= names
    assert metrics["counters"]["validation.runs"] == 1
    assert "validation.plan_cache.hits" in metrics["counters"] or (
        "validation.plan_cache.misses" in metrics["counters"]
    )
    assert any(name.startswith("validation.checks.") for name in metrics["counters"])
    assert "validation.plan_cache_info.hits" in metrics["gauges"]
    assert "sat.cache_info.hits" in metrics["gauges"]


def test_cli_sat_trace_artifacts(tmp_path):
    from repro.cli import main
    from repro.workloads import CORPUS

    schema_path = tmp_path / "schema.graphql"
    schema_path.write_text(CORPUS["library"].sdl)
    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.json"
    code = main(
        [
            "sat", str(schema_path),
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ]
    )
    assert code == 0
    trace = json.loads(trace_path.read_text())
    metrics = json.loads(metrics_path.read_text())
    assert export.check_schema(trace, TRACE_SCHEMA) == []
    assert export.check_schema(metrics, METRICS_SCHEMA) == []
    assert {"sat.run", "sat.unit"} <= {e["name"] for e in trace["traceEvents"]}
    assert metrics["counters"]["sat.units"] >= 1


def test_cli_stats_json_uses_metrics_vocabulary(tmp_path, capsys):
    from repro.cli import main
    from repro.pg.io import dumps_graph

    graph_path = tmp_path / "graph.json"
    graph_path.write_text(dumps_graph(GRAPH))
    assert main(["stats", str(graph_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert export.check_schema(payload, METRICS_SCHEMA) == []
    assert payload["counters"]["pg.nodes"] == GRAPH.num_nodes
    assert payload["counters"]["pg.edges"] == GRAPH.num_edges
    assert any(name.startswith("pg.nodes.") for name in payload["counters"])


def test_obs_check_module_cli(tmp_path):
    good = tmp_path / "good.json"
    good.write_text(
        json.dumps(export.metrics_payload(MetricsRegistry()))
    )
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    schema_path = os.path.join(REPO, "docs", "schemas", "metrics.schema.json")
    import subprocess
    import sys

    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    ok = subprocess.run(
        [sys.executable, "-m", "repro.obs", "check", str(good), schema_path],
        capture_output=True, text=True, env=env,
    )
    assert ok.returncode == 0, ok.stderr
    broken = subprocess.run(
        [sys.executable, "-m", "repro.obs", "check", str(bad), schema_path],
        capture_output=True, text=True, env=env,
    )
    assert broken.returncode == 1
    assert "missing required key" in broken.stderr


# --------------------------------------------------------------------------- #
# backward-compatible profiling surfaces
# --------------------------------------------------------------------------- #


def test_profile_from_registry_keeps_legacy_shape():
    registry = MetricsRegistry()
    registry.count("sat.units", 5)
    registry.count("sat.wins.tableau", 3)
    registry.count("sat.wins.cache", 2)
    profile = profile_from_registry(registry, "portfolio", "process", 4)
    assert profile == {
        "engine": "portfolio",
        "executor": "process",
        "jobs": 4,
        "units": 5,
        "wins": {"tableau": 3, "cache": 2},
    }


def test_last_profile_shape_unchanged():
    checker = SatisfiabilityChecker(load("library"), cache=False)
    checker.check_schema(engine="portfolio", jobs=2)
    profile = checker.last_profile
    assert set(profile) == {"engine", "executor", "jobs", "units", "wins"}
    assert isinstance(profile["units"], int)
    assert all(isinstance(count, int) for count in profile["wins"].values())
    checker.check_schema(engine="serial")
    assert checker.last_profile == {
        "engine": "serial",
        "executor": "serial",
        "jobs": 1,
        "units": 0,
        "wins": {},
    }


def test_profile_rules_timings_shape_unchanged():
    validator = IndexedValidator(SCHEMA, plan=compile_plan(SCHEMA))
    report, timings = validator.profile_rules(GRAPH, mode="strong")
    assert report.complete
    assert set(timings) == set(report.rules_checked)
    assert all(isinstance(value, float) for value in timings.values())
    assert all(value >= 0.0 for value in timings.values())


def test_profile_rules_feeds_active_registry():
    with obs.observed(metrics=True) as observation:
        validator = IndexedValidator(SCHEMA, plan=compile_plan(SCHEMA))
        validator.profile_rules(GRAPH, mode="strong")
    histograms = observation.registry.snapshot()["histograms"]
    assert "validation.rule.WS1" in histograms
    assert histograms["validation.rule.WS1"]["count"] == 1


# --------------------------------------------------------------------------- #
# run-level instrumentation across all four engines
# --------------------------------------------------------------------------- #


def test_every_engine_emits_run_span_and_counters():
    small = user_session_graph(12, sessions_per_user=1, seed=3)
    engines = {
        "naive": lambda: NaiveValidator(SCHEMA).validate(small),
        "indexed": lambda: IndexedValidator(
            SCHEMA, plan=compile_plan(SCHEMA)
        ).validate(small),
        "parallel": lambda: ParallelValidator(
            SCHEMA, jobs=1, executor="serial"
        ).validate(small),
        "incremental": lambda: IncrementalValidator(SCHEMA, small).report(),
    }
    for engine, run in engines.items():
        with obs.observed(trace=True, metrics=True) as observation:
            run()
        spans = [
            event
            for event in observation.tracer.drain()
            if isinstance(event, SpanEvent) and event.name == "validation.run"
        ]
        assert spans, f"{engine}: no validation.run span"
        assert spans[0].attrs.get("engine") == engine
        counters = observation.registry.snapshot()["counters"]
        assert counters.get("validation.runs") == 1, engine
        if engine != "incremental":
            assert counters.get("validation.checks.WS1") == small.num_nodes
            assert counters.get("validation.checks.DS1") == small.num_edges


def test_incremental_mutations_count_scope_rechecks():
    small = user_session_graph(8, sessions_per_user=1, seed=5)
    validator = IncrementalValidator(SCHEMA, small)
    with obs.observed(metrics=True) as observation:
        node = next(iter(small.nodes))
        validator.set_property(node, "login", "renamed")
    counters = observation.registry.snapshot()["counters"]
    assert counters.get("validation.rechecks.node", 0) >= 1
    assert "validation.runs" not in counters  # O(delta), not a full run
