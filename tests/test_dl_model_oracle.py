"""Tableau soundness oracle: brute-force model enumeration.

For TBox-free concepts we can enumerate every interpretation over a small
domain (≤3 elements, ≤2 concept names, ≤2 roles) and evaluate the concept
semantics directly.  Whenever the enumeration finds a model, the tableau
must answer SAT — a brute-force check that the tableau never reports a
false UNSAT.  (The converse direction cannot be asserted at a fixed domain
size: satisfiable ALCQI concepts may need more than 3 elements.)
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    And,
    AtLeast,
    AtMost,
    Bottom,
    Concept,
    Exists,
    Forall,
    Name,
    Not,
    Or,
    Role,
    Tableau,
    Top,
)

A, B = Name("A"), Name("B")
r, s = Role("r"), Role("s")

DOMAIN = (0, 1, 2)
NAMES = ("A", "B")
ROLES = ("r", "s")


def _interpretations():
    """Every interpretation over the fixed 3-element domain."""
    label_choices = list(itertools.product([False, True], repeat=len(DOMAIN) * len(NAMES)))
    edge_slots = [
        (role, x, y) for role in ROLES for x in DOMAIN for y in DOMAIN
    ]
    # cap the edge subsets per label assignment for tractability: sample a
    # deterministic spread rather than all 2^18 combinations
    edge_choices = []
    for mask in range(0, 2 ** len(edge_slots), 97):  # stride keeps ~2700 subsets
        edge_choices.append(
            frozenset(
                slot for index, slot in enumerate(edge_slots) if mask >> index & 1
            )
        )
    for labels in label_choices:
        label_map = {
            (name, element): labels[i * len(DOMAIN) + j]
            for i, name in enumerate(NAMES)
            for j, element in enumerate(DOMAIN)
        }
        for edges in edge_choices:
            yield label_map, edges


def _holds(concept: Concept, element, label_map, edges) -> bool:
    if isinstance(concept, Top):
        return True
    if isinstance(concept, Bottom):
        return False
    if isinstance(concept, Name):
        return label_map.get((concept.name, element), False)
    if isinstance(concept, Not):
        return not _holds(concept.body, element, label_map, edges)
    if isinstance(concept, And):
        return all(_holds(part, element, label_map, edges) for part in concept.parts)
    if isinstance(concept, Or):
        return any(_holds(part, element, label_map, edges) for part in concept.parts)

    def successors(role: Role):
        if role.inverse:
            return [x for x in DOMAIN if (role.name, x, element) in edges]
        return [y for y in DOMAIN if (role.name, element, y) in edges]

    if isinstance(concept, Exists):
        return any(
            _holds(concept.body, y, label_map, edges) for y in successors(concept.role)
        )
    if isinstance(concept, Forall):
        return all(
            _holds(concept.body, y, label_map, edges) for y in successors(concept.role)
        )
    if isinstance(concept, AtLeast):
        count = sum(
            1 for y in successors(concept.role) if _holds(concept.body, y, label_map, edges)
        )
        return count >= concept.n
    if isinstance(concept, AtMost):
        count = sum(
            1 for y in successors(concept.role) if _holds(concept.body, y, label_map, edges)
        )
        return count <= concept.n
    raise TypeError(concept)


def brute_force_satisfiable(concept: Concept) -> bool:
    return any(
        _holds(concept, 0, label_map, edges)
        for label_map, edges in _interpretations()
    )


names = st.sampled_from([A, B])
roles = st.sampled_from([r, s, r.inv()])


def concepts(depth: int = 2):
    if depth == 0:
        return st.one_of(names, st.just(Top()), st.just(Bottom()))
    sub = concepts(depth - 1)
    return st.one_of(
        names,
        sub.map(Not),
        st.tuples(sub, sub).map(lambda pair: And(pair)),
        st.tuples(sub, sub).map(lambda pair: Or(pair)),
        st.tuples(roles, sub).map(lambda pair: Exists(*pair)),
        st.tuples(roles, sub).map(lambda pair: Forall(*pair)),
        st.tuples(st.integers(1, 2), roles, sub).map(lambda t: AtLeast(*t)),
        st.tuples(st.integers(0, 2), roles, sub).map(lambda t: AtMost(*t)),
    )


@given(concepts())
@settings(max_examples=40, deadline=None)
def test_tableau_never_reports_false_unsat(concept):
    if brute_force_satisfiable(concept):
        assert Tableau().is_satisfiable(concept), concept


@pytest.mark.parametrize(
    "concept",
    [
        A & ~A,
        Exists(r, A) & Forall(r, ~A),
        AtLeast(2, r, A) & AtMost(1, r, Top()),
        Exists(r, Forall(r.inv(), ~A)) & A,
        Forall(r, Bottom()) & Exists(r, Top()),
        AtLeast(1, r, A & ~A),
    ],
)
def test_known_unsat_also_unsat_by_brute_force(concept):
    """Contrapositive spot-check on hand-picked UNSAT concepts."""
    assert not Tableau().is_satisfiable(concept)
    assert not brute_force_satisfiable(concept)
