"""The paper's worked examples (3.1-3.12), each pinned as a test."""

import pytest

from repro.pg import GraphBuilder
from repro.schema import parse_schema
from repro.validation import validate
from repro.workloads.paper_schemas import CORPUS
from tests.conftest import rules_fired


class TestExample31:
    """Only UserSession and User nodes are allowed."""

    def test_other_labels_rejected(self, user_session_schema):
        graph = GraphBuilder().node("x", "Invoice").graph()
        assert rules_fired(user_session_schema, graph) == {"SS1"}

    def test_the_two_types_allowed(self, user_session_schema):
        graph = (
            GraphBuilder()
            .node("u", "User", id="1", login="a")
            .node("s", "UserSession", id="2", startTime="t")
            .edge("s", "user", "u", {"certainty": 1.0})
            .graph()
        )
        assert validate(user_session_schema, graph).conforms


class TestExample33:
    """User: id/login mandatory, nicknames optional array of strings."""

    def test_mandatory_properties(self, user_session_schema):
        graph = GraphBuilder().node("u", "User", id="1").graph()
        assert "DS5" in rules_fired(user_session_schema, graph)

    def test_nicknames_optional(self, user_session_schema):
        graph = GraphBuilder().node("u", "User", id="1", login="a").graph()
        assert "DS5" not in rules_fired(user_session_schema, graph)

    def test_nicknames_must_be_array(self, user_session_schema):
        graph = (
            GraphBuilder().node("u", "User", id="1", login="a", nicknames="al").graph()
        )
        assert "WS1" in rules_fired(user_session_schema, graph)

    def test_session_endTime_optional(self, user_session_schema):
        graph = (
            GraphBuilder()
            .node("u", "User", id="1", login="a")
            .node("s", "UserSession", id="2", startTime="t", endTime="t2")
            .edge("s", "user", "u", {"certainty": 1.0})
            .graph()
        )
        assert validate(user_session_schema, graph).conforms


class TestExample34:
    """@key on id: all User nodes need unique id values."""

    def test_key_enforced(self, user_session_schema):
        graph = (
            GraphBuilder()
            .node("u1", "User", id="same", login="a")
            .node("u2", "User", id="same", login="b")
            .graph()
        )
        assert "DS7" in rules_fired(user_session_schema, graph)

    def test_both_keys_enforced(self):
        schema = parse_schema(CORPUS["user_session_keyed"].sdl)
        graph = (
            GraphBuilder()
            .node("u1", "User", id="1", login="same")
            .node("u2", "User", id="2", login="same")
            .graph()
        )
        assert "DS7" in rules_fired(schema, graph)


class TestExample35:
    """Every UserSession has exactly one user edge to a User."""

    def test_missing_edge(self, user_session_schema):
        graph = (
            GraphBuilder().node("s", "UserSession", id="1", startTime="t").graph()
        )
        assert "DS6" in rules_fired(user_session_schema, graph)

    def test_two_edges(self, user_session_schema):
        graph = (
            GraphBuilder()
            .node("u1", "User", id="1", login="a")
            .node("u2", "User", id="2", login="b")
            .node("s", "UserSession", id="3", startTime="t")
            .edge("s", "user", "u1", {"certainty": 1.0})
            .edge("s", "user", "u2", {"certainty": 1.0})
            .graph()
        )
        assert "WS4" in rules_fired(user_session_schema, graph)


class TestExample36:
    """The library schema's cardinality behaviours."""

    def test_author_without_edges_allowed(self, library_schema):
        graph = GraphBuilder().node("a", "Author").graph()
        assert validate(library_schema, graph).conforms

    def test_book_needs_an_author(self, library_schema):
        graph = GraphBuilder().node("b", "Book", title="T").graph()
        assert rules_fired(library_schema, graph) >= {"DS6"}

    def test_at_most_one_favorite_book(self, library_schema):
        graph = (
            GraphBuilder()
            .node("a", "Author")
            .node("b1", "Book", title="x")
            .node("b2", "Book", title="y")
            .edge("a", "favoriteBook", "b1")
            .edge("a", "favoriteBook", "b2")
            .graph()
        )
        assert "WS4" in rules_fired(library_schema, graph)

    def test_many_authors_allowed(self, library_schema):
        graph = (
            GraphBuilder()
            .node("a1", "Author")
            .node("a2", "Author")
            .node("b", "Book", title="T")
            .node("p", "Publisher")
            .edge("b", "author", "a1")
            .edge("b", "author", "a2")
            .edge("p", "published", "b")
            .graph()
        )
        assert validate(library_schema, graph).conforms


class TestExample37:
    """@distinct on author edges is symmetric over endpoint pairs."""

    def test_duplicate_author_edges(self, library_schema):
        graph = (
            GraphBuilder()
            .node("a", "Author")
            .node("b", "Book", title="T")
            .edge("b", "author", "a")
            .edge("b", "author", "a")
            .graph()
        )
        assert "DS1" in rules_fired(library_schema, graph)

    def test_related_author_loop(self, library_schema):
        graph = (
            GraphBuilder().node("a", "Author").edge("a", "relatedAuthor", "a").graph()
        )
        assert "DS2" in rules_fired(library_schema, graph)


class TestExample38:
    """BookSeries/Publisher target-side constraints."""

    def test_book_in_two_series(self, library_schema):
        graph = (
            GraphBuilder()
            .node("a", "Author")
            .node("b", "Book", title="T")
            .node("s1", "BookSeries")
            .node("s2", "BookSeries")
            .node("p", "Publisher")
            .edge("b", "author", "a")
            .edge("p", "published", "b")
            .edge("s1", "contains", "b")
            .edge("s2", "contains", "b")
            .graph()
        )
        assert "DS3" in rules_fired(library_schema, graph)

    def test_unpublished_book(self, library_schema):
        graph = (
            GraphBuilder()
            .node("a", "Author")
            .node("b", "Book", title="T")
            .edge("b", "author", "a")
            .graph()
        )
        assert "DS4" in rules_fired(library_schema, graph)

    def test_exactly_one_publisher(self, library_schema):
        graph = (
            GraphBuilder()
            .node("a", "Author")
            .node("b", "Book", title="T")
            .node("p1", "Publisher")
            .node("p2", "Publisher")
            .edge("b", "author", "a")
            .edge("p1", "published", "b")
            .edge("p2", "published", "b")
            .graph()
        )
        assert "DS3" in rules_fired(library_schema, graph)

    def test_book_without_series_fine(self, library_schema):
        graph = (
            GraphBuilder()
            .node("a", "Author")
            .node("b", "Book", title="T")
            .node("p", "Publisher")
            .edge("b", "author", "a")
            .edge("p", "published", "b")
            .graph()
        )
        assert validate(library_schema, graph).conforms


class TestExamples39And310:
    """Union and interface targets capture the same restriction."""

    @pytest.mark.parametrize("which", ["food_union", "food_interface"])
    def test_both_targets_accepted(self, which):
        schema = parse_schema(CORPUS[which].sdl)
        for target_label, props in (
            ("Pizza", {"name": "M", "toppings": ("x",)}),
            ("Pasta", {"name": "C"}),
        ):
            graph = (
                GraphBuilder()
                .node("p", "Person", name="A")
                .node("t", target_label, **props)
                .edge("p", "favoriteFood", "t")
                .graph()
            )
            assert validate(schema, graph).conforms, which

    @pytest.mark.parametrize("which", ["food_union", "food_interface"])
    def test_person_target_rejected(self, which):
        schema = parse_schema(CORPUS[which].sdl)
        graph = (
            GraphBuilder()
            .node("p", "Person", name="A")
            .node("q", "Person", name="B")
            .edge("p", "favoriteFood", "q")
            .graph()
        )
        assert "WS3" in rules_fired(schema, graph)

    def test_equivalence_on_random_graphs(self):
        """Examples 3.9/3.10 claim the two schemas restrict identically."""
        union_schema = parse_schema(CORPUS["food_union"].sdl)
        interface_schema = parse_schema(CORPUS["food_interface"].sdl)
        from repro.pg import random_graph

        for seed in range(20):
            graph = random_graph(
                8,
                12,
                node_labels=("Person", "Pizza", "Pasta", "Other"),
                edge_labels=("favoriteFood", "weird"),
                prop_names=("name", "toppings"),
                seed=seed,
            )
            left = validate(union_schema, graph).conforms
            right = validate(interface_schema, graph).conforms
            assert left == right


class TestExample311:
    """Multiple source types for owner edges."""

    def test_both_sources_accepted(self):
        schema = parse_schema(CORPUS["vehicles"].sdl)
        graph = (
            GraphBuilder()
            .node("p", "Person", name="A")
            .node("c", "Car", brand="X")
            .node("m", "Motorcycle", brand="Y")
            .edge("c", "owner", "p")
            .edge("m", "owner", "p")
            .graph()
        )
        assert validate(schema, graph).conforms


class TestExample312:
    """Edge properties via field arguments."""

    def test_certainty_and_comment(self, user_session_schema):
        graph = (
            GraphBuilder()
            .node("u", "User", id="1", login="a")
            .node("s", "UserSession", id="2", startTime="t")
            .edge("s", "user", "u", {"certainty": 0.9, "comment": "fine"})
            .graph()
        )
        assert validate(user_session_schema, graph).conforms

    def test_wrong_certainty_type(self, user_session_schema):
        graph = (
            GraphBuilder()
            .node("u", "User", id="1", login="a")
            .node("s", "UserSession", id="2", startTime="t")
            .edge("s", "user", "u", {"certainty": "high"})
            .graph()
        )
        assert "WS2" in rules_fired(user_session_schema, graph)

    def test_mandatory_certainty_via_extension_rule(self, user_session_schema):
        # Example 3.12's prose says certainty is mandatory; the formal rules
        # omit it, so the "extended" mode's EP1 covers it
        graph = (
            GraphBuilder()
            .node("u", "User", id="1", login="a")
            .node("s", "UserSession", id="2", startTime="t")
            .edge("s", "user", "u", {"comment": "no certainty"})
            .graph()
        )
        assert validate(user_session_schema, graph, mode="strong").conforms
        extended = rules_fired(user_session_schema, graph, mode="extended")
        assert extended == {"EP1"}


class TestExample42:
    """The formal capture of the food-union schema."""

    def test_formalisation(self, food_union_schema):
        from repro.schema import TypeRef

        schema = food_union_schema
        assert schema.type_f("Person", "name") == TypeRef.parse("String!")
        assert schema.type_f("Person", "favoriteFood") == TypeRef.parse("Food")
        assert schema.type_f("Pizza", "toppings") == TypeRef.parse("[String!]!")
        assert schema.union("Food") == {"Pizza", "Pasta"}
        assert schema.args("Person", "name") == ()
