"""Shared fixtures and helpers for the test suite.

Also provides a per-test wall-clock ceiling: with ``pytest-timeout``
installed (CI) its ``--timeout`` option governs; without it, a SIGALRM
fallback aborts any test running longer than ``PGSCHEMA_TEST_TIMEOUT``
seconds (default 120) so a hung worker or deadlocked pool can never wedge
the suite.  The fallback is a no-op off the main thread and on platforms
without SIGALRM.
"""

import importlib.util
import os
import signal
import threading

import pytest

from repro.schema import parse_schema
from repro.validation import validate
from repro.workloads.paper_schemas import CORPUS

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None
_FALLBACK_TIMEOUT = float(os.environ.get("PGSCHEMA_TEST_TIMEOUT", "120"))


@pytest.fixture(autouse=_HAVE_PYTEST_TIMEOUT is False)
def _sigalrm_test_timeout(request):
    """SIGALRM-based per-test ceiling when pytest-timeout is unavailable."""
    if (
        _FALLBACK_TIMEOUT <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded PGSCHEMA_TEST_TIMEOUT={_FALLBACK_TIMEOUT:g}s: "
            f"{request.node.nodeid}"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, _FALLBACK_TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def rules_fired(schema, graph, mode="strong", engine="indexed"):
    """The set of rule ids violated by the graph."""
    report = validate(schema, graph, mode=mode, engine=engine)
    return {violation.rule for violation in report.violations}


@pytest.fixture(scope="session")
def user_session_schema():
    return parse_schema(CORPUS["user_session_edge_props"].sdl)


@pytest.fixture(scope="session")
def library_schema():
    return parse_schema(CORPUS["library"].sdl)


@pytest.fixture(scope="session")
def food_union_schema():
    return parse_schema(CORPUS["food_union"].sdl)


@pytest.fixture(scope="session")
def food_interface_schema():
    return parse_schema(CORPUS["food_interface"].sdl)
