"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.schema import parse_schema
from repro.validation import validate
from repro.workloads.paper_schemas import CORPUS


def rules_fired(schema, graph, mode="strong", engine="indexed"):
    """The set of rule ids violated by the graph."""
    report = validate(schema, graph, mode=mode, engine=engine)
    return {violation.rule for violation in report.violations}


@pytest.fixture(scope="session")
def user_session_schema():
    return parse_schema(CORPUS["user_session_edge_props"].sdl)


@pytest.fixture(scope="session")
def library_schema():
    return parse_schema(CORPUS["library"].sdl)


@pytest.fixture(scope="session")
def food_union_schema():
    return parse_schema(CORPUS["food_union"].sdl)


@pytest.fixture(scope="session")
def food_interface_schema():
    return parse_schema(CORPUS["food_interface"].sdl)
