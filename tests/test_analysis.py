"""The schema dataflow analyzer: lattice, passes, pre-verdicts, surfaces.

The heart of the file is the differential suite: on every corpus schema,
the scaling generators and random schemas, every SAT/UNSAT pre-verdict the
fixpoints emit must agree with the Theorem-3 tableau, and ``check_schema``
reports must be byte-identical with the analysis feed on or off.
"""

import json

import pytest

from repro.analysis import (
    AnalysisError,
    AnalysisPass,
    PassManager,
    analysis_cache_clear,
    analyze_schema,
    default_passes,
    fixpoint,
    sat_preverdicts,
)
from repro.analysis.cardinality import CardinalityFacts
from repro.analysis.graph import TypeDependencyGraph
from repro.analysis.lattice import (
    EMPTY,
    ONE_OR_MORE,
    TOP,
    ZERO,
    Interval,
    at_least,
    at_most,
    exactly,
)
from repro.cli import main
from repro.errors import SchemaError
from repro.lint.diagnostics import Diagnostic, Severity, sort_key
from repro.lint.engine import resolve_rules
from repro.satisfiability import SatisfiabilityChecker
from repro.schema import parse_schema
from repro.workloads import (
    CORPUS,
    deep_lattice_schema,
    hub_chain_schema,
    load,
    near_unsat_schema,
    random_schema,
)


# --------------------------------------------------------------------------- #
# the interval lattice
# --------------------------------------------------------------------------- #


class TestInterval:
    def test_constants(self):
        assert TOP == Interval(0, None)
        assert ZERO == Interval(0, 0)
        assert EMPTY.is_empty
        assert ONE_OR_MORE == Interval(1, None)

    def test_meet_is_intersection(self):
        assert at_least(2).meet(at_most(5)) == Interval(2, 5)
        assert at_least(2).meet(at_most(1)).is_empty
        assert TOP.meet(exactly(3)) == exactly(3)

    def test_join_is_hull(self):
        assert exactly(1).join(exactly(4)) == Interval(1, 4)
        assert TOP.join(exactly(2)) == TOP

    def test_contains(self):
        assert exactly(3).contains(3)
        assert not exactly(3).contains(2)
        assert TOP.contains(10**9)
        assert not EMPTY.contains(0)

    def test_str_forms(self):
        assert str(TOP) == "[0, ∞)"
        assert str(exactly(2)) == "[2, 2]"
        assert str(EMPTY) == "∅"

    def test_meet_commutes_and_empty_absorbs(self):
        a, b = Interval(1, 7), Interval(4, None)
        assert a.meet(b) == b.meet(a) == Interval(4, 7)
        assert EMPTY.meet(TOP).is_empty


# --------------------------------------------------------------------------- #
# the type-dependency graph
# --------------------------------------------------------------------------- #


class TestTypeDependencyGraph:
    def test_allowed_is_the_forall_meet(self):
        schema = load("food_interface")
        graph = TypeDependencyGraph(schema)
        for object_type in schema.object_types:
            for field_name in graph.applicable.get(object_type, {}):
                allowed = graph.allowed(object_type, field_name)
                for declaration in graph.applicable[object_type][field_name]:
                    assert allowed <= graph.below(declaration.base)

    def test_own_covers_every_object_relationship(self):
        schema = load("library")
        graph = TypeDependencyGraph(schema)
        for type_name, field_name, field_def in schema.field_declarations():
            if field_def.is_relationship and type_name in schema.object_types:
                assert (type_name, field_name) in graph.own

    def test_obligations_and_caps_resolve_to_object_targets(self):
        schema = load("example_6_1_a")
        graph = TypeDependencyGraph(schema)
        assert graph.obligations_at("OT1", "hasOT1")
        assert graph.caps_at("OT1", "hasOT1")


# --------------------------------------------------------------------------- #
# the pass framework
# --------------------------------------------------------------------------- #


class _Noop(AnalysisPass):
    name = "noop"

    def run(self, context):
        return "fact"


class TestPassManager:
    def test_unknown_dependency_rejected(self):
        class Bad(AnalysisPass):
            name = "bad"
            requires = ("missing",)

            def run(self, context):  # pragma: no cover
                return None

        with pytest.raises(AnalysisError, match="requires 'missing'"):
            PassManager([Bad()])

    def test_duplicate_name_rejected(self):
        with pytest.raises(AnalysisError, match="duplicate"):
            PassManager([_Noop(), _Noop()])

    def test_facts_and_timings_recorded(self):
        result = PassManager([_Noop()]).run(load("library"))
        assert result.fact("noop") == "fact"
        assert "noop" in result.timings

    def test_fixpoint_counts_rounds(self):
        state = {"n": 0}

        def step():
            state["n"] += 1
            return state["n"] < 4

        assert fixpoint(step, name="t") == 4

    def test_fixpoint_ceiling_guards_nonmonotone_steps(self):
        with pytest.raises(AnalysisError, match="did not converge"):
            fixpoint(lambda: True, name="diverge", max_rounds=10)

    def test_diagnostics_sorted_regardless_of_emission_order(self):
        """Fixpoint passes may emit findings in any order; reports are
        deterministic by (line, column, code, location, message)."""
        findings = [
            Diagnostic("PG012", Severity.WARNING, "b", location="B.f"),
            Diagnostic("PG011", Severity.ERROR, "a", location="A"),
            Diagnostic("PG011", Severity.ERROR, "z", location="A"),
        ]

        class Shuffled(AnalysisPass):
            name = "shuffled"

            def run(self, context):
                for finding in reversed(findings):
                    context.emit(finding)
                return None

        result = PassManager([Shuffled()]).run(load("library"))
        assert list(result.diagnostics) == sorted(findings, key=sort_key)


# --------------------------------------------------------------------------- #
# the cardinality pass
# --------------------------------------------------------------------------- #


class TestCardinality:
    def facts(self, schema) -> CardinalityFacts:
        return analyze_schema(schema).fact("cardinality")

    def test_example_6_1_a_target_is_dead(self):
        facts = self.facts(load("example_6_1_a"))
        assert "OT1" in facts.dead
        assert facts.interval("OT1") == ZERO
        assert facts.type_verdict("OT1") is False

    def test_diagram_b_cycle_stays_undecided(self):
        facts = self.facts(load("diagram_b"))
        assert not facts.dead
        for type_name in ("OT1", "OT2", "OT3"):
            assert facts.type_verdict(type_name) is None

    def test_library_is_entirely_good(self):
        schema = load("library")
        facts = self.facts(schema)
        assert facts.good == frozenset(schema.object_types)
        assert all(v is True for v in facts.field_verdicts.values())

    def test_unservable_obligation_beyond_lint(self):
        # the polynomial PG003 fixpoint skips empty source families; the
        # analyzer's rule 3 proves the target dead anyway
        schema = parse_schema(
            "interface Emitter { to: [T] @requiredForTarget }\n"
            "type T { name: String }"
        )
        facts = self.facts(schema)
        assert "T" in facts.dead
        from repro.lint.engine import unsat_diagnostics

        assert "T" not in unsat_diagnostics(schema)

    def test_near_unsat_blocks_flip_with_the_second_obligation(self):
        alive = self.facts(near_unsat_schema(2, collide=False))
        assert not alive.dead
        assert alive.type_verdict("Sink0") is True
        dead = self.facts(near_unsat_schema(2, collide=True))
        assert {"Sink0", "Sink1", "Probe"} <= set(dead.dead)

    def test_deep_lattice_refuses_cyclic_sat_claims(self):
        facts = self.facts(deep_lattice_schema(4, 2))
        assert not facts.dead
        assert not facts.good


# --------------------------------------------------------------------------- #
# the satellite passes (diagnostics surfaced as PG013-PG018)
# --------------------------------------------------------------------------- #


def _codes(schema):
    return [d.code for d in analyze_schema(schema).diagnostics]


class TestSatellitePasses:
    def test_implied_directive_across_inheritance(self):
        schema = parse_schema(
            "interface I { moved: [J] @required }\n"
            "type A implements I { moved: [J] @required }\n"
            "type J { name: String }"
        )
        assert "PG013" in _codes(schema)

    def test_contradictory_inheritance_on_inconsistent_schema(self):
        schema = parse_schema(
            "interface P1 { f: [A] }\n"
            "interface P2 { f: [B] }\n"
            "type A implements P1 { f: [A] }\n"
            "type B implements P2 { f: [B] }\n"
            "type C implements P1 & P2 { f: [A] }",
            check=False,
        )
        assert "PG014" in _codes(schema)

    def test_key_domain_collision_and_vacuous_key(self):
        schema = parse_schema(
            "enum Color { RED GREEN }\n"
            'type A @key(fields: ["flag"]) @key(fields: ["flag", "hue"]) {\n'
            "  flag: Boolean!\n  hue: Color!\n}"
        )
        codes = _codes(schema)
        assert codes.count("PG015") == 2  # 2 and 4 value tuples
        assert "PG016" in codes

    def test_key_pass_handles_interface_keys(self):
        schema = parse_schema(
            'interface I @key(fields: ["flag"]) { flag: Boolean! }\n'
            "type A implements I { flag: Boolean! }"
        )
        assert "PG015" in _codes(schema)

    def test_dead_abstract_type_and_isolated_type(self):
        schema = parse_schema(
            "interface Emitter { to: [T] @requiredForTarget }\n"
            "type T { name: String }\n"
            "union Only = T\n"
            "type Lonely { tag: String }"
        )
        codes = _codes(schema)
        assert "PG017" in codes
        assert "PG018" in codes


# --------------------------------------------------------------------------- #
# memoization and the lint surface
# --------------------------------------------------------------------------- #


class TestFrontDoor:
    def test_analyze_schema_memoizes_per_instance(self):
        schema = load("library")
        assert analyze_schema(schema) is analyze_schema(schema)
        analysis_cache_clear()
        assert analyze_schema(schema) is not None

    def test_new_rules_never_join_the_unsat_class(self):
        # byte-identity of sat reports rests on the lint pre-pass surface
        # staying exactly {PG001, PG003}
        from repro.lint.rules import all_rules

        assert {r.code for r in all_rules() if r.unsat} == {"PG001", "PG003"}

    def test_lint_suppresses_findings_already_reported(self):
        from repro.lint import lint_schema

        # example_6_1_a's OT1 is PG001 territory; PG011 must stay silent
        findings = lint_schema(load("example_6_1_a"))
        codes = [f.code for f in findings]
        assert "PG001" in codes
        assert "PG011" not in codes

    def test_select_by_new_slug(self):
        assert [r.code for r in resolve_rules(select=["interval-unsat"])] == [
            "PG011"
        ]

    def test_comma_bundled_selectors(self):
        codes = [r.code for r in resolve_rules(select=["PG011,PG017", "PG013"])]
        assert codes == ["PG011", "PG013", "PG017"]

    def test_unknown_rule_suggests_closest(self):
        with pytest.raises(SchemaError, match="unknown lint rule") as info:
            resolve_rules(select=["PG0011"])
        assert "did you mean" in str(info.value)
        with pytest.raises(SchemaError, match="interval-unsat"):
            resolve_rules(select=["interval-unsats"])


# --------------------------------------------------------------------------- #
# the differential suite: pre-verdicts vs the tableau, byte for byte
# --------------------------------------------------------------------------- #


def _generated_schemas():
    yield "hub_chain", hub_chain_schema(depth=5, leaves=3)
    yield "deep_lattice", deep_lattice_schema(4, 2)
    yield "near_unsat_sat", near_unsat_schema(3, collide=False)
    yield "near_unsat_unsat", near_unsat_schema(3, collide=True)
    for seed in range(6):
        yield f"random{seed}", random_schema(seed=seed)


def _all_schemas():
    for name in CORPUS:
        yield name, load(name)
    yield from _generated_schemas()


@pytest.mark.parametrize(
    "name,schema", _all_schemas(), ids=lambda value: value if isinstance(value, str) else ""
)
def test_preverdicts_agree_with_the_tableau(name, schema):
    pre = sat_preverdicts(schema)
    oracle = SatisfiabilityChecker(
        schema, cache=False, lint_precheck=False, analysis_precheck=False
    )
    for type_name, claimed in sorted(pre.types.items()):
        actual = oracle.check_type(
            type_name, find_witness=False
        ).tableau_satisfiable
        assert actual == claimed, f"{name}: type {type_name}"
    for (type_name, field_name), claimed in sorted(pre.fields.items()):
        assert (
            oracle.check_field(type_name, field_name) == claimed
        ), f"{name}: field {type_name}.{field_name}"


@pytest.mark.parametrize(
    "name",
    ["example_6_1_a", "diagram_b", "diagram_c", "library", "food_interface"],
)
@pytest.mark.parametrize("engine", ["serial", "portfolio"])
def test_reports_are_byte_identical_with_analysis_on_or_off(name, engine):
    schema = load(name)
    with_feed = SatisfiabilityChecker(schema, cache=False)
    without = SatisfiabilityChecker(schema, cache=False, analysis_precheck=False)
    report_on = with_feed.check_schema(engine=engine, find_witnesses=True)
    report_off = without.check_schema(engine=engine, find_witnesses=True)
    dump = lambda report: json.dumps(report.to_json(), sort_keys=True)  # noqa: E731
    assert dump(report_on) == dump(report_off)


def test_portfolio_accounts_analysis_wins():
    checker = SatisfiabilityChecker(load("library"), cache=False)
    report = checker.check_schema(engine="portfolio")
    assert report.sound
    wins = checker.last_profile["wins"]
    assert wins.get("analysis", 0) > 0
    assert wins.get("tableau", 0) == 0  # the whole schema decided statically


def test_corpus_static_decision_rate_meets_the_bar():
    """At least 30% of corpus elements (types + relationship declarations)
    must be decided without any tableau search -- the acceptance floor."""
    decided = total = 0
    for name in CORPUS:
        schema = load(name)
        pre = sat_preverdicts(schema)
        decided += pre.decided
        total += len(schema.object_types) + sum(
            1
            for *_x, field_def in schema.field_declarations()
            if field_def.is_relationship
        )
    assert decided / total >= 0.30


def test_cache_hits_still_win_over_analysis():
    schema = load("library")
    first = SatisfiabilityChecker(schema)
    first.check_schema(engine="portfolio")
    second = SatisfiabilityChecker(schema)
    second.check_schema(engine="portfolio")
    assert second.last_profile["wins"].get("cache", 0) > 0


def test_budgeted_checkers_bypass_the_feed():
    from repro.resilience import Budget

    checker = SatisfiabilityChecker(load("library"), budget=Budget(max_nodes=10**6))
    assert checker.analysis_verdicts() is None
    disabled = SatisfiabilityChecker(load("library"), analysis_precheck=False)
    assert disabled.analysis_verdicts() is None


# --------------------------------------------------------------------------- #
# the CLI surface
# --------------------------------------------------------------------------- #


class TestAnalyzeCommand:
    @pytest.fixture
    def library_file(self, tmp_path):
        path = tmp_path / "library.graphql"
        path.write_text(CORPUS["library"].sdl)
        return str(path)

    def test_human_output_and_exit_zero(self, library_file, capsys):
        assert main(["analyze", library_file]) == 0
        out = capsys.readouterr().out
        assert "Book: sat" in out
        assert "decided statically" in out

    def test_error_findings_exit_one(self, tmp_path, capsys):
        path = tmp_path / "dead.graphql"
        path.write_text(
            "interface Emitter { to: [T] @requiredForTarget }\n"
            "type T { name: String }\n"
        )
        assert main(["analyze", str(path)]) == 1
        assert "PG011" in capsys.readouterr().out

    def test_json_payload_shape(self, library_file, capsys):
        assert main(["analyze", library_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"passes", "types", "fields", "diagnostics"}
        assert [entry["name"] for entry in payload["passes"]] == [
            "cardinality",
            "implication",
            "keys",
            "reachability",
        ]
        assert payload["types"]["Book"]["verdict"] == "sat"
        assert payload["fields"]["Book.author"] == "sat"

    def test_timings_go_to_stderr(self, library_file, capsys):
        assert main(["analyze", library_file, "--timings"]) == 0
        assert "cardinality" in capsys.readouterr().err

    def test_sat_no_analysis_flag(self, library_file, capsys):
        assert main(
            ["sat", library_file, "--no-witness", "--no-analysis", "--profile"]
        ) == 0
        err = capsys.readouterr().err
        assert "analysis" not in err.split("decided by:")[1].splitlines()[0]

    def test_analyze_obs_metrics(self, library_file, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert main(["analyze", library_file, "--metrics", str(metrics)]) == 0
        payload = json.loads(metrics.read_text())
        text = json.dumps(payload)
        assert "analysis.pass.cardinality.seconds" in text


def test_default_passes_pipeline_names():
    assert [p.name for p in default_passes()] == [
        "cardinality",
        "implication",
        "keys",
        "reachability",
    ]
