"""Schema inference: induced schemas must be satisfied by their instance."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.inference import infer_schema
from repro.pg import GraphBuilder, PropertyGraph, random_graph
from repro.validation import validate
from repro.workloads import food_graph, library_graph, user_session_graph


class TestSelfSatisfaction:
    """The core guarantee: a graph strongly satisfies its inferred schema."""

    @pytest.mark.parametrize("seed", range(3))
    def test_user_session_workload(self, seed):
        graph = user_session_graph(8, 2, seed=seed)
        result = infer_schema(graph)
        report = validate(result.schema, graph)
        assert report.conforms, report.summary()

    @pytest.mark.parametrize("seed", range(3))
    def test_library_workload(self, seed):
        graph = library_graph(4, 6, 1, 2, seed=seed)
        result = infer_schema(graph)
        assert validate(result.schema, graph).conforms

    def test_food_workload(self):
        graph = food_graph(10, seed=0)
        assert validate(infer_schema(graph).schema, graph).conforms

    @given(
        num_nodes=st.integers(min_value=1, max_value=14),
        num_edges=st.integers(min_value=0, max_value=20),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_graphs_property(self, num_nodes, num_edges, seed):
        graph = random_graph(num_nodes, num_edges, seed=seed)
        result = infer_schema(graph)
        report = validate(result.schema, graph)
        assert report.conforms, report.summary()

    def test_empty_graph(self):
        result = infer_schema(PropertyGraph())
        assert validate(result.schema, PropertyGraph()).conforms


class TestInferredStructure:
    def test_types_and_required(self):
        graph = (
            GraphBuilder()
            .node("a1", "Article", title="T1", views=3)
            .node("a2", "Article", title="T2")
            .graph()
        )
        schema = infer_schema(graph).schema
        assert set(schema.object_types) == {"Article"}
        assert schema.has_field_directive("Article", "title", "required")
        assert not schema.has_field_directive("Article", "views", "required")
        assert schema.type_f("Article", "views").base == "Int"

    def test_scalar_widening(self):
        graph = (
            GraphBuilder()
            .node("a1", "T", x=1)
            .node("a2", "T", x=2.5)
            .node("a3", "T", y=1)
            .node("a4", "T", y="text")
            .graph()
        )
        schema = infer_schema(graph).schema
        assert schema.type_f("T", "x").base == "Float"
        assert schema.type_f("T", "y").base == "Any"
        assert validate(schema, graph).conforms

    def test_mixed_atom_and_array(self):
        graph = (
            GraphBuilder().node("a", "T", x=1).node("b", "T", x=[1, 2]).graph()
        )
        result = infer_schema(graph)
        assert result.schema.type_f("T", "x").base == "Any"
        assert validate(result.schema, graph).conforms

    def test_list_attribute(self):
        graph = GraphBuilder().node("a", "T", xs=["x", "y"]).graph()
        schema = infer_schema(graph).schema
        ref = schema.type_f("T", "xs")
        assert ref.is_list and ref.base == "String"

    def test_relationship_cardinality(self):
        single = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "B")
            .edge("a", "r", "b")
            .graph()
        )
        assert not infer_schema(single).schema.type_f("A", "r").is_list
        multi = (
            GraphBuilder()
            .node("a", "A")
            .node("b1", "B")
            .node("b2", "B")
            .edge("a", "r", "b1")
            .edge("a", "r", "b2")
            .graph()
        )
        assert infer_schema(multi).schema.type_f("A", "r").is_list

    def test_union_for_mixed_targets(self):
        graph = (
            GraphBuilder()
            .node("p", "P")
            .node("q", "P")
            .node("x", "X")
            .node("y", "Y")
            .edge("p", "likes", "x")
            .edge("q", "likes", "y")
            .graph()
        )
        result = infer_schema(graph)
        schema = result.schema
        assert schema.type_f("P", "likes").base == "XOrY"
        assert schema.union("XOrY") == {"X", "Y"}
        assert validate(schema, graph).conforms

    def test_edge_properties_become_arguments(self):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "B")
            .edge("a", "r", "b", {"w": 0.5, "note": "x"})
            .graph()
        )
        schema = infer_schema(graph).schema
        assert set(schema.args("A", "r")) == {"w", "note"}
        assert schema.type_af("A", "r", "w").base == "Float"

    def test_key_candidates(self):
        graph = (
            GraphBuilder()
            .node("u1", "U", email="a@x", team="red")
            .node("u2", "U", email="b@x", team="red")
            .graph()
        )
        result = infer_schema(graph)
        assert result.key_candidates["U"] == ["email"]
        assert result.schema.object_types["U"].keys == (("email",),)

    def test_directive_mining(self):
        graph = (
            GraphBuilder()
            .node("a1", "A")
            .node("a2", "A")
            .node("b1", "B")
            .node("b2", "B")
            .edge("a1", "r", "b1")
            .edge("a2", "r", "b2")
            .graph()
        )
        schema = infer_schema(graph).schema
        # every A has an r edge, every B has exactly one incoming
        assert schema.has_field_directive("A", "r", "required")
        assert schema.has_field_directive("A", "r", "uniqueForTarget")

    def test_no_spurious_noloops_when_loops_exist(self):
        graph = GraphBuilder().node("a", "A").edge("a", "self", "a").graph()
        schema = infer_schema(graph).schema
        assert not schema.has_field_directive("A", "self", "noLoops")
        assert validate(schema, graph).conforms

    def test_noloops_when_possible_but_absent(self):
        graph = (
            GraphBuilder()
            .node("a", "A")
            .node("b", "A")
            .edge("a", "peer", "b")
            .graph()
        )
        schema = infer_schema(graph).schema
        assert schema.has_field_directive("A", "peer", "noLoops")
