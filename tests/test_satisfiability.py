"""Object-type satisfiability: Theorems 2 and 3, Example 6.1, §6.2."""

import itertools

import pytest

from repro.sat import CNF, random_ksat, solve
from repro.satisfiability import (
    BoundedModelFinder,
    SatisfiabilityChecker,
    assignment_from_graph,
    graph_from_assignment,
    reduce_cnf_to_schema,
)
from repro.schema import parse_schema
from repro.validation import validate
from repro.workloads.paper_schemas import CORPUS


class TestExample61:
    """The paper's satisfiability examples."""

    def test_diagram_a(self):
        checker = SatisfiabilityChecker(CORPUS["example_6_1_a"].load())
        assert not checker.is_satisfiable("OT1")
        assert checker.is_satisfiable("OT2")
        assert checker.is_satisfiable("OT3")

    def test_diagram_a_has_no_finite_ot1_witness(self):
        checker = SatisfiabilityChecker(CORPUS["example_6_1_a"].load())
        result = checker.check_type_finite("OT1", max_nodes=4)
        assert not result.satisfiable

    def test_diagram_b_finite_infinite_divergence(self):
        """The recorded reproduction finding: the ALCQI translation decides
        *unrestricted* satisfiability, but Property Graphs are finite.  The
        reconstruction of diagram (b) forces an infinite model for OT2."""
        checker = SatisfiabilityChecker(CORPUS["diagram_b"].load())
        verdict = checker.check_type("OT2")
        assert verdict.tableau_satisfiable  # an infinite model exists
        assert verdict.bounded is not None and not verdict.bounded.satisfiable
        assert verdict.finitely_satisfiable is None  # unknown at the bound

    def test_diagram_b_other_types(self):
        checker = SatisfiabilityChecker(CORPUS["diagram_b"].load())
        # OT1/OT3 are in the same infinite-chain trap as OT2
        assert checker.is_satisfiable("OT1")
        assert checker.is_satisfiable("OT3")

    def test_diagram_c_unsat(self):
        checker = SatisfiabilityChecker(CORPUS["diagram_c"].load())
        verdict = checker.check_type("OT2")
        assert not verdict.tableau_satisfiable
        assert verdict.finitely_satisfiable is False
        assert checker.is_satisfiable("OT1")
        assert checker.is_satisfiable("OT3")


class TestCorpusSatisfiability:
    @pytest.mark.parametrize(
        "name",
        ["user_session_edge_props", "library", "food_union", "food_interface", "vehicles"],
    )
    def test_paper_example_schemas_fully_satisfiable(self, name):
        checker = SatisfiabilityChecker(CORPUS[name].load())
        report = checker.check_schema(find_witnesses=True)
        assert report.sound, report.summary()
        for verdict in report.types.values():
            assert verdict.finitely_satisfiable is True
            witness = verdict.witness
            assert validate(checker.schema, witness).conforms

    def test_field_satisfiability(self):
        checker = SatisfiabilityChecker(CORPUS["library"].load())
        assert checker.check_field("Book", "author")
        assert checker.check_field("Author", "favoriteBook")
        with pytest.raises(ValueError):
            checker.check_field("Book", "title")  # attribute, not an edge

    def test_unpopulatable_field(self):
        schema = parse_schema(
            """
            interface Lonely { x: Int }
            type T { toLonely: [Lonely] }
            """
        )
        checker = SatisfiabilityChecker(schema)
        assert checker.is_satisfiable("T")
        assert not checker.check_field("T", "toLonely")
        report = checker.check_schema()
        assert report.unsatisfiable_fields == [("T", "toLonely")]
        assert not report.sound


class TestBoundedFinder:
    def test_minimal_witness_size(self):
        schema = CORPUS["user_session_edge_props"].load()
        finder = BoundedModelFinder(schema)
        result = finder.find_model("UserSession", max_nodes=3)
        assert result.satisfiable
        # a session needs a user: minimal witness has exactly 2 nodes
        assert result.witness.num_nodes == 2
        assert validate(schema, result.witness).conforms

    def test_witness_fills_required_properties(self):
        schema = CORPUS["user_session_edge_props"].load()
        result = BoundedModelFinder(schema).find_model("User", max_nodes=2)
        witness = result.witness
        user = next(iter(witness.nodes_with_label("User")))
        assert witness.has_property(user, "id")
        assert witness.has_property(user, "login")

    def test_witness_fills_mandatory_edge_properties(self):
        schema = CORPUS["user_session_edge_props"].load()
        result = BoundedModelFinder(schema).find_model("UserSession", max_nodes=3)
        edge = next(iter(result.witness.edges))
        assert result.witness.has_property(edge, "certainty")

    def test_unknown_type_unsatisfiable(self):
        finder = BoundedModelFinder(CORPUS["library"].load())
        assert not finder.find_model("Ghost", max_nodes=2).satisfiable

    def test_respects_unique_for_target(self):
        # Publisher requires nothing; Book needs author + publisher
        schema = CORPUS["library"].load()
        result = BoundedModelFinder(schema).find_model("Book", max_nodes=4)
        assert result.satisfiable
        assert validate(schema, result.witness).conforms


class TestReduction:
    def test_construction_shape(self):
        cnf = CNF.of([[1, -2], [2]])
        reduction = reduce_cnf_to_schema(cnf)
        schema = reduction.schema
        assert "OTphi" in schema.object_types
        assert "Clause_0" in schema.interface_types
        assert "Clause_1" in schema.interface_types
        # occurrence types implement their clause interfaces
        assert "Lit_0_0" in schema.implementation("Clause_0")
        # literal 1 (clause 0 pos 0) conflicts with literal -2? no;
        # literal -2 (clause 0 pos 1) conflicts with literal 2 (clause 1 pos 0)
        conflicts = [name for name in schema.interface_types if name.startswith("Conflict")]
        assert conflicts == ["Conflict_0_1__1_0"]

    def test_schema_is_consistent(self):
        from repro.schema import is_consistent

        cnf = random_ksat(3, 5, seed=0)
        assert is_consistent(reduce_cnf_to_schema(cnf).schema)

    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence_with_dpll(self, seed):
        cnf = random_ksat(3, 5 + seed, k=3, seed=seed)
        dpll = solve(cnf)
        reduction = reduce_cnf_to_schema(cnf)
        checker = SatisfiabilityChecker(reduction.schema, bounded_max_nodes=0)
        assert checker.is_satisfiable(reduction.anchor) == dpll.satisfiable

    def test_unsatisfiable_instance(self):
        cnf = CNF.of([[1], [-1]])
        reduction = reduce_cnf_to_schema(cnf)
        checker = SatisfiabilityChecker(reduction.schema, bounded_max_nodes=0)
        assert not checker.is_satisfiable(reduction.anchor)

    def test_witness_round_trip(self):
        cnf = random_ksat(4, 10, seed=3)
        dpll = solve(cnf)
        assert dpll.satisfiable
        reduction = reduce_cnf_to_schema(cnf)
        witness = graph_from_assignment(reduction, dpll.assignment)
        report = validate(reduction.schema, witness)
        assert report.conforms, report.summary()
        recovered = assignment_from_graph(reduction, witness)
        assert cnf.evaluate(recovered)

    def test_invalid_assignment_gives_invalid_graph(self):
        cnf = CNF.of([[1], [2]])
        reduction = reduce_cnf_to_schema(cnf)
        bad = graph_from_assignment(reduction, {1: True, 2: False})
        assert not validate(reduction.schema, bad).conforms

    def test_all_assignments_brute_force(self):
        cnf = CNF.of([[1, 2], [-1, -2], [1, -2]])
        reduction = reduce_cnf_to_schema(cnf)
        for bits in itertools.product([False, True], repeat=2):
            assignment = dict(zip([1, 2], bits))
            graph = graph_from_assignment(reduction, assignment)
            assert validate(reduction.schema, graph).conforms == cnf.evaluate(assignment)


class TestCheckerMisc:
    def test_unknown_object_type(self):
        checker = SatisfiabilityChecker(CORPUS["library"].load())
        result = checker.check_type_finite("NoSuchType")
        assert not result.satisfiable

    def test_report_summary_strings(self):
        good = SatisfiabilityChecker(CORPUS["library"].load()).check_schema()
        assert "sound" in good.summary()
        bad = SatisfiabilityChecker(CORPUS["diagram_c"].load()).check_schema()
        assert "OT2" in bad.summary()

    def test_empty_graph_never_witnesses(self):
        # the witness must contain a node of the queried type
        checker = SatisfiabilityChecker(CORPUS["library"].load())
        verdict = checker.check_type("Author")
        assert verdict.witness is not None
        assert verdict.witness.nodes_with_label("Author")
