"""The description-logic substrate: concepts, NNF, tableau, translation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    And,
    AtLeast,
    AtMost,
    Bottom,
    Exists,
    Forall,
    Name,
    Not,
    Or,
    Role,
    TBox,
    Tableau,
    TableauLimitError,
    Top,
    complement,
    conj,
    disj,
    nnf,
    schema_to_tbox,
)
from repro.workloads.paper_schemas import CORPUS

A, B, C = Name("A"), Name("B"), Name("C")
r, s = Role("r"), Role("s")


# --------------------------------------------------------------------------- #
# concept strategies for property-based NNF tests
# --------------------------------------------------------------------------- #

names = st.sampled_from([A, B, C])
roles = st.sampled_from([r, s, r.inv()])


def concepts(depth: int = 3):
    if depth == 0:
        return st.one_of(names, st.just(Top()), st.just(Bottom()))
    sub = concepts(depth - 1)
    return st.one_of(
        names,
        st.just(Top()),
        st.just(Bottom()),
        sub.map(Not),
        st.tuples(sub, sub).map(lambda pair: And(pair)),
        st.tuples(sub, sub).map(lambda pair: Or(pair)),
        st.tuples(roles, sub).map(lambda pair: Exists(*pair)),
        st.tuples(roles, sub).map(lambda pair: Forall(*pair)),
        # n >= 1: ¬≥0 R.C collapses to ⊥, which breaks *syntactic*
        # involution (it stays semantically sound)
        st.tuples(st.integers(1, 3), roles, sub).map(lambda t: AtLeast(*t)),
        st.tuples(st.integers(0, 3), roles, sub).map(lambda t: AtMost(*t)),
    )


class TestRoles:
    def test_inverse_involution(self):
        assert r.inv().inv() == r
        assert str(r.inv()) == "r⁻"


class TestNNF:
    def test_double_negation(self):
        assert nnf(Not(Not(A))) == A

    def test_de_morgan(self):
        assert nnf(Not(And((A, B)))) == Or((Not(A), Not(B)))
        assert nnf(Not(Or((A, B)))) == And((Not(A), Not(B)))

    def test_quantifier_duality(self):
        assert nnf(Not(Exists(r, A))) == Forall(r, Not(A))
        assert nnf(Not(Forall(r, A))) == Exists(r, Not(A))

    def test_number_restriction_duality(self):
        assert nnf(Not(AtLeast(2, r, A))) == AtMost(1, r, A)
        assert nnf(Not(AtMost(2, r, A))) == AtLeast(3, r, A)
        assert nnf(Not(AtLeast(0, r, A))) == Bottom()

    @given(concepts())
    @settings(max_examples=60, deadline=None)
    def test_nnf_idempotent(self, concept):
        once = nnf(concept)
        assert nnf(once) == once

    @given(concepts())
    @settings(max_examples=60, deadline=None)
    def test_complement_involution(self, concept):
        assert complement(complement(concept)) == nnf(concept)

    def test_helpers(self):
        assert conj([]) == Top()
        assert disj([]) == Bottom()
        assert conj([A]) == A
        assert conj([A, conj([B, C])]) == And((A, B, C))


class TestTableauCore:
    def test_tautologies_and_contradictions(self):
        tableau = Tableau()
        assert tableau.is_satisfiable(Top())
        assert not tableau.is_satisfiable(Bottom())
        assert tableau.is_satisfiable(A)
        assert not tableau.is_satisfiable(A & ~A)
        assert tableau.is_satisfiable(A | ~A)

    def test_existential_and_universal(self):
        tableau = Tableau()
        assert tableau.is_satisfiable(Exists(r, A) & Forall(r, B))
        assert not tableau.is_satisfiable(Exists(r, A) & Forall(r, ~A))
        assert tableau.is_satisfiable(Forall(r, Bottom()))  # no successors needed

    def test_number_restrictions(self):
        tableau = Tableau()
        assert not tableau.is_satisfiable(AtLeast(2, r, A) & AtMost(1, r, Top()))
        assert tableau.is_satisfiable(AtLeast(2, r, A) & AtMost(2, r, Top()))
        assert not tableau.is_satisfiable(AtLeast(1, r, A) & AtMost(0, r, Top()))
        assert tableau.is_satisfiable(AtLeast(2, r, A) & AtMost(1, r, B))

    def test_merge_propagates_labels(self):
        # two successors forced to merge must combine their labels
        tableau = Tableau()
        concept = conj(
            [Exists(r, A), Exists(r, B), AtMost(1, r, Top()), Forall(r, Not(A) | Not(B))]
        )
        assert not tableau.is_satisfiable(concept)

    def test_inverse_roles(self):
        tableau = Tableau()
        assert not tableau.is_satisfiable(Exists(r, Forall(r.inv(), ~A)) & A)
        assert tableau.is_satisfiable(Exists(r, Forall(r.inv(), A)) & A)
        # a fresh second parent can satisfy ∃r⁻.¬A, so this IS satisfiable
        assert tableau.is_satisfiable(
            A & Exists(r, Top()) & Forall(r, Exists(r.inv(), ~A))
        )
        # ... but ∀r⁻.¬A propagates back to the A-root: unsatisfiable
        assert not tableau.is_satisfiable(
            A & Exists(r, Top()) & Forall(r, Forall(r.inv(), ~A))
        )

    def test_choose_rule(self):
        # ≤1 r.B with two r-successors, one being forced non-B
        tableau = Tableau()
        concept = conj(
            [Exists(r, A & B), Exists(r, C), AtMost(1, r, B), Forall(r, Not(C) | B)]
        )
        # the C successor must be B (by ∀) and then merges with the A⊓B one
        assert tableau.is_satisfiable(concept)


class TestTableauTBox:
    def test_blocking_terminates_infinite_models(self):
        tbox = TBox()
        tbox.include(A, Exists(r, A))
        assert Tableau(tbox).is_satisfiable(A)

    def test_unsat_tbox(self):
        tbox = TBox()
        tbox.include(A, Exists(r, A))
        tbox.include(Top(), ~A | Forall(r, ~A))
        assert not Tableau(tbox).is_satisfiable(A)

    def test_definitions(self):
        tbox = TBox()
        tbox.define("U", A | B)
        tbox.declare_disjoint(["A", "B", "C"])
        tableau = Tableau(tbox)
        assert tableau.is_satisfiable(Name("U"))
        assert not tableau.is_satisfiable(Name("U") & ~A & ~B)
        assert tableau.is_satisfiable(A & Name("U"))

    def test_duplicate_definition_rejected(self):
        tbox = TBox()
        tbox.define("U", A)
        with pytest.raises(ValueError):
            tbox.define("U", B)

    def test_disjointness_native(self):
        tbox = TBox()
        tbox.declare_disjoint(["A", "B"])
        tableau = Tableau(tbox)
        assert not tableau.is_satisfiable(A & B)
        assert tableau.is_satisfiable(A)

    def test_member_implies_defined_name(self):
        tbox = TBox()
        tbox.define("U", A | B)
        tbox.include(Name("U"), C)
        tableau = Tableau(tbox)
        # A ⊑ U and U ⊑ C, so A ⊓ ¬C is unsatisfiable
        assert not tableau.is_satisfiable(A & ~C)

    def test_empty_definition_is_bottom(self):
        tbox = TBox()
        tbox.define("Empty", Bottom())
        assert not Tableau(tbox).is_satisfiable(Name("Empty"))

    def test_guarded_vs_internalised_equivalence(self):
        # the same GCI through a Name guard and through a complex sub must
        # decide identically
        for query in (A, A & B, Exists(r, A)):
            guarded = TBox()
            guarded.include(A, Exists(r, B) & AtMost(1, r, Top()))
            complex_lhs = TBox()
            complex_lhs.include(A & Top(), Exists(r, B) & AtMost(1, r, Top()))
            assert (
                Tableau(guarded).is_satisfiable(query)
                == Tableau(complex_lhs).is_satisfiable(query)
            )

    def test_node_limit(self):
        tbox = TBox()
        # force many successors: A needs 3 distinct r-successors each needing 3 ...
        tbox.include(A, AtLeast(3, r, A))
        with pytest.raises(TableauLimitError):
            Tableau(tbox, max_nodes=10).is_satisfiable(A)

    def test_stats_collected(self):
        tableau = Tableau()
        tableau.is_satisfiable(A | B)
        assert tableau.stats.nodes_created >= 1


class TestSchemaTranslation:
    def test_library_axiom_shapes(self):
        schema = CORPUS["library"].load()
        tbox = schema_to_tbox(schema)
        rendered = [str(axiom) for axiom in tbox.axioms]
        assert "Author ⊑ ∀favoriteBook.Book" in rendered
        assert "Author ⊑ ≤1 favoriteBook.⊤" in rendered
        assert "Book ⊑ ∃author.Author" in rendered
        assert "Book ⊑ ≤1 published⁻.Publisher" in rendered
        assert "Book ⊑ ∃published⁻.Publisher" in rendered
        assert tbox.disjoint_groups == [
            frozenset({"Author", "Book", "BookSeries", "Publisher"})
        ]

    def test_justification_axioms(self):
        schema = CORPUS["library"].load()
        tbox = schema_to_tbox(schema)
        rendered = {str(axiom) for axiom in tbox.axioms}
        # Authors never emit published edges, Books never emit contains, ...
        assert "Author ⊑ ≤0 published.⊤" in rendered
        assert "Book ⊑ ≤0 contains.⊤" in rendered

    def test_interface_and_union_definitions(self):
        union_tbox = schema_to_tbox(CORPUS["food_union"].load())
        assert str(union_tbox.definitions["Food"]) in (
            "(Pasta ⊔ Pizza)",
            "(Pizza ⊔ Pasta)",
        )
        interface_tbox = schema_to_tbox(CORPUS["food_interface"].load())
        assert "Food" in interface_tbox.definitions

    def test_scalar_fields_dropped(self):
        schema = CORPUS["user_session_keyed"].load()
        tbox = schema_to_tbox(schema)
        rendered = " ".join(str(axiom) for axiom in tbox.axioms)
        assert "login" not in rendered
        assert "startTime" not in rendered
        assert "user" in rendered  # the relationship survives

    def test_unimplemented_interface_is_bottom(self):
        from repro.schema import parse_schema

        schema = parse_schema("interface Lonely { x: Int }\ntype T { y: Int }")
        tbox = schema_to_tbox(schema)
        assert str(tbox.definitions["Lonely"]) == "⊥"
