"""JSON serialisation of Property Graphs."""

import io

from hypothesis import given
from hypothesis import strategies as st

from repro.pg import (
    PropertyGraph,
    dump_graph,
    dumps_graph,
    load_graph,
    loads_graph,
    random_graph,
)


def graphs_equal(left: PropertyGraph, right: PropertyGraph) -> bool:
    if set(left.nodes) != set(right.nodes) or set(left.edges) != set(right.edges):
        return False
    for node in left.nodes:
        if left.label(node) != right.label(node):
            return False
        if left.properties(node) != right.properties(node):
            return False
    for edge in left.edges:
        if left.endpoints(edge) != right.endpoints(edge):
            return False
        if left.label(edge) != right.label(edge):
            return False
        if left.properties(edge) != right.properties(edge):
            return False
    return True


class TestRoundTrip:
    def test_empty_graph(self):
        assert graphs_equal(loads_graph(dumps_graph(PropertyGraph())), PropertyGraph())

    def test_small_graph(self):
        graph = PropertyGraph()
        graph.add_node("a", "A", {"p": 1, "xs": (1, 2)})
        graph.add_node("b", "B")
        graph.add_edge("e", "a", "b", "r", {"w": 0.25})
        assert graphs_equal(loads_graph(dumps_graph(graph)), graph)

    def test_file_round_trip(self):
        graph = random_graph(10, 15, seed=3)
        buffer = io.StringIO()
        dump_graph(graph, buffer)
        buffer.seek(0)
        assert graphs_equal(load_graph(buffer), graph)

    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=60))
    def test_random_graphs_round_trip(self, num_nodes, num_edges):
        if num_nodes == 0:
            num_edges = 0
        graph = random_graph(num_nodes, num_edges, seed=num_nodes * 100 + num_edges)
        assert graphs_equal(loads_graph(dumps_graph(graph)), graph)

    def test_array_properties_round_trip_as_tuples(self):
        graph = PropertyGraph()
        graph.add_node("a", "A", {"xs": ("x", "y")})
        restored = loads_graph(dumps_graph(graph))
        assert restored.property_value("a", "xs") == ("x", "y")
