"""Schema evolution: diff classification and the compatibility guarantee."""

import pytest

from repro.evolution import diff_schemas
from repro.schema import parse_schema
from repro.validation import validate
from repro.workloads import library_graph, user_session_graph
from repro.workloads.paper_schemas import CORPUS

BASE = CORPUS["user_session_edge_props"].sdl


def classify(old_sdl, new_sdl):
    return diff_schemas(parse_schema(old_sdl), parse_schema(new_sdl))


class TestDiffClassification:
    def test_identical(self):
        diff = classify(BASE, BASE)
        assert not diff.changes
        assert diff.is_backward_compatible
        assert diff.summary() == "schemas are identical"

    def test_add_type_compatible(self):
        diff = classify("type A { x: Int }", "type A { x: Int }\ntype B { y: Int }")
        assert diff.is_backward_compatible
        assert any("added" in str(change) for change in diff.compatible)

    def test_remove_type_breaking(self):
        diff = classify("type A { x: Int }\ntype B { y: Int }", "type A { x: Int }")
        assert not diff.is_backward_compatible
        assert "SS1" in diff.breaking[0].description

    def test_add_optional_field_compatible(self):
        diff = classify("type A { x: Int }", "type A { x: Int \n y: String }")
        assert diff.is_backward_compatible

    def test_add_required_field_breaking(self):
        diff = classify("type A { x: Int }", "type A { x: Int \n y: String @required }")
        assert not diff.is_backward_compatible

    def test_remove_field_breaking(self):
        diff = classify("type A { x: Int \n y: Int }", "type A { x: Int }")
        assert not diff.is_backward_compatible

    def test_add_constraining_directive_breaking(self):
        for directive in ("@required", "@distinct", "@noLoops", "@uniqueForTarget"):
            diff = classify(
                "type A { r: [A] }", f"type A {{ r: [A] {directive} }}"
            )
            assert not diff.is_backward_compatible, directive

    def test_remove_constraining_directive_compatible(self):
        diff = classify("type A { r: [A] @distinct @noLoops }", "type A { r: [A] }")
        assert diff.is_backward_compatible
        assert len(diff.compatible) == 2

    def test_add_key_breaking_remove_compatible(self):
        keyed = 'type A @key(fields: ["x"]) { x: Int }'
        unkeyed = "type A { x: Int }"
        assert not classify(unkeyed, keyed).is_backward_compatible
        assert classify(keyed, unkeyed).is_backward_compatible

    def test_attribute_widening_compatible(self):
        assert classify("type A { x: Int }", "type A { x: Float }").is_backward_compatible
        assert classify("type A { x: Int! }", "type A { x: Int }").is_backward_compatible
        assert classify("type A { xs: [Int!] }", "type A { xs: [Int] }").is_backward_compatible

    def test_attribute_narrowing_breaking(self):
        assert not classify("type A { x: Float }", "type A { x: Int }").is_backward_compatible
        assert not classify("type A { x: Int }", "type A { x: Int! }").is_backward_compatible
        assert not classify("type A { x: Int }", "type A { xs: [Int] }".replace("xs", "x")).is_backward_compatible

    def test_relationship_target_widening_compatible(self):
        old = "type A { r: B }\ntype B { x: Int }\ntype C { x: Int }"
        new = "type A { r: U }\ntype B { x: Int }\ntype C { x: Int }\nunion U = B | C"
        assert classify(old, new).is_backward_compatible

    def test_relationship_target_narrowing_breaking(self):
        old = "type A { r: U }\ntype B { x: Int }\ntype C { x: Int }\nunion U = B | C"
        new = "type A { r: B }\ntype B { x: Int }\ntype C { x: Int }"
        assert not classify(old, new).is_backward_compatible

    def test_list_widening_compatible(self):
        old = "type A { r: B }\ntype B { x: Int }"
        new = "type A { r: [B] }\ntype B { x: Int }"
        assert classify(old, new).is_backward_compatible
        assert not classify(new, old).is_backward_compatible

    def test_union_member_changes(self):
        old = "type A { x: Int }\ntype B { x: Int }\nunion U = A | B\ntype T { u: U }"
        new = "type A { x: Int }\ntype B { x: Int }\nunion U = A\ntype T { u: U }"
        assert not classify(old, new).is_backward_compatible
        assert classify(new, old).is_backward_compatible

    def test_enum_value_changes(self):
        old = "enum E { A B }\ntype T { e: E }"
        new = "enum E { A }\ntype T { e: E }"
        assert not classify(old, new).is_backward_compatible
        assert classify(new, old).is_backward_compatible

    def test_kind_flip_breaking(self):
        old = "type A { x: Int }"
        new = "type A { x: B }\ntype B { y: Int }"
        diff = classify(old, new)
        assert not diff.is_backward_compatible

    def test_edge_argument_changes(self):
        old = "type A { r(w: Float): A }"
        assert classify(old, "type A { r: A }").breaking
        assert classify("type A { r: A }", old).is_backward_compatible
        assert not classify(old, "type A { r(w: Float!): A }").is_backward_compatible
        assert classify("type A { r(w: Float!): A }", old).is_backward_compatible

    def test_edge_argument_base_change_breaking(self):
        old = "type A { r(w: Float): A }"
        new = "type A { r(w: String): A }"
        diff = classify(old, new)
        assert not diff.is_backward_compatible
        assert diff.breaking[0].location == "A.r(w)"

    def test_edge_argument_list_change_breaking(self):
        old = "type A { r(w: [Float]): A }"
        new = "type A { r(w: Float): A }"
        assert not classify(old, new).is_backward_compatible
        assert not classify(new, old).is_backward_compatible

    def test_edge_argument_inner_nonnull(self):
        old = "type A { r(w: [Float!]): A }"
        new = "type A { r(w: [Float]): A }"
        # dropping inner non-null widens; adding it narrows
        assert classify(old, new).is_backward_compatible
        assert not classify(new, old).is_backward_compatible

    def test_interface_implementation_removed_breaking(self):
        old = (
            "interface I { x: Int }\n"
            "type A implements I { x: Int }\n"
            "type B implements I { x: Int }\n"
            "type T { r: I }"
        )
        new = (
            "interface I { x: Int }\n"
            "type A implements I { x: Int }\n"
            "type B { x: Int }\n"
            "type T { r: I }"
        )
        diff = classify(old, new)
        assert not diff.is_backward_compatible
        breaking = {change.location: change for change in diff.breaking}
        assert "interface I" in breaking
        assert "B" in breaking["interface I"].description
        # adding an implementation back is compatible
        assert classify(new, old).is_backward_compatible

    def test_interface_implementation_removed_with_type_breaking(self):
        old = (
            "interface I { x: Int }\n"
            "type A implements I { x: Int }\n"
            "type B implements I { x: Int }\n"
            "type T { r: I }"
        )
        new = (
            "interface I { x: Int }\n"
            "type A implements I { x: Int }\n"
            "type T { r: I }"
        )
        diff = classify(old, new)
        assert not diff.is_backward_compatible
        # the type removal itself is the breaking change; no spurious
        # interface-level report for a type that no longer exists
        assert any(change.location == "type B" for change in diff.breaking)
        assert not any(
            change.location == "interface I" for change in diff.breaking
        )

    def test_relationship_retarget_interface_to_member(self):
        shared = (
            "interface I { x: Int }\n"
            "type A implements I { x: Int }\n"
            "type B implements I { x: Int }\n"
        )
        wide = shared + "type T { r: I }"
        narrow = shared + "type T { r: A }"
        # interface → single implementation shrinks the target set
        assert not classify(wide, narrow).is_backward_compatible
        assert classify(narrow, wide).is_backward_compatible

    def test_diff_to_json_shape(self):
        diff = classify("type A { x: Int }", "type B { x: Int }")
        payload = diff.to_json()
        assert payload["backward_compatible"] is False
        assert payload["summary"] == diff.summary()
        impacts = {change["impact"] for change in payload["changes"]}
        assert impacts == {"breaking", "compatible"}
        for change in payload["changes"]:
            assert set(change) == {"impact", "location", "description"}


class TestCompatibilityGuarantee:
    """Changes classified compatible must preserve strong satisfaction on
    real conforming instances."""

    @pytest.mark.parametrize(
        "new_sdl",
        [
            # drop a key
            BASE.replace(' @key(fields: ["id"]) @key(fields: ["login"])', ""),
            # add an optional attribute
            BASE.replace("login: String! @required", "login: String! @required\n  bio: String"),
            # add a whole new type
            BASE + "\ntype AuditLog { entry: String }",
            # widen the user field to a list
            BASE.replace(
                "user(certainty: Float! comment: String): User! @required",
                "user(certainty: Float! comment: String): [User] @required",
            ),
        ],
    )
    def test_compatible_evolutions_preserve_conformance(self, new_sdl):
        old = parse_schema(BASE)
        new = parse_schema(new_sdl)
        diff = diff_schemas(old, new)
        assert diff.is_backward_compatible, diff.summary()
        for seed in range(3):
            graph = user_session_graph(6, 2, seed=seed)
            assert validate(old, graph).conforms
            assert validate(new, graph).conforms

    def test_breaking_evolution_really_breaks(self):
        old = parse_schema(CORPUS["library"].sdl)
        new = parse_schema(
            CORPUS["library"].sdl.replace(
                "favoriteBook: Book", "favoriteBook: Book @required"
            )
        )
        diff = diff_schemas(old, new)
        assert not diff.is_backward_compatible
        # find a conforming-old instance that the new schema rejects
        broken = False
        for seed in range(10):
            graph = library_graph(4, 5, 1, 1, seed=seed)
            assert validate(old, graph).conforms
            if not validate(new, graph).conforms:
                broken = True
                break
        assert broken
