"""Compiled validation plans and the LRU plan cache."""

import gc

import pytest

from repro.schema import parse_schema
from repro.validation import (
    IndexedValidator,
    ParallelValidator,
    compile_plan,
    plan_cache_clear,
    plan_cache_info,
    validate,
)
from repro.validation import plan as plan_module
from repro.workloads import load, user_session_graph
from repro.workloads.paper_schemas import CORPUS


@pytest.fixture(autouse=True)
def fresh_cache():
    plan_cache_clear()
    yield
    plan_cache_clear()


def _small_workload():
    schema = load("user_session_edge_props")
    graph = user_session_graph(4, sessions_per_user=2, seed=0)
    return schema, graph


class TestPlanCache:
    def test_repeated_validate_hits_the_cache(self):
        schema, graph = _small_workload()
        for _ in range(3):
            assert validate(schema, graph).conforms
        info = plan_cache_info()
        assert info["misses"] == 1, "schema analysed more than once"
        assert info["hits"] == 2
        assert info["size"] == 1

    def test_site_tables_computed_once_across_validations(self, monkeypatch):
        """The expensive schema analysis (the site tables) must run exactly
        once no matter how many times the same schema is validated."""
        schema, graph = _small_workload()
        calls = {"count": 0}
        original = plan_module.sites.key_sites

        def counting_key_sites(target_schema):
            calls["count"] += 1
            return original(target_schema)

        monkeypatch.setattr(plan_module.sites, "key_sites", counting_key_sites)
        for _ in range(4):
            validate(schema, graph)
        assert calls["count"] == 1

    def test_engines_share_one_plan(self):
        schema, _graph = _small_workload()
        plan = compile_plan(schema)
        assert IndexedValidator(schema, plan=plan).plan is plan
        assert ParallelValidator(schema, plan=plan).plan is plan
        # going through compile_plan again returns the same object
        assert compile_plan(schema) is plan

    def test_distinct_schemas_get_distinct_plans(self):
        first = load("user_session_edge_props")
        second = load("library")
        assert compile_plan(first) is not compile_plan(second)
        assert plan_cache_info()["size"] == 2

    def test_lru_eviction(self):
        keep = [
            parse_schema(CORPUS["library"].sdl)
            for _ in range(plan_module.PLAN_CACHE_MAXSIZE + 3)
        ]
        for schema in keep:
            compile_plan(schema)
        assert plan_cache_info()["size"] == plan_module.PLAN_CACHE_MAXSIZE
        # the most recent schema is still cached ...
        hits_before = plan_cache_info()["hits"]
        compile_plan(keep[-1])
        assert plan_cache_info()["hits"] == hits_before + 1
        # ... the oldest was evicted and recompiles
        misses_before = plan_cache_info()["misses"]
        compile_plan(keep[0])
        assert plan_cache_info()["misses"] == misses_before + 1

    def test_cache_pins_schemas_against_id_recycling(self):
        """Entries hold strong schema references, so two distinct schemas can
        never alias to one identity key even if ids would otherwise be
        recycled after collection."""
        plans = []
        for _ in range(5):
            schema = parse_schema(CORPUS["library"].sdl)
            plans.append(compile_plan(schema))
            del schema
            gc.collect()
        assert len({id(plan) for plan in plans}) == len(plans)
        assert plan_cache_info()["size"] == len(plans)

    def test_clear_resets_counters(self):
        schema, _graph = _small_workload()
        compile_plan(schema)
        compile_plan(schema)
        plan_cache_clear()
        assert plan_cache_info() == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "maxsize": plan_module.PLAN_CACHE_MAXSIZE,
            "evictions": 0,
        }


class TestPlanSemantics:
    def test_checker_w_matches_in_values_w(self):
        """The compiled per-field checkers decide exactly values_W."""
        schema = load("user_session_edge_props")
        samples = (
            "text", "", 0, 1, -7, 3.5, True, False, None,
            (), ("a", "b"), (1, 2), ("a", None),
        )
        for type_def in (schema.composite(name) for name in sorted(schema.object_types)):
            for field_def in type_def.fields:
                if not schema.is_scalar_type(field_def.type.base):
                    continue
                checker = schema.scalars.checker_w(field_def.type)
                for value in samples:
                    assert checker(value) == schema.scalars.in_values_w(
                        value, field_def.type
                    ), (type_def.name, field_def.name, value)

    def test_labels_below_is_shared_and_memoized(self):
        schema = load("food_interface")
        plan = compile_plan(schema)
        first = plan.labels_below("Food")
        assert plan.labels_below("Food") is first  # memoized
        assert plan.is_below("Pizza", "Food")
        assert not plan.is_below("Person", "Food")

    def test_incremental_validator_reuses_the_compiled_plan(self):
        from repro.validation import IncrementalValidator

        schema, graph = _small_workload()
        plan = compile_plan(schema)
        incremental = IncrementalValidator(schema, graph, plan=plan)
        assert incremental.plan is plan
        assert plan_cache_info()["misses"] == 1

    def test_node_rules_flag_unknown_labels(self):
        schema = load("library")
        plan = compile_plan(schema)
        assert plan.node_rules("Book").known
        assert not plan.node_rules("Ghost").known
