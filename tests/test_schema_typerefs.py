"""Type references and the paper's admissible wrappings (§4.1)."""

import pytest

from repro.errors import SchemaError
from repro.schema import TypeRef, all_wrappings
from repro.sdl.parser import parse_type


class TestConstruction:
    def test_named(self):
        ref = TypeRef.named("T")
        assert not ref.is_wrapped
        assert ref.basetype == "T"

    def test_non_null(self):
        ref = TypeRef.non_null_of("T")
        assert ref.non_null and not ref.is_list

    def test_list_variants(self):
        assert str(TypeRef.list_of("T")) == "[T]"
        assert str(TypeRef.list_of("T", inner_non_null=True)) == "[T!]"
        assert str(TypeRef.list_of("T", non_null=True)) == "[T]!"
        assert str(TypeRef.list_of("T", inner_non_null=True, non_null=True)) == "[T!]!"

    def test_inner_non_null_requires_list(self):
        with pytest.raises(SchemaError):
            TypeRef("T", inner_non_null=True)


class TestParsing:
    @pytest.mark.parametrize("text", ["T", "T!", "[T]", "[T!]", "[T]!", "[T!]!"])
    def test_admissible_shapes_parse(self, text):
        assert str(TypeRef.parse(text)) == text

    @pytest.mark.parametrize("text", ["[[T]]", "[[T]!]", "[[T!]!]!"])
    def test_nested_lists_rejected(self, text):
        with pytest.raises(SchemaError):
            TypeRef.parse(text)

    def test_from_ast_matches_parse(self):
        assert TypeRef.from_ast(parse_type("[ID!]!")) == TypeRef.parse("[ID!]!")


class TestAstRoundTrip:
    @pytest.mark.parametrize("text", ["T", "T!", "[T]", "[T!]", "[T]!", "[T!]!"])
    def test_to_ast_round_trips(self, text):
        ref = TypeRef.parse(text)
        assert TypeRef.from_ast(ref.to_ast()) == ref


class TestHelpers:
    def test_unwrap_non_null(self):
        assert TypeRef.parse("[T!]!").unwrap_non_null() == TypeRef.parse("[T!]")
        assert TypeRef.parse("T").unwrap_non_null() == TypeRef.parse("T")

    def test_all_wrappings_has_six_shapes(self):
        shapes = all_wrappings("T")
        assert len(shapes) == 6
        assert len(set(shapes)) == 6
        assert {str(shape) for shape in shapes} == {
            "T",
            "T!",
            "[T]",
            "[T!]",
            "[T]!",
            "[T!]!",
        }

    def test_basetype_is_stable_under_wrapping(self):
        assert all(shape.basetype == "T" for shape in all_wrappings("T"))
