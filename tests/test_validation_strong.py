"""Strong satisfaction: rules SS1-SS4 (Definition 5.3) and mode semantics."""

import pytest

from repro.pg import GraphBuilder
from repro.schema import parse_schema
from repro.validation import (
    ALL_RULES,
    validate,
    satisfies_directives,
    strongly_satisfies,
    weakly_satisfies,
)


@pytest.fixture(params=["indexed", "naive"])
def engine(request):
    return request.param


SCHEMA = parse_schema(
    """
    interface Named { name: String }
    type Person implements Named { name: String \n knows(since: Int): [Person] }
    type City { name: String }
    union Place = City
    """
)


def fired(graph, engine, mode="strong"):
    return {
        violation.rule
        for violation in validate(SCHEMA, graph, mode=mode, engine=engine).violations
    }


class TestSS1:
    def test_object_label_ok(self, engine):
        graph = GraphBuilder().node("p", "Person").graph()
        assert fired(graph, engine) == set()

    def test_unknown_label(self, engine):
        graph = GraphBuilder().node("x", "Ghost").graph()
        assert fired(graph, engine) == {"SS1"}

    def test_interface_label_not_justified(self, engine):
        # interfaces are not object types; nodes cannot carry them
        graph = GraphBuilder().node("x", "Named").graph()
        assert fired(graph, engine) == {"SS1"}

    def test_union_label_not_justified(self, engine):
        graph = GraphBuilder().node("x", "Place").graph()
        assert fired(graph, engine) == {"SS1"}

    def test_scalar_label_not_justified(self, engine):
        graph = GraphBuilder().node("x", "String").graph()
        assert fired(graph, engine) == {"SS1"}


class TestSS2:
    def test_declared_property_ok(self, engine):
        graph = GraphBuilder().node("p", "Person", name="Ann").graph()
        assert fired(graph, engine) == set()

    def test_undeclared_property(self, engine):
        graph = GraphBuilder().node("p", "Person", age=30).graph()
        assert fired(graph, engine) == {"SS2"}

    def test_property_matching_relationship_field(self, engine):
        # a *property* named like a relationship field is not justified
        graph = GraphBuilder().node("p", "Person", knows="bob").graph()
        assert fired(graph, engine) == {"SS2"}


class TestSS3:
    def test_declared_edge_property_ok(self, engine):
        graph = (
            GraphBuilder()
            .node("p", "Person")
            .node("q", "Person")
            .edge("p", "knows", "q", {"since": 2019})
            .graph()
        )
        assert fired(graph, engine) == set()

    def test_undeclared_edge_property(self, engine):
        graph = (
            GraphBuilder()
            .node("p", "Person")
            .node("q", "Person")
            .edge("p", "knows", "q", {"how": "school"})
            .graph()
        )
        assert fired(graph, engine) == {"SS3"}


class TestSS4:
    def test_declared_edge_ok(self, engine):
        graph = (
            GraphBuilder()
            .node("p", "Person")
            .node("q", "Person")
            .edge("p", "knows", "q")
            .graph()
        )
        assert fired(graph, engine) == set()

    def test_undeclared_edge_label(self, engine):
        graph = (
            GraphBuilder()
            .node("p", "Person")
            .node("q", "Person")
            .edge("p", "likes", "q")
            .graph()
        )
        assert fired(graph, engine) == {"SS4"}

    def test_edge_labelled_like_attribute(self, engine):
        graph = (
            GraphBuilder()
            .node("p", "Person")
            .node("q", "Person")
            .edge("p", "name", "q")
            .graph()
        )
        # SS4 rejects the edge; WS3 also fires because (Person, name) is in
        # dom(type_F) and the target label is no subtype of String
        assert fired(graph, engine) == {"SS4", "WS3"}

    def test_edge_declared_on_other_type_only(self, engine):
        graph = (
            GraphBuilder()
            .node("c", "City")
            .node("p", "Person")
            .edge("c", "knows", "p")
            .graph()
        )
        assert fired(graph, engine) == {"SS4"}


class TestModes:
    def test_mode_rule_partition(self, engine):
        graph = (
            GraphBuilder()
            .node("x", "Ghost")  # SS1
            .node("p", "Person", name=3)  # WS1
            .graph()
        )
        assert fired(graph, engine, mode="weak") == {"WS1"}
        assert fired(graph, engine, mode="directives") == set()
        assert fired(graph, engine, mode="strong") == {"WS1", "SS1"}

    def test_convenience_predicates(self):
        good = GraphBuilder().node("p", "Person", name="Ann").graph()
        assert weakly_satisfies(SCHEMA, good)
        assert satisfies_directives(SCHEMA, good)
        assert strongly_satisfies(SCHEMA, good)

        bad = GraphBuilder().node("x", "Ghost").graph()
        assert weakly_satisfies(SCHEMA, bad)  # weak is silent on labels
        assert not strongly_satisfies(SCHEMA, bad)

    def test_unknown_mode_rejected(self):
        graph = GraphBuilder().node("p", "Person").graph()
        with pytest.raises(ValueError):
            validate(SCHEMA, graph, mode="super")

    def test_unknown_engine_rejected(self):
        graph = GraphBuilder().node("p", "Person").graph()
        with pytest.raises(ValueError):
            validate(SCHEMA, graph, engine="quantum")

    def test_report_metadata(self):
        graph = GraphBuilder().node("p", "Person").graph()
        report = validate(SCHEMA, graph)
        assert report.mode == "strong"
        assert report.rules_checked == ALL_RULES
        assert report.conforms
        assert "conforms" in report.summary()

    def test_report_grouping(self):
        graph = GraphBuilder().node("x", "Ghost").node("y", "Ghost").graph()
        report = validate(SCHEMA, graph)
        assert len(report.by_rule()["SS1"]) == 2
        assert "SS1×2" in report.summary()
