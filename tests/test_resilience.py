"""The resilient execution layer: budgets, typed UNKNOWNs, fault plans.

Chaos scenarios that kill real worker processes live in test_chaos.py;
this module covers the building blocks: Budget semantics, the error
taxonomy, fault-spec parsing and firing, and the budgeted behaviour of
every decision procedure (tableau, bounded search, DPLL, validators).
"""

import pickle

import pytest

from repro.dl.tableau import TableauLimitError
from repro.errors import (
    BudgetExhaustedError,
    BudgetReason,
    FaultConfigError,
    GraphLoadError,
    ReproError,
    WorkerFailureError,
    exit_code_for,
    render_error,
)
from repro.resilience import Budget, faults
from repro.sat import CNF, pigeonhole, solve
from repro.satisfiability import SatisfiabilityChecker
from repro.schema import parse_schema
from repro.validation import (
    IndexedValidator,
    NaiveValidator,
    ParallelValidator,
    validate,
)
from repro.workloads import load, user_session_graph

CYCLIC_SDL = """
type A { b: B @required }
type B { a: A @required }
"""


@pytest.fixture(scope="module")
def cyclic_schema():
    return parse_schema(CYCLIC_SDL)


@pytest.fixture(scope="module")
def session_schema():
    return load("user_session_edge_props")


@pytest.fixture(scope="module")
def session_graph():
    return user_session_graph(40, sessions_per_user=2, seed=7)


# --------------------------------------------------------------------------- #
# Budget semantics
# --------------------------------------------------------------------------- #


class TestBudget:
    def test_unlimited_by_default(self):
        budget = Budget()
        assert budget.unlimited
        budget.check_deadline()
        budget.charge_nodes(10**9)
        budget.charge_expansions(10**9)
        budget.charge_memory(10**12)

    def test_deadline_trips(self):
        budget = Budget(deadline=0.0)
        with pytest.raises(BudgetExhaustedError) as caught:
            budget.check_deadline(site="here")
        assert caught.value.reason.dimension == "deadline"
        assert caught.value.reason.site == "here"

    def test_node_budget_trips_past_limit_not_at_it(self):
        budget = Budget(max_nodes=2)
        budget.charge_nodes(2)
        with pytest.raises(BudgetExhaustedError) as caught:
            budget.charge_nodes(1, site="s")
        assert caught.value.reason.dimension == "nodes"
        assert caught.value.reason.limit == 2
        assert caught.value.reason.used == 3

    def test_expansion_and_memory_budgets(self):
        budget = Budget(max_expansions=1, max_memory=100)
        budget.charge_expansions(1)
        with pytest.raises(BudgetExhaustedError):
            budget.charge_expansions(1)
        budget = Budget(max_memory=100)
        with pytest.raises(BudgetExhaustedError) as caught:
            budget.charge_memory(101)
        assert caught.value.reason.dimension == "memory"

    def test_remaining_seconds_clamped_to_zero(self):
        assert Budget().remaining_seconds() is None
        assert Budget(deadline=0.0).remaining_seconds() == 0.0
        assert Budget(deadline=3600.0).remaining_seconds() > 0

    def test_renew_resets_consumption_keeps_limits(self):
        budget = Budget(max_nodes=5, max_expansions=7)
        budget.charge_nodes(5)
        fresh = budget.renew()
        assert fresh.nodes == 0
        assert fresh.max_nodes == 5 and fresh.max_expansions == 7
        fresh.charge_nodes(5)  # full allowance again

    def test_budget_pickles(self):
        budget = Budget(deadline=9.0, max_nodes=3)
        budget.charge_nodes(2)
        clone = pickle.loads(pickle.dumps(budget))
        assert clone.max_nodes == 3 and clone.nodes == 2
        with pytest.raises(BudgetExhaustedError):
            clone.charge_nodes(2)

    def test_repr_names_the_set_limits(self):
        assert "unlimited" in repr(Budget())
        assert "max_nodes=4" in repr(Budget(max_nodes=4))


# --------------------------------------------------------------------------- #
# error taxonomy
# --------------------------------------------------------------------------- #


class TestErrorTaxonomy:
    def test_codes_and_exit_codes(self):
        reason = BudgetReason("deadline", 1.0, 2.0, "x")
        assert BudgetExhaustedError(reason).code == "E_BUDGET"
        assert exit_code_for(BudgetExhaustedError(reason)) == 3
        assert WorkerFailureError("w", shard=1).code == "E_WORKER"
        assert GraphLoadError("g").code == "E_LOAD"
        assert exit_code_for(OSError("nope")) == 2

    def test_render_error_is_uniform(self):
        assert render_error(GraphLoadError("bad", source="g.json")).startswith(
            "error[E_LOAD]: bad in g.json"
        )
        assert render_error(OSError("missing")).startswith("error[E_IO]:")

    def test_budget_error_pickles_with_structured_reason(self):
        reason = BudgetReason("expansions", 100, 101, "sat.dpll")
        clone = pickle.loads(pickle.dumps(BudgetExhaustedError(reason)))
        assert clone.reason == reason
        assert clone.reason.site == "sat.dpll"

    def test_tableau_limit_error_is_a_budget_error(self):
        assert issubclass(TableauLimitError, BudgetExhaustedError)

    def test_graph_load_error_formats_position(self):
        error = GraphLoadError("boom", source="g.json", line=2, column=7, offset=31)
        assert "g.json" in str(error) and "line 2" in str(error)
        assert error.offset == 31

    def test_injected_crash_is_not_a_repro_error(self):
        # recovery must survive *arbitrary* worker death, so the injected
        # crash must not be catchable via the library's own base class
        assert not issubclass(faults.InjectedCrashError, ReproError)


# --------------------------------------------------------------------------- #
# fault plans
# --------------------------------------------------------------------------- #


class TestFaultPlans:
    def teardown_method(self):
        faults.uninstall()

    def test_parse_spec_round_trip(self):
        plan = faults.parse_spec(
            "crash@parallel.worker:shard=1,attempt=0,mode=exit;"
            "delay@dl.tableau:seconds=0.5,times=2"
        )
        crash, delay = plan.rules
        assert crash.kind == "crash" and crash.site == "parallel.worker"
        assert crash.match == {"shard": "1", "attempt": "0"}
        assert crash.mode == "exit"
        assert delay.seconds == 0.5 and delay.times == 2

    @pytest.mark.parametrize(
        "spec",
        [
            "boom@site",                      # unknown kind
            "crash",                          # no site
            "crash@",                         # empty site
            "crash@site:novalue",             # parameter without '='
            "crash@site:mode=explode",        # bad crash mode
            "delay@site:seconds=fast",        # non-numeric seconds
            "spike@site:bytes=many",          # non-numeric bytes
        ],
    )
    def test_bad_specs_raise_typed_config_errors(self, spec):
        with pytest.raises(FaultConfigError):
            faults.parse_spec(spec)

    def test_install_uninstall(self):
        ambient = faults.active_spec()  # a PGSCHEMA_FAULTS plan may be active
        plan = faults.install("crash@x")
        assert faults.enabled()
        assert faults.active_spec() == "crash@x"
        assert faults.active_plan() is plan
        faults.uninstall()
        assert faults.active_spec() == ambient  # env plan restored, not dropped
        faults.install(None)
        assert not faults.enabled()  # explicit None disables even the env plan
        faults.uninstall()

    def test_crash_raises_injected_error(self):
        faults.install("crash@x")
        with pytest.raises(faults.InjectedCrashError):
            faults.fault_point("x")

    def test_exit_mode_degrades_to_raise_outside_workers(self):
        # the main process must never be hard-killed by a plan
        faults.install("crash@x:mode=exit")
        with pytest.raises(faults.InjectedCrashError):
            faults.fault_point("x")

    def test_context_matchers_gate_firing(self):
        plan = faults.install("crash@x:shard=1")
        faults.fault_point("x", shard=0)
        faults.fault_point("x")  # missing context key: no match
        assert plan.fired_count() == 0
        with pytest.raises(faults.InjectedCrashError):
            faults.fault_point("x", shard=1)
        assert plan.fired_count("x") == 1

    def test_times_caps_firing(self):
        plan = faults.install("delay@x:seconds=0,times=2")
        for _ in range(5):
            faults.fault_point("x")
        assert plan.fired_count() == 2

    def test_spike_allocates_transiently(self):
        plan = faults.install("spike@x:bytes=1048576")
        faults.fault_point("x")
        assert plan.fired_count() == 1

    def test_disabled_fault_point_is_a_noop(self):
        faults.uninstall()
        if faults.enabled():
            pytest.skip("PGSCHEMA_FAULTS active in this environment")
        faults.fault_point("anywhere", shard=3)  # must not raise


# --------------------------------------------------------------------------- #
# budgeted decision procedures
# --------------------------------------------------------------------------- #


class TestBudgetedTableau:
    def test_expansion_budget_yields_typed_unknown(self, cyclic_schema):
        checker = SatisfiabilityChecker(
            cyclic_schema, lint_precheck=False, budget=Budget(max_expansions=2)
        )
        result = checker.check_type("A", find_witness=False)
        assert result.verdict == "unknown"
        assert result.tableau_satisfiable is None
        assert result.decided_by == "budget"
        assert result.reason is not None and result.reason.dimension == "expansions"

    def test_node_budget_yields_typed_unknown(self, cyclic_schema):
        checker = SatisfiabilityChecker(
            cyclic_schema, lint_precheck=False, budget=Budget(max_nodes=1)
        )
        assert checker.check_type("A", find_witness=False).verdict == "unknown"

    def test_on_budget_error_raises(self, cyclic_schema):
        checker = SatisfiabilityChecker(
            cyclic_schema,
            lint_precheck=False,
            budget=Budget(max_expansions=2),
            on_budget="error",
        )
        with pytest.raises(BudgetExhaustedError):
            checker.check_type("A", find_witness=False)

    def test_boolean_entry_point_always_raises(self, cyclic_schema):
        # a bool cannot express UNKNOWN, so is_satisfiable never guesses
        checker = SatisfiabilityChecker(
            cyclic_schema, lint_precheck=False, budget=Budget(max_expansions=2)
        )
        with pytest.raises(BudgetExhaustedError):
            checker.is_satisfiable("A")

    def test_budget_template_renewed_per_check(self, cyclic_schema):
        checker = SatisfiabilityChecker(
            cyclic_schema, lint_precheck=False, budget=Budget(max_expansions=10_000)
        )
        # a shared (non-renewed) budget would exhaust across the sweep
        for _ in range(5):
            assert checker.check_type("A", find_witness=False).verdict == "sat"

    def test_unknown_is_never_wrong(self, session_schema):
        """Shrinking budgets may only degrade answers to UNKNOWN."""
        truth = {
            name: SatisfiabilityChecker(session_schema, lint_precheck=False)
            .check_type(name, find_witness=False)
            .verdict
            for name in sorted(session_schema.object_types)
        }
        for limit in (1, 2, 4, 8, 16, 64, 256):
            checker = SatisfiabilityChecker(
                session_schema,
                lint_precheck=False,
                budget=Budget(max_expansions=limit),
            )
            for name, expected in truth.items():
                verdict = checker.check_type(name, find_witness=False).verdict
                assert verdict in ("unknown", expected)

    def test_check_schema_reports_undecided_types(self, cyclic_schema):
        checker = SatisfiabilityChecker(
            cyclic_schema, lint_precheck=False, budget=Budget(max_expansions=2)
        )
        report = checker.check_schema()
        assert report.unknown_types == ["A", "B"]
        assert not report.sound  # nothing proven => not sound
        assert "undecided" in report.summary()

    def test_invalid_on_budget_rejected(self, cyclic_schema):
        with pytest.raises(ValueError):
            SatisfiabilityChecker(cyclic_schema, on_budget="guess")


class TestBudgetedBoundedSearch:
    def test_exhaustion_is_reported_not_raised(self, cyclic_schema):
        checker = SatisfiabilityChecker(cyclic_schema, lint_precheck=False)
        result = checker.check_type_finite(
            "A", max_nodes=3, budget=Budget(max_expansions=1)
        )
        assert not result.satisfiable
        assert result.exhausted
        assert result.reason.dimension == "expansions"

    def test_unbudgeted_search_completes(self, cyclic_schema):
        checker = SatisfiabilityChecker(cyclic_schema, lint_precheck=False)
        result = checker.check_type_finite("A", max_nodes=3)
        assert not result.exhausted


class TestBudgetedSolver:
    def test_decision_budget_trips(self):
        with pytest.raises(BudgetExhaustedError) as caught:
            solve(pigeonhole(4), budget=Budget(max_expansions=2))
        assert caught.value.reason.site == "sat.dpll"

    def test_easy_instances_fit_small_budgets(self):
        # unit propagation alone decides this: no decisions charged
        cnf = CNF.of([[1], [-1, 2]])
        assert solve(cnf, budget=Budget(max_expansions=1)).satisfiable


# --------------------------------------------------------------------------- #
# budgeted validation
# --------------------------------------------------------------------------- #


class TestBudgetedValidation:
    def test_indexed_partial_report(self, session_schema, session_graph):
        validator = IndexedValidator(session_schema, budget=Budget(max_nodes=1))
        report = validator.validate(session_graph)
        assert not report.complete
        assert not report.conforms
        assert report.verdict == "unknown"
        assert report.interruption.dimension == "nodes"
        assert "INCOMPLETE" in report.summary()

    def test_naive_partial_report(self, session_schema, session_graph):
        report = NaiveValidator(
            session_schema, budget=Budget(deadline=0.0)
        ).validate(session_graph)
        assert report.verdict == "unknown"
        assert report.interruption.dimension == "deadline"

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_parallel_partial_report(self, session_schema, session_graph, executor):
        validator = ParallelValidator(
            session_schema, jobs=2, executor=executor, budget=Budget(max_nodes=1)
        )
        report = validator.validate(session_graph)
        assert report.verdict == "unknown"
        assert report.interruption.dimension == "nodes"

    def test_on_budget_error_raises(self, session_schema, session_graph):
        validator = IndexedValidator(
            session_schema, budget=Budget(max_nodes=1), on_budget="error"
        )
        with pytest.raises(BudgetExhaustedError):
            validator.validate(session_graph)

    def test_facade_threads_budget(self, session_schema, session_graph):
        for engine in ("indexed", "naive", "parallel"):
            report = validate(
                session_schema,
                session_graph,
                engine=engine,
                budget=Budget(max_nodes=1),
            )
            assert report.verdict == "unknown", engine

    def test_unbudgeted_runs_are_complete(self, session_schema, session_graph):
        report = validate(session_schema, session_graph)
        assert report.complete and report.conforms
        assert report.verdict == "conforms"

    def test_generous_budget_changes_nothing(self, session_schema, session_graph):
        generous = Budget(deadline=3600.0, max_nodes=10**9)
        bounded = validate(session_schema, session_graph, budget=generous)
        unbounded = validate(session_schema, session_graph)
        assert bounded.complete
        assert bounded.keys() == unbounded.keys()
        assert bounded.summary() == unbounded.summary()

    def test_violations_found_before_exhaustion_are_kept(self, session_schema):
        """A partial report still carries what it proved: violations are
        facts, only conformance claims are withheld."""
        graph = user_session_graph(8, sessions_per_user=1, seed=1)
        # corrupt one node so the node pass finds a violation immediately
        node = next(iter(graph.nodes))
        graph.set_property(node, "no_such_field", 1)
        report = IndexedValidator(session_schema).validate(graph)
        assert report.violations  # sanity: the corruption is visible
        # deadline=0 trips on the first between-rules checkpoint, after
        # the up-front element charge -- the report stays typed and honest
        partial = IndexedValidator(
            session_schema, budget=Budget(deadline=0.0)
        ).validate(graph)
        assert not partial.complete
        assert partial.verdict in ("unknown", "violations")
