"""The columnar graph core: pools, columns, layout, and backend parity."""

import pickle

import pytest

from repro.errors import GraphError
from repro.pg import (
    ColumnarBuilder,
    ColumnarGraph,
    GraphBuilder,
    PropertyGraph,
    StringPool,
    freeze,
    profile_graph,
    random_graph,
)
from repro.pg.columnar import PropertyColumn
from repro.workloads import library_graph, user_session_graph


def sample_graph():
    builder = GraphBuilder()
    builder.node("u1", "User", login="alice", age=31, tags=("a", "b"))
    builder.node("u2", "User", login="bob")
    builder.node("p1", "Post", title="hi", score=1.5, draft=False)
    builder.edge("u1", "wrote", "p1", {"at": "t1"})
    builder.edge("u2", "liked", "p1")
    builder.edge("u1", "follows", "u2")
    return builder.graph()


class TestStringPool:
    def test_interning_is_dense_and_stable(self):
        pool = StringPool()
        assert pool.intern("a") == 0
        assert pool.intern("b") == 1
        assert pool.intern("a") == 0
        assert pool.id_of("b") == 1
        assert pool.id_of("zzz") == -1
        assert pool[1] == "b"
        assert len(pool) == 2
        assert "a" in pool and "zzz" not in pool


class TestReadParity:
    """Every read accessor must agree with the dict backend, element by
    element -- the contract that lets all four engines run unchanged."""

    @pytest.mark.parametrize(
        "make",
        [
            sample_graph,
            lambda: library_graph(4, 6, num_series=1, num_publishers=2, seed=1),
            lambda: user_session_graph(8, sessions_per_user=2, seed=2),
            lambda: random_graph(
                20,
                35,
                node_labels=("A", "B", "C"),
                edge_labels=("x", "y"),
                prop_names=("p", "q"),
                prop_probability=0.5,
                seed=5,
            ),
            PropertyGraph,
        ],
    )
    def test_accessors_agree(self, make):
        graph = make()
        frozen = freeze(graph)
        assert isinstance(frozen, ColumnarGraph)
        assert len(frozen) == len(graph)
        assert frozen.num_nodes == graph.num_nodes
        assert frozen.num_edges == graph.num_edges
        assert list(frozen.nodes) == list(graph.nodes)
        assert list(frozen.edges) == list(graph.edges)
        assert list(frozen.node_items()) == list(graph.node_items())
        assert list(frozen.edge_records()) == list(graph.edge_records())
        assert sorted(frozen.property_items()) == sorted(graph.property_items())
        for node in graph.nodes:
            assert frozen.label(node) == graph.label(node)
            assert dict(frozen.properties(node)) == dict(graph.properties(node))
            assert dict(frozen.property_map(node)) == dict(graph.property_map(node))
            assert frozen.is_node(node) and not frozen.is_edge(node)
            assert node in frozen
            for label in ("wrote", "liked", "follows", "user", "author", "x", "y"):
                assert frozen.out_degree(node, label) == graph.out_degree(node, label)
                assert sorted(frozen.out_edges(node, label)) == sorted(
                    graph.out_edges(node, label)
                )
                assert sorted(frozen.iter_in_edges(node, label)) == sorted(
                    graph.iter_in_edges(node, label)
                )
            assert sorted(frozen.out_edges(node)) == sorted(graph.out_edges(node))
            assert sorted(frozen.in_edges(node)) == sorted(graph.in_edges(node))
        for edge in graph.edges:
            assert frozen.label(edge) == graph.label(edge)
            assert frozen.endpoints(edge) == graph.endpoints(edge)
            assert dict(frozen.property_map(edge)) == dict(graph.property_map(edge))
            assert frozen.is_edge(edge) and not frozen.is_node(edge)
        for label in ("User", "Post", "Author", "Ghost"):
            assert frozen.nodes_with_label(label) == graph.nodes_with_label(label)
        assert "nope" not in frozen

    def test_error_messages_match_dict_backend(self):
        graph = sample_graph()
        frozen = freeze(graph)
        for method, args in [
            ("label", ("nope",)),
            ("endpoints", ("nope",)),
            ("properties", ("nope",)),
            ("endpoints", ("u1",)),
        ]:
            with pytest.raises(GraphError) as dict_err:
                getattr(graph, method)(*args)
            with pytest.raises(GraphError) as col_err:
                getattr(frozen, method)(*args)
            assert str(col_err.value) == str(dict_err.value)


class TestImmutability:
    def test_mutators_raise(self):
        frozen = freeze(sample_graph())
        for method in (
            "add_node",
            "add_edge",
            "set_property",
            "remove_property",
            "remove_edge",
            "remove_node",
        ):
            with pytest.raises(GraphError, match="graph is frozen"):
                getattr(frozen, method)()

    def test_copy_returns_self_and_thaw_matches(self):
        graph = sample_graph()
        frozen = freeze(graph)
        assert frozen.copy() is frozen
        thawed = frozen.thaw()
        assert isinstance(thawed, PropertyGraph)
        assert list(thawed.node_items()) == list(graph.node_items())
        assert list(thawed.edge_records()) == list(graph.edge_records())
        assert sorted(thawed.property_items()) == sorted(graph.property_items())
        thawed.add_node("new", "User")  # mutable again
        assert "new" not in frozen

    def test_freeze_of_frozen_is_identity(self):
        frozen = freeze(sample_graph())
        assert freeze(frozen) is frozen

    def test_model_freeze_method(self):
        graph = sample_graph()
        assert list(graph.freeze().node_items()) == list(graph.node_items())


class TestBuilder:
    def test_builder_matches_freeze(self):
        graph = sample_graph()
        builder = ColumnarBuilder()
        for node, label in graph.node_items():
            builder.add_node(node, label, graph.property_map(node))
        for edge, source, target, label, _sl, _tl in graph.edge_records():
            builder.add_edge(edge, source, target, label, graph.property_map(edge))
        assert len(builder) == len(graph)
        built = builder.build()
        frozen = freeze(graph)
        assert list(built.node_items()) == list(frozen.node_items())
        assert list(built.edge_records()) == list(frozen.edge_records())
        assert sorted(built.property_items()) == sorted(frozen.property_items())

    def test_builder_error_messages_match_property_graph(self):
        builder = ColumnarBuilder()
        graph = PropertyGraph()
        cases = [
            ("add_node", ("x", 3)),
            ("add_edge", ("e", "ghost", "ghost2", "l")),
        ]
        builder.add_node("dup", "L")
        graph.add_node("dup", "L")
        cases.append(("add_node", ("dup", "L")))
        for method, args in cases:
            with pytest.raises(GraphError) as dict_err:
                getattr(graph, method)(*args)
            with pytest.raises(GraphError) as col_err:
                getattr(builder, method)(*args)
            assert str(col_err.value) == str(dict_err.value)

    def test_builder_rejects_bad_property_values(self):
        builder = ColumnarBuilder()
        with pytest.raises(GraphError):
            builder.add_node("x", "L", {"p": None})
        with pytest.raises(GraphError, match="property names must be strings"):
            builder.add_node("y", "L", {3: "v"})


class TestPickle:
    def test_pickle_round_trip(self):
        frozen = freeze(sample_graph())
        clone = pickle.loads(pickle.dumps(frozen))
        assert list(clone.node_items()) == list(frozen.node_items())
        assert list(clone.edge_records()) == list(frozen.edge_records())
        assert sorted(clone.property_items()) == sorted(frozen.property_items())


class TestColumns:
    def test_mixed_column_still_detects_empty_tuples(self):
        # regression: a mixed (non-uniform) column must still report
        # has_empty_tuple, or the columnar DS5 empty-list check goes blind
        column = PropertyColumn.build([(0, "scalar"), (2, ())], 4)
        assert column.kind == "obj"
        assert column.item_kind is None
        assert column.has_empty_tuple

    def test_popcount_and_iteration(self):
        rows = [(i, i) for i in range(0, 64, 3)]
        column = PropertyColumn.build(rows, 64)
        present = {row for row, _ in rows}
        for lo, hi in [(0, 64), (5, 23), (17, 18), (63, 64), (10, 10)]:
            assert column.count_range(lo, hi) == len(
                [r for r in present if lo <= r < hi]
            )
            assert list(column.iter_present(lo, hi)) == sorted(
                r for r in present if lo <= r < hi
            )
            assert list(column.iter_absent(lo, hi)) == [
                r for r in range(lo, hi) if r not in present
            ]

    def test_bool_column_round_trips(self):
        column = PropertyColumn.build([(0, True), (3, False), (5, True)], 8)
        assert column.kind == "bool"
        assert column.get(0) is True
        assert column.get(3) is False
        assert column.get(5) is True


class TestStatsParity:
    @pytest.mark.parametrize("seed", range(3))
    def test_profiles_equal_dict_path(self, seed):
        graph = random_graph(
            25,
            40,
            node_labels=("A", "B"),
            edge_labels=("x", "y"),
            prop_names=("p", "q", "r"),
            prop_probability=0.6,
            seed=seed,
        )
        dict_profile = profile_graph(graph)
        col_profile = profile_graph(freeze(graph))
        assert dict_profile.summary_lines() == col_profile.summary_lines()

    def test_profiles_equal_on_adversarial_values(self):
        builder = GraphBuilder()
        builder.node("a", "N", p=1, q=(1, 2), r="s")
        builder.node("b", "N", p="x", q=(), r=2.5)
        builder.node("c", "M", p=True)
        builder.edge("a", "e", "a", {"w": 1.0})  # self-loop
        builder.edge("a", "e", "b", {"w": "t"})
        builder.edge("b", "f", "c")
        graph = builder.graph()
        assert (
            profile_graph(graph).summary_lines()
            == profile_graph(freeze(graph)).summary_lines()
        )
