"""The pgschema command-line interface."""

import json

import pytest

from repro.cli import main
from repro.pg import dump_graph_jsonl, dumps_graph
from repro.workloads import (
    CORPUS,
    MUTATION_SCHEMA_SDL,
    MutationWorkloadConfig,
    user_session_graph,
    write_mutation_journal,
)


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.graphql"
    path.write_text(CORPUS["user_session_edge_props"].sdl)
    return str(path)


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.json"
    path.write_text(dumps_graph(user_session_graph(3, 1, seed=0)))
    return str(path)


class TestCheck:
    def test_consistent_schema(self, schema_file, capsys):
        assert main(["check", schema_file]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_inconsistent_schema(self, tmp_path, capsys):
        path = tmp_path / "bad.graphql"
        path.write_text(CORPUS["example_6_1_a"].sdl)
        assert main(["check", str(path)]) == 1
        assert "NOT consistent" in capsys.readouterr().out

    def test_warnings_shown(self, tmp_path, capsys):
        path = tmp_path / "warn.graphql"
        path.write_text(CORPUS["figure_1"].sdl)
        assert main(["check", str(path)]) == 0
        assert "warning" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["check", "/no/such/file.graphql"]) == 2

    def test_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "broken.graphql"
        path.write_text("type {{{{")
        assert main(["check", str(path)]) == 2
        assert "error" in capsys.readouterr().err


class TestLint:
    @pytest.fixture
    def unsat_file(self, tmp_path):
        path = tmp_path / "a.graphql"
        path.write_text(CORPUS["example_6_1_a"].sdl)
        return str(path)

    def test_clean_schema_exits_zero(self, schema_file, capsys):
        assert main(["lint", schema_file]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_unsat_schema_exits_nonzero_with_span(self, unsat_file, capsys):
        assert main(["lint", unsat_file]) == 1
        out = capsys.readouterr().out
        # compiler-style line: file:line:column, stable code, location
        assert f"{unsat_file}:5:3: error PG001 [conflicting-cardinality] OT1:" in out

    def test_json_output(self, unsat_file, capsys):
        assert main(["lint", unsat_file, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        pg001 = [f for f in payload if f["code"] == "PG001"]
        assert pg001 and pg001[0]["unsatisfiableType"] == "OT1"
        assert pg001[0]["line"] == 5 and pg001[0]["column"] == 3

    def test_select_and_ignore(self, unsat_file, capsys):
        assert main(["lint", unsat_file, "--select", "PG004"]) == 0
        assert main(["lint", unsat_file, "--ignore", "PG004"]) == 1
        out = capsys.readouterr().out
        assert "PG004" not in out.split("\n")[-2]

    def test_unknown_rule_is_usage_error(self, schema_file, capsys):
        assert main(["lint", schema_file, "--select", "PG999"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_warnings_alone_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "warn.graphql"
        path.write_text("type T { next: T @required @noLoops }")
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "PG002" in out and "1 warning(s)" in out

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_corpus_exit_codes(self, name, tmp_path):
        """lint exits 0 on every satisfiable corpus schema, nonzero on the
        two schemas with unsatisfiable types."""
        path = tmp_path / f"{name}.graphql"
        path.write_text(CORPUS[name].sdl)
        expected = 1 if name in {"example_6_1_a", "diagram_c"} else 0
        assert main(["lint", str(path)]) == expected


class TestValidate:
    def test_conformant(self, schema_file, graph_file, capsys):
        assert main(["validate", schema_file, graph_file]) == 0
        assert "conforms" in capsys.readouterr().out

    def test_violations_reported(self, schema_file, tmp_path, capsys):
        graph = user_session_graph(2, 1, seed=0)
        graph.add_node("ghost", "Phantom")
        path = tmp_path / "bad.json"
        path.write_text(dumps_graph(graph))
        assert main(["validate", schema_file, str(path)]) == 1
        out = capsys.readouterr().out
        assert "SS1" in out

    def test_modes_and_engines(self, schema_file, graph_file):
        for mode in ("weak", "directives", "strong", "extended"):
            assert main(["validate", schema_file, graph_file, "--mode", mode]) == 0
        assert main(["validate", schema_file, graph_file, "--engine", "naive"]) == 0


class TestSat:
    def test_satisfiable_schema(self, schema_file, capsys):
        assert main(["sat", schema_file]) == 0
        out = capsys.readouterr().out
        assert "User: SATISFIABLE" in out
        assert "witness" in out

    def test_unsat_type(self, tmp_path, capsys):
        path = tmp_path / "c.graphql"
        path.write_text(CORPUS["diagram_c"].sdl)
        assert main(["sat", str(path), "--type", "OT2"]) == 1
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_infinite_only_model_reported(self, tmp_path, capsys):
        path = tmp_path / "b.graphql"
        path.write_text(CORPUS["diagram_b"].sdl)
        assert main(["sat", str(path), "--type", "OT2"]) == 0
        assert "no finite witness" in capsys.readouterr().out

    def test_no_witness_flag(self, schema_file, capsys):
        assert main(["sat", schema_file, "--no-witness"]) == 0


class TestTranslate:
    def test_tbox_printed(self, schema_file, capsys):
        assert main(["translate", schema_file]) == 0
        out = capsys.readouterr().out
        assert "⊑" in out
        assert "disjoint(" in out


class TestApiAndQuery:
    def test_api_schema_printed(self, schema_file, capsys):
        assert main(["api", schema_file]) == 0
        out = capsys.readouterr().out
        assert "type Query {" in out
        assert "allUser" in out

    def test_query_execution(self, schema_file, graph_file, capsys):
        assert (
            main(["query", schema_file, graph_file, "{ allUser { login } }"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        logins = {user["login"] for user in payload["data"]["allUser"]}
        assert logins == {"login0", "login1", "login2"}

    def test_bad_query(self, schema_file, graph_file, capsys):
        assert main(["query", schema_file, graph_file, "{ nonsense { x } }"]) == 2


class TestStatsAndExport:
    def test_stats(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "node label User" in out

    def test_stats_json_includes_cache_gauges(self, graph_file, capsys):
        """stats --json carries the process-wide cache occupancy gauges
        (plan LRU, sat caches, compiled-scalar registry)."""
        assert main(["stats", graph_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "pgschema-metrics"
        gauges = payload["gauges"]
        for prefix in (
            "validation.plan_cache_info.",
            "sat.cache_info.",
            "schema.scalar_checkers_info.",
        ):
            assert any(name.startswith(prefix) for name in gauges), prefix
        assert "validation.plan_cache_info.evictions" in gauges
        assert "sat.cache_info.evictions" in gauges
        assert "schema.scalar_checkers_info.size" in gauges

    def test_export_cypher_schema_only(self, schema_file, capsys):
        assert main(["export-cypher", schema_file]) == 0
        out = capsys.readouterr().out
        assert "CREATE CONSTRAINT" in out
        assert "not expressible" in out

    def test_export_cypher_with_data(self, schema_file, graph_file, capsys):
        assert main(["export-cypher", schema_file, graph_file]) == 0
        out = capsys.readouterr().out
        assert "CREATE (n0:" in out

    def test_infer_command(self, graph_file, capsys):
        assert main(["infer", graph_file]) == 0
        out = capsys.readouterr().out
        assert "type User" in out

    def test_diff_command(self, schema_file, tmp_path, capsys):
        new_path = tmp_path / "new.graphql"
        new_path.write_text(
            CORPUS["user_session_edge_props"].sdl + "\ntype Extra { x: Int }\n"
        )
        assert main(["diff", schema_file, str(new_path)]) == 0
        assert "compatible" in capsys.readouterr().out

    def test_diff_breaking(self, schema_file, tmp_path, capsys):
        new_path = tmp_path / "new.graphql"
        new_path.write_text(
            CORPUS["user_session_edge_props"].sdl.replace(
                "endTime: Time!", "endTime: Time! @required"
            )
        )
        assert main(["diff", schema_file, str(new_path)]) == 1
        assert "breaking" in capsys.readouterr().out


class TestDiffRobustness:
    def test_json_output(self, schema_file, tmp_path, capsys):
        new_path = tmp_path / "new.graphql"
        new_path.write_text(
            CORPUS["user_session_edge_props"].sdl.replace(
                "endTime: Time!", "endTime: Time! @required"
            )
        )
        assert main(["diff", schema_file, str(new_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["backward_compatible"] is False
        assert any(
            change["impact"] == "breaking" for change in payload["changes"]
        )

    def test_json_identical(self, schema_file, capsys):
        assert main(["diff", schema_file, schema_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backward_compatible"] is True
        assert payload["changes"] == []

    def test_broken_schema_exits_three(self, schema_file, tmp_path, capsys):
        bad = tmp_path / "broken.graphql"
        bad.write_text("type {{{{")
        assert main(["diff", schema_file, str(bad)]) == 3
        err = capsys.readouterr().err
        assert "error" in err and "E_SYNTAX" in err

    def test_missing_file_exits_three(self, schema_file, capsys):
        assert main(["diff", schema_file, "/no/such/file.graphql"]) == 3
        assert "error" in capsys.readouterr().err


class TestValidateStream:
    @pytest.fixture
    def jsonl_file(self, tmp_path):
        path = tmp_path / "graph.jsonl"
        with open(path, "w", encoding="utf-8") as fp:
            dump_graph_jsonl(user_session_graph(3, 1, seed=0), fp)
        return str(path)

    def test_stream_conformant(self, schema_file, jsonl_file, capsys):
        assert main(["validate", schema_file, jsonl_file, "--stream"]) == 0
        assert "conforms" in capsys.readouterr().out

    def test_stream_chunk_size(self, schema_file, jsonl_file):
        assert main(
            ["validate", schema_file, jsonl_file, "--stream", "--chunk-size", "2"]
        ) == 0

    def test_stream_requires_jsonl(self, schema_file, graph_file, capsys):
        assert main(["validate", schema_file, graph_file, "--stream"]) == 2
        assert "--stream validates JSON-Lines" in capsys.readouterr().err

    def test_backend_columnar(self, schema_file, graph_file, jsonl_file):
        for graph in (graph_file, jsonl_file):
            assert main(
                ["validate", schema_file, graph, "--backend", "columnar"]
            ) == 0

    def test_stream_violations(self, schema_file, tmp_path, capsys):
        graph = user_session_graph(2, 1, seed=0)
        graph.add_node("ghost", "Phantom")
        path = tmp_path / "bad.jsonl"
        with open(path, "w", encoding="utf-8") as fp:
            dump_graph_jsonl(graph, fp)
        assert main(["validate", schema_file, str(path), "--stream"]) == 1
        assert "SS1" in capsys.readouterr().out


class TestServe:
    """``pgschema serve`` startup failures join the exit-code matrix:
    typed ``error[E_SERVICE]`` on stderr, exit 2 -- same contract as every
    other command's usage/IO errors."""

    def test_port_in_use_exits_two(self, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            sock.listen(1)
            port = sock.getsockname()[1]
            assert main(["serve", "--port", str(port)]) == 2
        err = capsys.readouterr().err
        assert "error[E_SERVICE]" in err
        assert "cannot bind" in err

    def test_registry_dir_is_a_file_exits_two(self, tmp_path, capsys):
        occupied = tmp_path / "occupied"
        occupied.write_text("not a directory")
        assert main(
            ["serve", "--port", "0", "--registry-dir", str(occupied)]
        ) == 2
        err = capsys.readouterr().err
        assert "error[E_SERVICE]" in err


class TestCdc:
    @pytest.fixture
    def journal_file(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        write_mutation_journal(
            str(path),
            MutationWorkloadConfig(
                commits=8, ops_per_commit=4, violation_probability=0.4, seed=0
            ),
        )
        return str(path)

    @pytest.fixture
    def mutation_schema_file(self, tmp_path):
        path = tmp_path / "mutation.graphql"
        path.write_text(MUTATION_SCHEMA_SDL)
        return str(path)

    def test_run_reports_transitions(
        self, mutation_schema_file, journal_file, capsys
    ):
        code = main(["cdc", mutation_schema_file, journal_file])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "commit(s)" in out

    def test_resume_from_checkpoint(
        self, mutation_schema_file, journal_file, tmp_path, capsys
    ):
        checkpoint_dir = str(tmp_path / "ckpt")
        main([
            "cdc", mutation_schema_file, journal_file,
            "--checkpoint-dir", checkpoint_dir, "--checkpoint-every", "2",
        ])
        capsys.readouterr()
        code = main([
            "cdc", mutation_schema_file, journal_file,
            "--checkpoint-dir", checkpoint_dir, "--resume",
        ])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "resumed from checkpoint:" in out
        assert "0 commit(s)" in out

    def test_events_json(self, mutation_schema_file, journal_file, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        main([
            "cdc", mutation_schema_file, journal_file,
            "--events-json", str(events_path),
        ])
        lines = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
            if line
        ]
        assert lines
        assert {line["event"] for line in lines} <= {"appeared", "disappeared"}

    def test_missing_journal_exits_two(self, mutation_schema_file, capsys):
        assert main(["cdc", mutation_schema_file, "/no/such/journal.jsonl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_budget_exit_three(self, mutation_schema_file, tmp_path, capsys):
        # a violation-free journal whose budget runs out mid-stream: the
        # partial verdict is UNKNOWN, not violations, so the exit code is 3
        from repro.validation import MutationJournal

        journal = MutationJournal(str(tmp_path / "clean.jsonl"))
        events = []
        for i in range(6):
            events.append({
                "op": "add_node", "id": f"u{i}", "label": "User",
                "properties": {"id": f"i{i}", "login": f"l{i}"},
            })
            events.append({"op": "commit"})
        journal.write_events(events)
        code = main([
            "cdc", mutation_schema_file, str(tmp_path / "clean.jsonl"),
            "--max-nodes", "3",
        ])
        assert code == 3
        assert "incomplete" in capsys.readouterr().out.lower()

    def test_budget_violations_exit_one(
        self, mutation_schema_file, journal_file, capsys
    ):
        code = main([
            "cdc", mutation_schema_file, journal_file, "--max-nodes", "5"
        ])
        assert code == 1
        assert "incomplete" in capsys.readouterr().out.lower()
