"""Workload generators: conformance of generated graphs, corpus integrity."""

import pytest

from repro.schema import is_consistent
from repro.validation import validate
from repro.workloads import (
    CARDINALITY_FIELDS,
    CORPUS,
    cardinality_graph,
    conformant_graph,
    corrupt_graph,
    food_graph,
    library_graph,
    load,
    random_schema,
    user_session_graph,
)


class TestCorpus:
    def test_all_entries_load(self):
        for name, entry in CORPUS.items():
            schema = entry.load()
            assert schema.object_types, name

    def test_inconsistent_entry_flagged(self):
        assert not CORPUS["example_6_1_a"].consistent

    @pytest.mark.parametrize(
        "name", [name for name, entry in CORPUS.items() if entry.consistent]
    )
    def test_consistency_flags_accurate(self, name):
        assert is_consistent(load(name))


class TestDomainGenerators:
    @pytest.mark.parametrize("seed", range(3))
    def test_user_session_graph_conforms(self, seed):
        schema = load("user_session_edge_props")
        graph = user_session_graph(20, 2, seed=seed)
        report = validate(schema, graph, mode="extended")
        assert report.conforms, report.summary()

    @pytest.mark.parametrize("seed", range(3))
    def test_library_graph_conforms(self, seed):
        schema = load("library")
        graph = library_graph(5, 8, num_series=2, num_publishers=2, seed=seed)
        report = validate(schema, graph)
        assert report.conforms, report.summary()

    def test_library_graph_scales(self):
        graph = library_graph(50, 100, 10, 5, seed=1)
        assert graph.num_nodes >= 160

    @pytest.mark.parametrize("seed", range(3))
    def test_food_graph_conforms_to_both_schemas(self, seed):
        graph = food_graph(15, seed=seed)
        assert validate(load("food_union"), graph).conforms
        assert validate(load("food_interface"), graph).conforms

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            library_graph(0, 3)


class TestCardinalityPatterns:
    """The §3.3 table: each directive combination accepts exactly the
    patterns its row promises."""

    def accepted(self, field_name, fan_out, fan_in):
        schema = load("cardinality_table")
        graph = cardinality_graph(field_name, fan_out, fan_in)
        return validate(schema, graph).conforms

    def test_one_to_one(self):
        field = CARDINALITY_FIELDS["1:1"]
        assert self.accepted(field, 1, 1)
        assert not self.accepted(field, 2, 1)  # source fans out
        assert not self.accepted(field, 1, 2)  # target fans in

    def test_one_to_n(self):
        field = CARDINALITY_FIELDS["1:N"]
        assert self.accepted(field, 1, 1)
        assert not self.accepted(field, 2, 1)  # non-list: one edge per source
        assert self.accepted(field, 1, 2)  # many sources may share a target

    def test_n_to_one(self):
        field = CARDINALITY_FIELDS["N:1"]
        assert self.accepted(field, 1, 1)
        assert self.accepted(field, 2, 1)
        assert not self.accepted(field, 1, 2)  # @uniqueForTarget

    def test_n_to_m(self):
        field = CARDINALITY_FIELDS["N:M"]
        assert self.accepted(field, 1, 1)
        assert self.accepted(field, 2, 1)
        assert self.accepted(field, 1, 2)
        assert self.accepted(field, 3, 3)


class TestRandomSchemas:
    @pytest.mark.parametrize("seed", range(5))
    def test_generated_schemas_consistent(self, seed):
        schema = random_schema(seed=seed)
        assert is_consistent(schema)
        assert len(schema.object_types) == 8

    def test_determinism(self):
        from repro.schema import print_schema

        assert print_schema(random_schema(seed=3)) == print_schema(random_schema(seed=3))

    @pytest.mark.parametrize("seed", range(3))
    def test_conformant_graph_is_mostly_conformant(self, seed):
        schema = random_schema(
            num_object_types=5, directive_probability=0.2, seed=seed
        )
        graph = conformant_graph(schema, nodes_per_type=5, seed=seed)
        report = validate(schema, graph)
        # best-effort: adversarial directive mixes may leave a few
        # unsatisfiable obligations, but the bulk must hold
        assert len(report.violations) <= graph.num_nodes // 2


class TestCorruption:
    RULES = ("SS1", "SS2", "SS4", "WS1", "WS3", "WS4", "DS1", "DS2", "DS5", "DS6", "DS7")

    @pytest.mark.parametrize("rule", RULES)
    def test_corruption_fires_target_rule(self, rule):
        schema = load("user_session_edge_props")
        base = user_session_graph(6, 2, seed=0)
        corrupted = corrupt_graph(base, schema, rule, seed=0)
        if corrupted is None:
            pytest.skip(f"schema offers no {rule} opportunity")
        fired = {v.rule for v in validate(schema, corrupted).violations}
        assert rule in fired

    def test_base_graph_untouched(self):
        schema = load("user_session_edge_props")
        base = user_session_graph(4, 1, seed=0)
        before = len(base)
        corrupt_graph(base, schema, "SS1", seed=0)
        assert len(base) == before
        assert validate(schema, base).conforms

    def test_unknown_rule_rejected(self):
        schema = load("library")
        with pytest.raises(ValueError):
            corrupt_graph(library_graph(2, 2, seed=0), schema, "XX9")
