"""Cypher DDL and data export (the Neo4j comparison of §2.1)."""

from repro.baselines import graph_to_cypher, schema_to_cypher_ddl
from repro.pg import GraphBuilder, PropertyGraph
from repro.workloads import CORPUS


class TestDDL:
    def test_key_becomes_unique_constraint(self):
        schema = CORPUS["user_session_keyed"].load()
        export = schema_to_cypher_ddl(schema)
        assert any(
            "ASSERT u.id IS UNIQUE" in statement for statement in export.statements
        )
        assert any(
            "ASSERT u.login IS UNIQUE" in statement for statement in export.statements
        )

    def test_required_attribute_becomes_existence_constraint(self):
        schema = CORPUS["user_session_keyed"].load()
        export = schema_to_cypher_ddl(schema)
        assert any("exists(u.login)" in statement for statement in export.statements)

    def test_composite_key_becomes_node_key(self):
        from repro.schema import parse_schema

        schema = parse_schema('type P @key(fields: ["x", "y"]) { x: Int \n y: Int }')
        export = schema_to_cypher_ddl(schema)
        assert any("IS NODE KEY" in statement for statement in export.statements)

    def test_directive_gap_reported(self):
        schema = CORPUS["library"].load()
        export = schema_to_cypher_ddl(schema)
        text = "\n".join(export.unsupported)
        for directive in ("@distinct", "@noLoops", "@uniqueForTarget", "@requiredForTarget"):
            assert directive in text
        assert "at-most-one cardinality" in text
        assert "edge target typing" in text

    def test_mandatory_edge_property_reported(self):
        schema = CORPUS["user_session_edge_props"].load()
        export = schema_to_cypher_ddl(schema)
        assert any("certainty" in item for item in export.unsupported)

    def test_ddl_renders_with_semicolons(self):
        schema = CORPUS["user_session_keyed"].load()
        ddl = schema_to_cypher_ddl(schema).ddl
        assert ddl.count(";") == len(schema_to_cypher_ddl(schema).statements)


class TestDataExport:
    def test_empty_graph(self):
        assert graph_to_cypher(PropertyGraph()) == ""

    def test_nodes_edges_and_escaping(self):
        graph = (
            GraphBuilder()
            .node("u1", "User", login="o'hara", tags=["a", "b"], age=30, active=True)
            .node("u2", "User")
            .edge("u1", "follows", "u2", {"w": 0.5})
            .graph()
        )
        script = graph_to_cypher(graph)
        assert "CREATE (n0:User" in script
        assert "login: 'o\\'hara'" in script
        assert "tags: ['a', 'b']" in script
        assert "active: true" in script
        assert ")-[:follows {_id: '_e1', w: 0.5}]->(" in script
        assert "_id: 'u1'" in script

    def test_every_element_exported(self):
        from repro.workloads import library_graph

        graph = library_graph(3, 4, 1, 1, seed=2)
        script = graph_to_cypher(graph)
        assert script.count("CREATE") == len(graph)
