"""End-to-end integration: the full pipeline, module to module."""

import pytest

from repro.api import GraphQLExecutor, extend_to_api_schema
from repro.evolution import diff_schemas
from repro.inference import infer_schema
from repro.pg import loads_graph, dumps_graph
from repro.satisfiability import SatisfiabilityChecker
from repro.schema import parse_schema, print_schema
from repro.validation import IncrementalValidator, validate
from repro.workloads import CORPUS, corrupt_graph, library_graph, user_session_graph


class TestFullPipeline:
    """SDL text → schema → workload → validation → serialisation → API →
    inference → evolution, each stage consuming the previous one."""

    def test_user_session_lifecycle(self):
        # parse the paper's schema and print-parse it once for stability
        schema = parse_schema(CORPUS["user_session_edge_props"].sdl)
        schema = parse_schema(print_schema(schema))

        # generate and validate a workload
        graph = user_session_graph(25, 2, seed=9)
        assert validate(schema, graph, mode="extended").conforms

        # serialise and reload
        graph = loads_graph(dumps_graph(graph))
        assert validate(schema, graph).conforms

        # the schema is sound: every type and edge definition populatable
        report = SatisfiabilityChecker(schema).check_schema(find_witnesses=True)
        assert report.sound
        for verdict in report.types.values():
            assert validate(schema, verdict.witness).conforms

        # serve it through the generated GraphQL API
        api = extend_to_api_schema(schema)
        executor = GraphQLExecutor(api, graph)
        result = executor.execute(
            '{ userById(id: "user-3") { login '
            "_incoming_user_from_UserSession { id } } }"
        )
        user = result["data"]["userById"]
        assert user["login"] == "login3"
        assert len(user["_incoming_user_from_UserSession"]) == 2

        # infer a schema back from the data and diff against the original:
        # the inferred schema must be at least as strict on this instance
        inferred = infer_schema(graph)
        assert validate(inferred.schema, graph).conforms
        diff = diff_schemas(schema, inferred.schema)
        assert diff.changes  # ID vs String inference etc. -- but classified

    def test_corruption_detection_round_trip(self):
        schema = parse_schema(CORPUS["library"].sdl)
        base = library_graph(6, 10, 2, 2, seed=4)
        assert validate(schema, base).conforms
        detected = []
        for rule in ("SS1", "SS2", "SS4", "WS1", "WS3", "WS4", "DS1", "DS2", "DS5", "DS6"):
            corrupted = corrupt_graph(base, schema, rule, seed=4)
            if corrupted is None:
                continue
            fired = {v.rule for v in validate(schema, corrupted).violations}
            assert rule in fired, rule
            detected.append(rule)
        assert len(detected) >= 8

    def test_incremental_equals_batch_through_api_mutations(self):
        schema = parse_schema(CORPUS["user_session_edge_props"].sdl)
        live = IncrementalValidator(schema, user_session_graph(5, 1, seed=2))
        # simulate an application session: add a user, a session, link them
        live.add_node("u_x", "User", {"id": "x", "login": "x"})
        live.add_node("s_x", "UserSession", {"id": "sx", "startTime": "t"})
        live.add_edge("e_x", "s_x", "u_x", "user", {"certainty": 0.8})
        assert live.conforms
        from repro.validation import IndexedValidator

        scratch = IndexedValidator(schema).validate(live.graph)
        assert live.report().keys() == scratch.keys()

    @pytest.mark.parametrize("name", ["food_union", "vehicles", "library"])
    def test_every_corpus_schema_full_stack(self, name):
        schema = CORPUS[name].load()
        # print → parse fixpoint
        assert print_schema(parse_schema(print_schema(schema))) == print_schema(schema)
        # satisfiability: no dead types
        assert SatisfiabilityChecker(schema).check_schema().sound
        # API generation succeeds and names every object type
        api = extend_to_api_schema(schema)
        for type_name in schema.object_types:
            assert f"all{type_name}" in api.query_fields
