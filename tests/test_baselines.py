"""The Angles [3] baseline schema model and the SDL translation into it."""

import pytest

from repro.baselines import (
    AnglesSchema,
    AnglesValidator,
    EdgeType,
    NodeType,
    PropertyType,
    sdl_to_angles,
)
from repro.pg import GraphBuilder
from repro.validation import validate
from repro.workloads import library_graph, user_session_graph
from repro.workloads.paper_schemas import CORPUS


@pytest.fixture
def angles_schema():
    schema = AnglesSchema()
    schema.add_node_type(
        NodeType(
            "User",
            (
                PropertyType("id", "STRING", mandatory=True, unique=True),
                PropertyType("age", "INTEGER"),
            ),
        )
    )
    schema.add_node_type(NodeType("Post", (PropertyType("text", "STRING"),)))
    schema.add_edge_type(
        EdgeType(
            "User",
            "wrote",
            "Post",
            (PropertyType("at", "STRING", mandatory=True),),
            min_out=0,
            max_out=2,
        )
    )
    return schema


class TestAnglesValidator:
    def test_conformant(self, angles_schema):
        graph = (
            GraphBuilder()
            .node("u", "User", id="u1", age=30)
            .node("p", "Post", text="hi")
            .edge("u", "wrote", "p", {"at": "noon"})
            .graph()
        )
        assert AnglesValidator(angles_schema).conforms(graph)

    def test_unknown_node_type(self, angles_schema):
        graph = GraphBuilder().node("x", "Ghost").graph()
        kinds = {v.kind for v in AnglesValidator(angles_schema).validate(graph)}
        assert kinds == {"unknown-node-type"}

    def test_undeclared_property(self, angles_schema):
        graph = GraphBuilder().node("u", "User", id="1", shoeSize=42).graph()
        kinds = {v.kind for v in AnglesValidator(angles_schema).validate(graph)}
        assert kinds == {"undeclared-property"}

    def test_property_type(self, angles_schema):
        graph = GraphBuilder().node("u", "User", id="1", age="old").graph()
        kinds = {v.kind for v in AnglesValidator(angles_schema).validate(graph)}
        assert kinds == {"property-type"}

    def test_missing_mandatory(self, angles_schema):
        graph = GraphBuilder().node("u", "User").graph()
        kinds = {v.kind for v in AnglesValidator(angles_schema).validate(graph)}
        assert kinds == {"missing-property"}

    def test_unknown_edge_type(self, angles_schema):
        graph = (
            GraphBuilder()
            .node("u", "User", id="1")
            .node("p", "Post")
            .edge("p", "wrote", "u")  # wrong direction
            .graph()
        )
        kinds = {v.kind for v in AnglesValidator(angles_schema).validate(graph)}
        assert kinds == {"unknown-edge-type"}

    def test_edge_property_rules(self, angles_schema):
        graph = (
            GraphBuilder()
            .node("u", "User", id="1")
            .node("p", "Post")
            .edge("u", "wrote", "p", {"bogus": 1})
            .graph()
        )
        kinds = {v.kind for v in AnglesValidator(angles_schema).validate(graph)}
        assert kinds == {"undeclared-property", "missing-property"}

    def test_cardinality_max(self, angles_schema):
        builder = GraphBuilder().node("u", "User", id="1")
        for index in range(3):
            builder.node(f"p{index}", "Post").edge(
                "u", "wrote", f"p{index}", {"at": "t"}
            )
        kinds = {v.kind for v in AnglesValidator(angles_schema).validate(builder.graph())}
        assert "cardinality" in kinds

    def test_uniqueness(self, angles_schema):
        graph = (
            GraphBuilder()
            .node("u1", "User", id="same")
            .node("u2", "User", id="same")
            .graph()
        )
        kinds = {v.kind for v in AnglesValidator(angles_schema).validate(graph)}
        assert kinds == {"uniqueness"}


class TestTranslation:
    def test_user_session_translation(self):
        schema = CORPUS["user_session_edge_props"].load()
        result = sdl_to_angles(schema)
        angles = result.schema
        assert set(angles.node_types) == {"User", "UserSession"}
        user = angles.node_types["User"]
        assert user.property_type("id").mandatory
        assert user.property_type("id").unique
        assert user.property_type("nicknames") is not None
        edge_types = angles.edge_types_for("UserSession", "user")
        assert len(edge_types) == 1
        assert edge_types[0].target == "User"
        assert edge_types[0].max_out == 1
        assert edge_types[0].min_out == 1
        assert edge_types[0].property_type("certainty").mandatory

    def test_translated_schema_accepts_conformant_graphs(self):
        schema = CORPUS["user_session_edge_props"].load()
        angles = sdl_to_angles(schema).schema
        graph = user_session_graph(10, 2, seed=4)
        assert validate(schema, graph).conforms
        assert AnglesValidator(angles).conforms(graph)

    def test_library_losses_reported(self):
        schema = CORPUS["library"].load()
        result = sdl_to_angles(schema)
        lost = "\n".join(result.lost_constraints)
        assert "@uniqueForTarget" in lost
        assert "@requiredForTarget" in lost
        assert "@distinct" in lost
        assert "@noLoops" in lost

    def test_lost_constraints_are_really_lost(self):
        """The expressiveness gap: a graph violating only target-side
        constraints passes the Angles translation but fails the SDL schema."""
        schema = CORPUS["library"].load()
        angles = sdl_to_angles(schema).schema
        base = library_graph(3, 3, 0, 2, seed=0)
        # give one book a second publisher: DS3 under SDL, invisible to Angles
        book = next(iter(base.nodes_with_label("Book")))
        publishers = base.nodes_with_label("Publisher")
        spare = next(
            p
            for p in publishers
            if all(
                base.endpoints(e)[0] != p for e in base.in_edges(book, "published")
            )
        )
        base.add_edge("extra", spare, book, "published")
        assert not validate(schema, base).conforms
        assert AnglesValidator(angles).conforms(base)

    def test_union_target_expansion(self):
        schema = CORPUS["food_union"].load()
        result = sdl_to_angles(schema)
        targets = {
            edge_type.target
            for edge_type in result.schema.edge_types_for("Person", "favoriteFood")
        }
        assert targets == {"Pizza", "Pasta"}

    def test_enum_widening_reported(self):
        from repro.schema import parse_schema

        schema = parse_schema("enum Color { RED GREEN }\ntype T { c: Color }")
        result = sdl_to_angles(schema)
        assert any("enum domain" in item for item in result.lost_constraints)
