"""GraphQL fragments and variables in the query executor."""

import pytest

from repro.api import GraphQLExecutor, extend_to_api_schema, parse_query
from repro.api.query_ast import FragmentSpread, VariableRef
from repro.errors import QueryError, SDLSyntaxError
from repro.pg import GraphBuilder
from repro.schema import parse_schema


@pytest.fixture(scope="module")
def executor():
    schema = parse_schema(
        """
        type Person @key(fields: ["name"]) {
          name: String! @required
          pet: Animal
          knows(since: Int): [Person]
        }
        union Animal = Cat | Dog
        type Cat { name: String! \n lives: Int }
        type Dog { name: String! \n goodBoy: Boolean }
        """
    )
    graph = (
        GraphBuilder()
        .node("tom", "Cat", name="Tom", lives=9)
        .node("rex", "Dog", name="Rex", goodBoy=True)
        .node("ada", "Person", name="Ada")
        .node("bob", "Person", name="Bob")
        .edge("ada", "pet", "tom")
        .edge("bob", "pet", "rex")
        .edge("ada", "knows", "bob", {"since": 1990})
        .graph()
    )
    return GraphQLExecutor(extend_to_api_schema(schema), graph)


class TestFragmentParsing:
    def test_fragment_definition_parsed(self):
        document = parse_query(
            "fragment P on Person { name }\n{ allPerson { ...P } }"
        )
        assert "P" in document.fragments
        spread = document.operations[0].selections.selections[0].selections.selections[0]
        assert spread == FragmentSpread("P")

    def test_duplicate_fragment_rejected(self):
        with pytest.raises(SDLSyntaxError):
            parse_query(
                "fragment P on A { x }\nfragment P on B { y }\n{ q { ...P } }"
            )

    def test_fragment_cannot_be_named_on(self):
        with pytest.raises(SDLSyntaxError):
            parse_query("fragment on on A { x }\n{ q { x } }")

    def test_document_needs_an_operation(self):
        with pytest.raises(SDLSyntaxError):
            parse_query("fragment P on A { x }")


class TestFragmentExecution:
    def test_spread_applies(self, executor):
        result = executor.execute(
            "fragment Names on Person { name }\n{ allPerson { ...Names } }"
        )
        assert result["data"]["allPerson"] == [{"name": "Ada"}, {"name": "Bob"}]

    def test_spread_type_condition_dispatches(self, executor):
        result = executor.execute(
            """
            fragment CatBits on Cat { lives }
            fragment DogBits on Dog { goodBoy }
            { allPerson { name pet { __typename ...CatBits ...DogBits } } }
            """
        )
        ada, bob = result["data"]["allPerson"]
        assert ada["pet"] == {"__typename": "Cat", "lives": 9}
        assert bob["pet"] == {"__typename": "Dog", "goodBoy": True}

    def test_nested_spreads(self, executor):
        result = executor.execute(
            """
            fragment Inner on Person { name }
            fragment Outer on Person { ...Inner knows { ...Inner } }
            { allPerson { ...Outer } }
            """
        )
        assert result["data"]["allPerson"][0] == {
            "name": "Ada",
            "knows": [{"name": "Bob"}],
        }

    def test_unknown_fragment(self, executor):
        with pytest.raises(QueryError):
            executor.execute("{ allPerson { ...Ghost } }")

    def test_fragment_cycle_detected(self, executor):
        with pytest.raises(QueryError, match="cycle"):
            executor.execute(
                "fragment A on Person { ...B }\n"
                "fragment B on Person { ...A }\n"
                "{ allPerson { ...A } }"
            )

    def test_fragment_on_union_type(self, executor):
        result = executor.execute(
            "fragment AnyPet on Animal { __typename }\n"
            "{ allPerson { pet { ...AnyPet } } }"
        )
        assert result["data"]["allPerson"][0]["pet"] == {"__typename": "Cat"}


class TestVariables:
    def test_variable_parsing(self):
        document = parse_query("query Q($since: Int = 3) { x(a: $since) { y } }")
        definition = document.operations[0].variables[0]
        assert definition.name == "since"
        assert definition.type_text == "Int"
        assert definition.default == 3
        selection = document.operations[0].selections.selections[0]
        assert selection.arguments == (("a", VariableRef("since")),)

    def test_variable_substitution(self, executor):
        result = executor.execute(
            "query Q($year: Int!) { allPerson { knows(since: $year) { name } } }",
            variables={"year": 1990},
        )
        assert result["data"]["allPerson"][0]["knows"] == [{"name": "Bob"}]
        result = executor.execute(
            "query Q($year: Int!) { allPerson { knows(since: $year) { name } } }",
            variables={"year": 1991},
        )
        assert result["data"]["allPerson"][0]["knows"] == []

    def test_variable_default_used(self, executor):
        result = executor.execute(
            "query Q($year: Int = 1990) { allPerson { knows(since: $year) { name } } }"
        )
        assert result["data"]["allPerson"][0]["knows"] == [{"name": "Bob"}]

    def test_variable_in_lookup(self, executor):
        result = executor.execute(
            'query Q($who: String!) { personByName(name: $who) { name } }',
            variables={"who": "Bob"},
        )
        assert result["data"]["personByName"] == {"name": "Bob"}

    def test_missing_required_variable(self, executor):
        with pytest.raises(QueryError, match="missing required variable"):
            executor.execute("query Q($who: String!) { personByName(name: $who) { name } }")

    def test_undeclared_variable_supplied(self, executor):
        with pytest.raises(QueryError, match="undeclared variable"):
            executor.execute("{ allPerson { name } }", variables={"stray": 1})

    def test_undeclared_variable_used(self, executor):
        with pytest.raises(QueryError, match="undeclared variable"):
            executor.execute("{ allPerson { knows(since: $nope) { name } } }")

    def test_optional_variable_defaults_to_null(self, executor):
        # a nullable variable without a value filters on a null property:
        # no edge carries since=null, so the result is empty
        result = executor.execute(
            "query Q($year: Int) { allPerson { knows(since: $year) { name } } }"
        )
        assert result["data"]["allPerson"][0]["knows"] == []
