"""The schema lint engine: diagnostics, rules, and the tableau short-circuit."""

import json
import pathlib

import pytest

from repro.errors import SchemaError
from repro.lint import (
    RULES,
    Diagnostic,
    Severity,
    Span,
    all_rules,
    has_errors,
    lint_schema,
    resolve_rules,
    unsat_diagnostics,
)
from repro.satisfiability import SatisfiabilityChecker
from repro.schema import parse_schema
from repro.workloads.paper_schemas import CORPUS

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def lint_sdl(sdl, **kwargs):
    return lint_schema(parse_schema(sdl, check=False), **kwargs)


def codes(findings):
    return sorted({f.code for f in findings})


class TestDiagnosticModel:
    def test_render_with_span(self):
        diagnostic = Diagnostic(
            "PG001",
            Severity.ERROR,
            "boom",
            location="T",
            span=Span(3, 7),
            rule="conflicting-cardinality",
        )
        text = diagnostic.render("s.graphql")
        assert text == "s.graphql:3:7: error PG001 [conflicting-cardinality] T: boom"

    def test_render_without_span(self):
        diagnostic = Diagnostic("PG006", Severity.INFO, "unused", rule="unused-definition")
        assert diagnostic.render() == "info PG006 [unused-definition] unused"

    def test_to_json_round_trips(self):
        diagnostic = Diagnostic(
            "PG001",
            Severity.ERROR,
            "boom",
            location="T",
            span=Span(3, 7),
            rule="conflicting-cardinality",
            unsat_type="T",
        )
        payload = json.loads(json.dumps(diagnostic.to_json()))
        assert payload["code"] == "PG001"
        assert payload["severity"] == "error"
        assert payload["line"] == 3 and payload["column"] == 7
        assert payload["unsatisfiableType"] == "T"

    def test_empty_span_is_falsy_and_omitted(self):
        diagnostic = Diagnostic("PG006", Severity.INFO, "x")
        assert not diagnostic.span
        assert "line" not in diagnostic.to_json()

    def test_severity_rank_order(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank


class TestRegistry:
    def test_codes_are_stable(self):
        assert sorted(RULES) == [f"PG{i:03d}" for i in range(1, 19)]

    def test_unsat_rules(self):
        assert {r.code for r in all_rules() if r.unsat} == {"PG001", "PG003"}

    def test_every_rule_documented(self):
        for rule in all_rules():
            assert rule.name and rule.description, rule.code

    def test_resolve_by_code_and_name(self):
        assert [r.code for r in resolve_rules(select=["PG002"])] == ["PG002"]
        assert [r.code for r in resolve_rules(select=["invalid-key"])] == ["PG007"]
        remaining = {r.code for r in resolve_rules(ignore=["PG001"])}
        assert remaining == set(RULES) - {"PG001"}

    def test_unknown_rule_rejected(self):
        with pytest.raises(SchemaError, match="unknown lint rule"):
            resolve_rules(select=["PG999"])
        with pytest.raises(SchemaError, match="unknown lint rule"):
            resolve_rules(ignore=["no-such-rule"])


class TestIndividualRules:
    """Each rule on a minimal triggering schema (mirrored in docs/LINTING.md)."""

    def test_pg001_unconditional_conflict(self):
        findings = lint_sdl(CORPUS["example_6_1_a"].sdl, select=["PG001"])
        assert [f.location for f in findings] == ["OT1"]
        assert findings[0].severity is Severity.ERROR
        assert findings[0].unsat_type == "OT1"
        assert findings[0].span.line > 0 and findings[0].span.column > 0

    def test_pg001_conditional_conflict(self):
        findings = lint_sdl(CORPUS["diagram_c"].sdl, select=["PG001"])
        assert [f.unsat_type for f in findings] == ["OT2"]

    def test_pg001_not_fooled_by_single_lower_bound(self):
        # one @requiredForTarget under one @uniqueForTarget is fine
        findings = lint_sdl(
            """
            interface IT { f: OT1 @uniqueForTarget }
            type OT1 implements IT { f: OT1 @uniqueForTarget }
            type OT2 { f: OT1 @requiredForTarget }
            """,
            select=["PG001"],
        )
        assert findings == ()

    def test_pg002_forced_cycle(self):
        findings = lint_sdl(
            "type T { next: T @required @noLoops }", select=["PG002"]
        )
        assert codes(findings) == ["PG002"]
        assert findings[0].severity is Severity.WARNING

    def test_pg002_silent_when_other_targets_exist(self):
        findings = lint_sdl(
            """
            interface I { x: Int }
            type T implements I { x: Int next: I @required @noLoops }
            type U implements I { x: Int }
            """,
            select=["PG002"],
        )
        assert findings == ()

    def test_pg003_required_into_dead_interface(self):
        findings = lint_sdl(
            """
            interface Lonely { x: Int }
            type T { toLonely: Lonely @required }
            """,
            select=["PG003"],
        )
        assert [f.unsat_type for f in findings] == ["T"]

    def test_pg003_fixpoint_propagates(self):
        # U is dead only because T is dead
        findings = lint_sdl(
            """
            interface Lonely { x: Int }
            type T { toLonely: Lonely @required }
            type U { toT: T @required }
            """,
            select=["PG003"],
        )
        assert sorted(f.unsat_type for f in findings) == ["T", "U"]

    def test_pg003_propagates_from_pg001_seed(self):
        # OT2 is PG001-unsat in diagram (c); a required edge into it dies too
        sdl = CORPUS["diagram_c"].sdl + "\ntype Extra { toOT2: OT2 @required }\n"
        findings = lint_sdl(sdl, select=["PG003"])
        assert [f.unsat_type for f in findings] == ["Extra"]

    def test_pg004_unpopulatable_optional_edge(self):
        findings = lint_sdl(
            """
            interface Lonely { x: Int }
            type T { toLonely: [Lonely] }
            """,
            select=["PG004"],
        )
        assert [f.location for f in findings] == ["T.toLonely"]
        assert findings[0].severity is Severity.WARNING

    def test_pg005_unimplemented_interface(self):
        findings = lint_sdl(
            "interface Lonely { x: Int }\ntype T { y: Int }", select=["PG005"]
        )
        assert [f.location for f in findings] == ["Lonely"]

    def test_pg006_unused_scalar_enum_union(self):
        findings = lint_sdl(
            """
            scalar Unused
            enum Color { RED }
            union Pair = T
            type T { x: Int }
            """,
            select=["PG006"],
        )
        assert sorted(f.location for f in findings) == ["Color", "Pair", "Unused"]
        assert all(f.severity is Severity.INFO for f in findings)

    def test_pg006_used_definitions_are_silent(self):
        findings = lint_sdl(
            """
            scalar Date
            union Pair = T
            type T { x: Date p: Pair }
            """,
            select=["PG006"],
        )
        assert findings == ()

    def test_pg007_key_violations(self):
        findings = lint_sdl(
            """
            type T @key(fields: ["ghost", "toU", "tags", "name"]) {
              name: String
              tags: [String!]!
              toU: U
            }
            type U { x: Int }
            """,
            select=["PG007"],
        )
        by_message = {f.message.split("'")[1]: f for f in findings}
        assert by_message["ghost"].severity is Severity.ERROR
        assert by_message["toU"].severity is Severity.ERROR
        assert by_message["tags"].severity is Severity.WARNING  # list-typed
        assert by_message["name"].severity is Severity.WARNING  # nullable

    def test_pg007_good_key_is_silent(self):
        findings = lint_sdl(
            'type T @key(fields: ["id"]) { id: ID! }', select=["PG007"]
        )
        assert findings == ()

    def test_pg008_duplicate_directive(self):
        findings = lint_sdl(
            "type T { x: Int @required @required }", select=["PG008"]
        )
        assert codes(findings) == ["PG008"]
        assert "duplicate" in findings[0].message

    def test_pg008_distinct_on_non_list(self):
        findings = lint_sdl(
            "type T { toT: T @distinct }", select=["PG008"]
        )
        assert findings and findings[0].severity is Severity.INFO

    def test_pg008_target_directive_on_attribute(self):
        findings = lint_sdl(
            "type T { x: Int @noLoops }", select=["PG008"]
        )
        assert findings and "no effect on the attribute" in findings[0].message

    def test_pg008_vacuous_noloops(self):
        findings = lint_sdl(
            "type T { toU: U @noLoops }\ntype U { x: Int }", select=["PG008"]
        )
        assert findings and "noLoops has no effect" in findings[0].message

    def test_pg009_extra_non_null_argument(self):
        findings = lint_sdl(
            """
            type B { x: Int }
            interface I { rel(a: Int): B }
            type T implements I { rel(a: Int extra: Float!): B }
            """,
            select=["PG009"],
        )
        assert findings and "Definition 4.3(3)" in findings[0].message
        assert findings[0].severity is Severity.ERROR

    def test_pg009_argument_type_mismatch(self):
        findings = lint_sdl(
            """
            type B { x: Int }
            interface I { rel(a: Int): B }
            type T implements I { rel(a: Int!): B }
            """,
            select=["PG009"],
        )
        assert findings and "Definition 4.3(2)" in findings[0].message

    def test_pg010_shadowing_at_incompatible_type(self):
        findings = lint_sdl(
            "interface I { x: Int }\ntype T implements I { x: String }",
            select=["PG010"],
        )
        assert findings and "not a subtype" in findings[0].message

    def test_pg010_missing_field(self):
        findings = lint_sdl(
            "interface I { x: Int }\ntype T implements I { y: Int }",
            select=["PG010"],
        )
        assert findings and "missing field 'x'" in findings[0].message

    def test_pg010_covariant_refinement_allowed(self):
        findings = lint_sdl(
            """
            interface Food { self: Food }
            type Pizza implements Food { self: Pizza }
            """,
            select=["PG010"],
        )
        assert findings == ()


class TestCorpus:
    """The whole paper corpus through the full rule suite."""

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_lint_runs_clean_of_crashes(self, name):
        schema = parse_schema(CORPUS[name].sdl, check=False)
        findings = lint_schema(schema)
        assert all(isinstance(f, Diagnostic) for f in findings)

    @pytest.mark.parametrize(
        "name", [name for name, entry in CORPUS.items() if entry.consistent]
    )
    def test_satisfiable_schemas_have_no_unsat_verdicts(self, name):
        """Soundness on the corpus: lint never flags a satisfiable type."""
        schema = parse_schema(CORPUS[name].sdl, check=False)
        if name == "diagram_c":
            return  # consistent but deliberately unsatisfiable (OT2)
        assert unsat_diagnostics(schema) == {}

    @pytest.mark.parametrize(
        "name,expect_errors",
        [(name, name in {"example_6_1_a", "diagram_c"}) for name in sorted(CORPUS)],
    )
    def test_exit_status_partition(self, name, expect_errors):
        """Only the paper's two unsatisfiable diagrams produce lint errors."""
        schema = parse_schema(CORPUS[name].sdl, check=False)
        assert has_errors(lint_schema(schema)) == expect_errors

    def test_diagram_b_is_completely_clean(self):
        """diagram (b) is only *infinitely* satisfiable -- a polynomial rule
        that flagged it would be unsound for the tableau semantics."""
        schema = parse_schema(CORPUS["diagram_b"].sdl)
        assert lint_schema(schema) == ()

    @pytest.mark.parametrize("name", ["example_6_1_a", "diagram_b", "diagram_c"])
    def test_golden_diagnostics(self, name):
        schema = parse_schema(CORPUS[name].sdl, check=False)
        rendered = "".join(
            f.render(f"{name}.graphql") + "\n" for f in lint_schema(schema)
        )
        golden = (GOLDEN_DIR / f"lint_{name}.txt").read_text()
        assert rendered == golden


class TestTableauShortCircuit:
    """The unsat pre-pass must decide without ever touching the tableau."""

    @pytest.fixture
    def no_tableau(self, monkeypatch):
        def forbidden(self):  # pragma: no cover - failure path
            raise AssertionError("tableau was constructed for a lint-decided type")

        monkeypatch.setattr(SatisfiabilityChecker, "tableau", property(forbidden))
        monkeypatch.setattr(SatisfiabilityChecker, "tbox", property(forbidden))

    def test_example_6_1_a_decided_statically(self, no_tableau):
        checker = SatisfiabilityChecker(CORPUS["example_6_1_a"].load())
        verdict = checker.check_type("OT1")
        assert not verdict.tableau_satisfiable
        assert verdict.decided_by == "lint"
        assert verdict.diagnostic is not None
        assert verdict.diagnostic.code == "PG001"
        assert verdict.diagnostic.span.line > 0
        assert not checker.is_satisfiable("OT1")

    def test_diagram_c_decided_statically(self, no_tableau):
        checker = SatisfiabilityChecker(CORPUS["diagram_c"].load())
        verdict = checker.check_type("OT2")
        assert verdict.decided_by == "lint"
        assert verdict.diagnostic.code == "PG001"

    def test_precheck_can_be_disabled(self):
        checker = SatisfiabilityChecker(
            CORPUS["example_6_1_a"].load(), lint_precheck=False
        )
        verdict = checker.check_type("OT1", find_witness=False)
        assert not verdict.tableau_satisfiable
        assert verdict.decided_by == "tableau"
        assert verdict.diagnostic is None

    @pytest.mark.parametrize(
        "name", ["example_6_1_a", "diagram_b", "diagram_c", "library", "vehicles"]
    )
    def test_precheck_agrees_with_tableau(self, name):
        """The pre-pass never changes a verdict, only how it is reached."""
        schema = CORPUS[name].load()
        fast = SatisfiabilityChecker(schema)
        slow = SatisfiabilityChecker(schema, lint_precheck=False)
        for type_name in sorted(schema.object_types):
            assert fast.is_satisfiable(type_name) == slow.is_satisfiable(
                type_name
            ), type_name

    def test_lint_verdict_available_even_when_precheck_off(self):
        checker = SatisfiabilityChecker(
            CORPUS["diagram_c"].load(), lint_precheck=False
        )
        assert checker.lint_verdict("OT2") is not None
        assert checker.lint_verdict("OT1") is None
