"""Schema consistency (Definitions 4.3-4.5)."""

import pytest

from repro.errors import ConsistencyError
from repro.schema import (
    consistency_errors,
    directives_consistency_errors,
    interface_consistency_errors,
    is_consistent,
    parse_schema,
)
from repro.workloads.paper_schemas import CORPUS


class TestInterfaceConsistency:
    def test_conforming_implementation(self):
        schema = parse_schema(CORPUS["food_interface"].sdl)
        assert interface_consistency_errors(schema) == []

    def test_missing_field(self):
        with pytest.raises(ConsistencyError, match="lacks interface field"):
            parse_schema("interface I { x: Int }\ntype T implements I { y: Int }")

    def test_incompatible_field_type(self):
        with pytest.raises(ConsistencyError, match="not a subtype"):
            parse_schema("interface I { x: Int }\ntype T implements I { x: String }")

    def test_covariant_field_type_allowed(self):
        schema = parse_schema(
            """
            interface Food { self: Food }
            type Pizza implements Food { self: Pizza }
            """
        )
        assert is_consistent(schema)

    def test_non_null_refinement_allowed(self):
        schema = parse_schema(
            "interface I { x: Int }\ntype T implements I { x: Int! }"
        )
        assert is_consistent(schema)

    def test_list_vs_named_is_inconsistent(self):
        # the Example 6.1 phenomenon: [OT1] is not a subtype of OT1
        schema = parse_schema(CORPUS["example_6_1_a"].sdl, check=False)
        errors = interface_consistency_errors(schema)
        assert len(errors) == 2
        assert all("not a subtype" in error for error in errors)

    def test_missing_interface_argument(self):
        with pytest.raises(ConsistencyError, match="lacks argument"):
            parse_schema(
                """
                type B { x: Int }
                interface I { rel(a: Int): B }
                type T implements I { rel: B }
                """
            )

    def test_argument_type_must_match_exactly(self):
        with pytest.raises(ConsistencyError, match="expected exactly"):
            parse_schema(
                """
                type B { x: Int }
                interface I { rel(a: Int): B }
                type T implements I { rel(a: Int!): B }
                """
            )

    def test_extra_argument_must_be_nullable(self):
        # Definition 4.3(3): arguments beyond the interface's are allowed
        # only at nullable types; the message must say so and cite the rule.
        with pytest.raises(
            ConsistencyError,
            match=r"must have a nullable type, not Float! \(Definition 4.3\(3\)\)",
        ):
            parse_schema(
                """
                type B { x: Int }
                interface I { rel(a: Int): B }
                type T implements I { rel(a: Int extra: Float!): B }
                """
            )

    def test_extra_argument_message_names_interface_and_span(self):
        schema = parse_schema(
            "type B { x: Int }\n"
            "interface I { rel(a: Int): B }\n"
            "type T implements I { rel(a: Int extra: Float!): B }\n",
            check=False,
        )
        errors = interface_consistency_errors(schema)
        assert len(errors) == 1
        assert "extra argument rel(extra) beyond interface I" in errors[0]
        # the span points at the extra argument's name token on line 3
        assert "(at line 3, column 34)" in errors[0]

    def test_extra_nullable_argument_allowed(self):
        schema = parse_schema(
            """
            type B { x: Int }
            interface I { rel(a: Int): B }
            type T implements I { rel(a: Int extra: Float): B }
            """
        )
        assert is_consistent(schema)


class TestDirectivesConsistency:
    def test_key_requires_fields_argument(self):
        with pytest.raises(ConsistencyError, match="lacks required argument"):
            parse_schema("type T @key { id: ID }")

    def test_key_fields_must_be_string_list(self):
        with pytest.raises(ConsistencyError, match="is not a value"):
            parse_schema("type T @key(fields: 3) { id: ID }")

    def test_key_fields_elements_must_be_strings(self):
        with pytest.raises(ConsistencyError, match="is not a value"):
            parse_schema("type T @key(fields: [3]) { id: ID }")

    def test_undefined_argument_rejected(self):
        with pytest.raises(ConsistencyError, match="undefined argument"):
            parse_schema('type T @key(fields: ["id"] bogus: 1) { id: ID }')

    def test_argless_directive_with_argument(self):
        with pytest.raises(ConsistencyError, match="undefined argument"):
            parse_schema("type T { x: Int @required(level: 3) }")

    def test_user_defined_directive_checked(self):
        with pytest.raises(ConsistencyError, match="lacks required argument"):
            parse_schema(
                "directive @limit(n: Int!) on FIELD_DEFINITION\n"
                "type T { x: Int @limit }"
            )

    def test_user_defined_directive_valid_use(self):
        schema = parse_schema(
            "directive @limit(n: Int!) on FIELD_DEFINITION\n"
            "type T { x: Int @limit(n: 3) }"
        )
        assert directives_consistency_errors(schema) == []


class TestCorpusConsistency:
    @pytest.mark.parametrize(
        "name", [name for name, entry in CORPUS.items() if entry.consistent]
    )
    def test_consistent_corpus_entries(self, name):
        assert is_consistent(parse_schema(CORPUS[name].sdl))

    def test_example_6_1_a_is_flagged(self):
        # recorded reproduction finding: the paper's own example violates
        # its own Definition 4.3
        schema = parse_schema(CORPUS["example_6_1_a"].sdl, check=False)
        assert not is_consistent(schema)
        assert consistency_errors(schema)
