"""Schema building: interpretation of SDL plus §3.6's ignored features."""

import pytest

from repro.errors import SchemaError
from repro.schema import parse_schema, print_schema
from repro.workloads.paper_schemas import CORPUS


class TestBasicBuilding:
    def test_minimal(self):
        schema = parse_schema("type T { x: Int }")
        assert set(schema.object_types) == {"T"}

    def test_duplicate_type_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            parse_schema("type T { x: Int }\ntype T { y: Int }")

    def test_duplicate_field_rejected(self):
        with pytest.raises(SchemaError, match="duplicate field"):
            parse_schema("type T { x: Int x: Int }")

    def test_duplicate_argument_rejected(self):
        with pytest.raises(SchemaError, match="duplicate argument"):
            parse_schema("type B { y: Int }\ntype T { r(a: Int a: Int): B }")

    def test_unknown_field_type_rejected(self):
        with pytest.raises(SchemaError, match="unknown type"):
            parse_schema("type T { x: Mystery }")

    def test_unknown_interface_rejected(self):
        with pytest.raises(SchemaError, match="unknown interface"):
            parse_schema("type T implements Ghost { x: Int }")

    def test_union_member_must_be_object(self):
        with pytest.raises(SchemaError, match="not an object type"):
            parse_schema("union U = Int\ntype T { x: Int }")

    def test_empty_enum_rejected(self):
        with pytest.raises(SchemaError, match="no values"):
            parse_schema("enum E { }\ntype T { x: Int }")

    def test_nested_list_field_rejected(self):
        with pytest.raises(SchemaError, match="admissible wrappings"):
            parse_schema("type T { xs: [[Int]] }")

    def test_input_type_as_field_type_rejected(self):
        with pytest.raises(SchemaError, match="input type"):
            parse_schema("input P { x: Int }\ntype T { p: P }")


class TestIgnoredFeatures:
    """Section 3.6: unusable SDL features are ignored, with warnings."""

    def test_root_types_from_schema_block_dropped(self):
        schema = parse_schema(CORPUS["figure_1"].sdl)
        assert "Query" not in schema.object_types
        assert any("root operation type Query" in w for w in schema.warnings)

    def test_conventional_root_names_dropped_without_block(self):
        schema = parse_schema("type Query { x: Int }\ntype T { y: Int }")
        assert "Query" not in schema.object_types
        assert set(schema.object_types) == {"T"}

    def test_conventional_name_kept_when_block_names_other(self):
        schema = parse_schema(
            "type Query { x: Int }\ntype Root { q: Query }\nschema { query: Root }"
        )
        assert "Query" in schema.object_types
        assert "Root" not in schema.object_types

    def test_fields_referencing_root_types_dropped(self):
        schema = parse_schema(
            "type Query { x: Int }\ntype T { q: Query y: Int }"
        )
        assert schema.fields("T") == ("y",)
        assert any("references a root operation type" in w for w in schema.warnings)

    def test_attribute_arguments_ignored(self):
        schema = parse_schema("type T { len(unit: String): Float }")
        assert schema.args("T", "len") == ()
        assert any("attribute definition" in w for w in schema.warnings)

    def test_non_scalar_arguments_ignored(self):
        schema = parse_schema(
            "input Opts { x: Int }\ntype B { y: Int }\ntype T { r(o: Opts w: Float): B }"
        )
        assert schema.args("T", "r") == ("w",)
        assert any("non-scalar type" in w for w in schema.warnings)

    def test_object_typed_arguments_ignored(self):
        schema = parse_schema("type B { y: Int }\ntype T { r(other: B): B }")
        assert schema.args("T", "r") == ()

    def test_unknown_directives_ignored(self):
        schema = parse_schema("type T { x: Int @frobnicate }")
        assert schema.directives_f("T", "x") == ()
        assert any("unknown directive" in w for w in schema.warnings)

    def test_input_types_ignored(self):
        schema = parse_schema("input P { x: Int }\ntype T { y: Int }")
        assert "P" not in schema.type_names
        assert any("input type P" in w for w in schema.warnings)

    def test_key_on_field_ignored(self):
        schema = parse_schema('type T { x: Int @key(fields: ["x"]) }')
        assert schema.directives_f("T", "x") == ()

    def test_field_directive_on_type_ignored(self):
        schema = parse_schema("type T @required { x: Int }")
        assert schema.directives_t("T") == ()


class TestDirectiveSpellings:
    def test_noloops_aliases(self):
        lower = parse_schema("type T { r: [T] @noloops }")
        camel = parse_schema("type T { r: [T] @noLoops }")
        assert lower.has_field_directive("T", "r", "noLoops")
        assert camel.has_field_directive("T", "r", "noLoops")

    def test_redefining_standard_directive_rejected(self):
        with pytest.raises(SchemaError, match="duplicate directive"):
            parse_schema("directive @required on OBJECT\ntype T { x: Int }")


class TestCustomScalars:
    def test_custom_scalar_predicate(self):
        schema = parse_schema(
            "scalar Even\ntype T { x: Even }",
            scalar_predicates={"Even": lambda v: isinstance(v, int) and v % 2 == 0},
        )
        assert schema.scalars.in_values(2, "Even")
        assert not schema.scalars.in_values(3, "Even")


class TestSchemaPrinter:
    @pytest.mark.parametrize(
        "name", [name for name, entry in CORPUS.items() if entry.consistent]
    )
    def test_print_parse_fixpoint(self, name):
        schema = parse_schema(CORPUS[name].sdl)
        printed = print_schema(schema)
        reparsed = parse_schema(printed)
        assert set(reparsed.object_types) == set(schema.object_types)
        assert set(reparsed.interface_types) == set(schema.interface_types)
        assert set(reparsed.union_types) == set(schema.union_types)
        for type_name in schema.object_types:
            assert reparsed.fields(type_name) == schema.fields(type_name)
            for field_name in schema.fields(type_name):
                assert reparsed.type_f(type_name, field_name) == schema.type_f(
                    type_name, field_name
                )
                assert reparsed.directives_f(type_name, field_name) == schema.directives_f(
                    type_name, field_name
                )
        # printing the reparsed schema is a fixpoint
        assert print_schema(reparsed) == printed
