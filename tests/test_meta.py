"""Meta-tests: catalogue completeness and cross-module wiring."""

from repro.fo.sentences import SENTENCES
from repro.validation import (
    ALL_RULES,
    DIRECTIVE_RULES,
    EXTENSION_RULES,
    RULES,
    STRONG_RULES,
    WEAK_RULES,
    IndexedValidator,
    NaiveValidator,
)
from repro.validation.violations import Violation, rules_for_mode


class TestRuleCatalogue:
    def test_mode_partition(self):
        assert WEAK_RULES + DIRECTIVE_RULES + STRONG_RULES == ALL_RULES
        assert set(ALL_RULES) | set(EXTENSION_RULES) == set(RULES)
        assert len(set(ALL_RULES)) == 15

    def test_every_rule_has_statement(self):
        for rule, (title, statement) in RULES.items():
            assert title and statement, rule

    def test_every_rule_has_engine_methods(self):
        from repro.workloads import load

        schema = load("library")
        for engine in (NaiveValidator(schema), IndexedValidator(schema)):
            for rule in RULES:
                assert hasattr(engine, f"_{rule.lower()}"), (
                    type(engine).__name__,
                    rule,
                )

    def test_every_core_rule_has_fo_sentence(self):
        assert set(SENTENCES) == set(ALL_RULES)

    def test_rules_for_mode(self):
        assert rules_for_mode("weak") == WEAK_RULES
        assert rules_for_mode("directives") == DIRECTIVE_RULES
        assert rules_for_mode("strong") == ALL_RULES
        assert rules_for_mode("extended") == ALL_RULES + EXTENSION_RULES

    def test_violation_rendering(self):
        violation = Violation("WS1", "User.login", ("u1",), "bad value")
        text = str(violation)
        assert "WS1" in text and "User.login" in text and "u1" in text
        assert violation.title == RULES["WS1"][0]
        assert violation.key() == ("WS1", "User.login", ("u1",))


class TestPublicAPI:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import importlib

        for module_name in (
            "repro.pg",
            "repro.sdl",
            "repro.schema",
            "repro.lint",
            "repro.validation",
            "repro.fo",
            "repro.sat",
            "repro.dl",
            "repro.satisfiability",
            "repro.api",
            "repro.baselines",
            "repro.workloads",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert getattr(module, name) is not None, (module_name, name)

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
