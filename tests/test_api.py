"""The GraphQL API extension (§3.6) and its query executor."""

import pytest

from repro.api import (
    GraphQLExecutor,
    execute_query,
    extend_to_api_schema,
    parse_query,
)
from repro.api.query_ast import FieldSelection, InlineFragment
from repro.errors import QueryError, SDLSyntaxError
from repro.pg import GraphBuilder
from repro.schema import parse_schema
from repro.workloads.paper_schemas import CORPUS


@pytest.fixture(scope="module")
def api():
    schema = parse_schema(
        """
        type Person @key(fields: ["name"]) {
          name: String! @required
          favoriteFood: Food
          knows(since: Int): [Person]
        }
        union Food = Pizza | Pasta
        type Pizza { name: String! \n toppings: [String!]! }
        type Pasta { name: String! }
        """
    )
    return extend_to_api_schema(schema)


@pytest.fixture(scope="module")
def graph():
    return (
        GraphBuilder()
        .node("margherita", "Pizza", name="Margherita", toppings=["basil"])
        .node("carbonara", "Pasta", name="Carbonara")
        .node("ada", "Person", name="Ada")
        .node("grace", "Person", name="Grace")
        .edge("ada", "favoriteFood", "margherita")
        .edge("grace", "favoriteFood", "carbonara")
        .edge("ada", "knows", "grace", {"since": 1980})
        .graph()
    )


@pytest.fixture(scope="module")
def executor(api, graph):
    return GraphQLExecutor(api, graph)


class TestQueryParser:
    def test_anonymous_operation(self):
        document = parse_query("{ allPerson { name } }")
        assert len(document.operations) == 1

    def test_named_operations(self):
        document = parse_query("query A { x { y } } query B { z { w } }")
        assert document.operation("A").name == "A"
        with pytest.raises(ValueError):
            document.operation()
        with pytest.raises(ValueError):
            document.operation("C")

    def test_alias_and_arguments(self):
        document = parse_query('{ friend: personByName(name: "Ada") { name } }')
        selection = document.operations[0].selections.selections[0]
        assert isinstance(selection, FieldSelection)
        assert selection.alias == "friend"
        assert selection.name == "personByName"
        assert selection.arguments == (("name", "Ada"),)
        assert selection.output_name == "friend"

    def test_inline_fragment(self):
        document = parse_query("{ x { ... on Pizza { name } } }")
        fragment = document.operations[0].selections.selections[0].selections.selections[0]
        assert isinstance(fragment, InlineFragment)
        assert fragment.type_condition == "Pizza"

    def test_mutations_rejected(self):
        with pytest.raises(SDLSyntaxError):
            parse_query("mutation { x }")

    def test_empty_selection_set_rejected(self):
        with pytest.raises(SDLSyntaxError):
            parse_query("{ }")

    def test_empty_document_rejected(self):
        with pytest.raises(SDLSyntaxError):
            parse_query("   ")


class TestExtension:
    def test_query_fields_generated(self, api):
        assert api.query_fields["allPerson"] == ("all", "Person")
        assert api.query_fields["personByName"] == ("lookup", "Person", "name")

    def test_inverse_fields_generated(self, api):
        inverse = api.inverse_field("Pizza", "_incoming_favoriteFood_from_Person")
        assert inverse is not None
        assert inverse.edge_label == "favoriteFood"
        assert inverse.source_type == "Person"

    def test_sdl_contains_query_and_schema_block(self, api):
        assert "type Query {" in api.sdl
        assert "schema {\n  query: Query\n}" in api.sdl
        assert "personByName(name: String!): Person" in api.sdl

    def test_sdl_round_trips_to_original_pg_schema(self, api):
        # parsing the API schema drops the Query root again (§3.6), leaving
        # the original object types plus the inverse helper fields
        recovered = parse_schema(api.sdl)
        assert "Query" not in recovered.object_types
        assert set(recovered.object_types) == {"Person", "Pizza", "Pasta"}

    def test_extension_on_paper_figure(self):
        schema = CORPUS["figure_1"].load()
        api = extend_to_api_schema(schema)
        assert "allHuman" in api.query_fields
        assert api.inverse_field("Starship", "_incoming_starships_from_Human")


class TestExecutor:
    def test_all_query(self, executor):
        result = executor.execute("{ allPerson { name } }")
        assert result == {
            "data": {"allPerson": [{"name": "Ada"}, {"name": "Grace"}]}
        }

    def test_lookup_hit_and_miss(self, executor):
        hit = executor.execute('{ personByName(name: "Ada") { name } }')
        assert hit["data"]["personByName"] == {"name": "Ada"}
        miss = executor.execute('{ personByName(name: "Nobody") { name } }')
        assert miss["data"]["personByName"] is None

    def test_lookup_requires_argument(self, executor):
        with pytest.raises(QueryError):
            executor.execute("{ personByName { name } }")

    def test_union_dispatch_with_fragments(self, executor):
        result = executor.execute(
            """
            {
              allPerson {
                name
                favoriteFood {
                  __typename
                  ... on Pizza { toppings }
                  ... on Pasta { name }
                }
              }
            }
            """
        )
        ada, grace = result["data"]["allPerson"]
        assert ada["favoriteFood"] == {"__typename": "Pizza", "toppings": ["basil"]}
        assert grace["favoriteFood"] == {"__typename": "Pasta", "name": "Carbonara"}

    def test_non_list_field_null_when_absent(self, api):
        graph = GraphBuilder().node("p", "Person", name="Solo").graph()
        result = execute_query(api, graph, "{ allPerson { name favoriteFood { __typename } } }")
        assert result["data"]["allPerson"][0]["favoriteFood"] is None

    def test_list_relationship(self, executor):
        result = executor.execute("{ allPerson { knows { name } } }")
        ada, grace = result["data"]["allPerson"]
        assert ada["knows"] == [{"name": "Grace"}]
        assert grace["knows"] == []

    def test_edge_property_filters(self, executor):
        matching = executor.execute("{ allPerson { knows(since: 1980) { name } } }")
        assert matching["data"]["allPerson"][0]["knows"] == [{"name": "Grace"}]
        nonmatching = executor.execute("{ allPerson { knows(since: 1999) { name } } }")
        assert nonmatching["data"]["allPerson"][0]["knows"] == []

    def test_inverse_traversal(self, executor):
        result = executor.execute(
            "{ allPizza { _incoming_favoriteFood_from_Person { name } } }"
        )
        fans = result["data"]["allPizza"][0]["_incoming_favoriteFood_from_Person"]
        assert fans == [{"name": "Ada"}]

    def test_aliases(self, executor):
        result = executor.execute('{ people: allPerson { handle: name } }')
        assert result["data"]["people"][0] == {"handle": "Ada"}

    def test_unknown_root_field(self, executor):
        with pytest.raises(QueryError):
            executor.execute("{ nonsense { x } }")

    def test_unknown_object_field(self, executor):
        with pytest.raises(QueryError):
            executor.execute("{ allPerson { nonsense } }")

    def test_attribute_takes_no_selection(self, executor):
        with pytest.raises(QueryError):
            executor.execute("{ allPerson { name { oops } } }")

    def test_object_needs_selection(self, executor):
        with pytest.raises(QueryError):
            executor.execute("{ allPerson { favoriteFood } }")

    def test_fragment_on_query_rejected(self, executor):
        with pytest.raises(QueryError):
            executor.execute("{ ... on Person { name } }")

    def test_array_attribute_returned_as_list(self, executor):
        result = executor.execute("{ allPizza { toppings } }")
        assert result["data"]["allPizza"][0]["toppings"] == ["basil"]
