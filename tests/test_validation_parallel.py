"""The parallel engine's machinery: partitioning, executors, merging.

Agreement with the sequential engines is covered by
``test_validation_differential.py``; this module tests the moving parts --
scope-respecting shard assignment, executor selection, worker-count
clamping, and the facade wiring.
"""

import pytest

from repro.pg import PropertyGraph
from repro.validation import (
    IndexedValidator,
    ParallelValidator,
    make_validator,
    partition_graph,
    validate,
)
from repro.validation.parallel import usable_cores
from repro.workloads import library_graph, load, user_session_graph

SCHEMA = load("library")


def _graph():
    return library_graph(6, 15, num_series=2, num_publishers=2, seed=3)


class TestPartitioning:
    def test_shards_cover_the_graph_exactly_once(self):
        graph = _graph()
        for num_shards in (1, 2, 3, 7):
            shards = partition_graph(graph, num_shards)
            assert len(shards) == num_shards
            nodes = [node for shard in shards for node, _label in shard.nodes]
            edges = [record[0] for shard in shards for record in shard.edges]
            assert sorted(map(str, nodes)) == sorted(map(str, graph.nodes))
            assert sorted(map(str, edges)) == sorted(map(str, graph.edges))

    def test_records_carry_resolved_labels_and_endpoints(self):
        graph = _graph()
        (shard,) = partition_graph(graph, 1)
        for node, label in shard.nodes:
            assert graph.label(node) == label
        for edge, source, target, label, source_label, target_label in shard.edges:
            assert graph.endpoints(edge) == (source, target)
            assert graph.label(edge) == label
            assert graph.label(source) == source_label
            assert graph.label(target) == target_label

    def test_no_group_spans_two_shards(self):
        graph = _graph()
        shards = partition_graph(graph, 4)
        seen_source, seen_target = set(), set()
        for shard in shards:
            for source, label, records in shard.source_groups:
                assert (source, label) not in seen_source
                seen_source.add((source, label))
                assert all(r[1] == source and r[3] == label for r in records)
            for target, label, records in shard.target_groups:
                assert (target, label) not in seen_target
                seen_target.add((target, label))
                assert all(r[2] == target and r[3] == label for r in records)

    def test_assignment_is_stable_across_calls(self):
        graph = _graph()
        first = partition_graph(graph, 4)
        second = partition_graph(graph, 4)
        for left, right in zip(first, second):
            assert left.nodes == right.nodes
            assert left.edges == right.edges

    def test_empty_graph(self):
        shards = partition_graph(PropertyGraph(), 3)
        assert all(len(shard) == 0 for shard in shards)


class TestExecutorSelection:
    def test_jobs_one_runs_serial(self):
        validator = ParallelValidator(SCHEMA, jobs=1)
        assert validator.choose_executor(_graph()) == "serial"

    def test_single_core_hosts_stay_serial(self, monkeypatch):
        import repro.validation.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "usable_cores", lambda: 1)
        validator = ParallelValidator(SCHEMA, jobs=4)
        assert validator.choose_executor(_graph()) == "serial"

    def test_small_graphs_use_threads_on_multicore(self, monkeypatch):
        import repro.validation.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "usable_cores", lambda: 8)
        validator = ParallelValidator(SCHEMA, jobs=4)
        small = _graph()
        assert len(small) < ParallelValidator.SMALL_GRAPH_THRESHOLD
        assert validator.choose_executor(small) == "thread"

    def test_large_graphs_use_processes_on_multicore(self, monkeypatch):
        import repro.validation.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "usable_cores", lambda: 8)
        schema = load("user_session_edge_props")
        validator = ParallelValidator(schema, jobs=4)
        large = user_session_graph(1024, sessions_per_user=2, seed=0)
        assert len(large) >= ParallelValidator.SMALL_GRAPH_THRESHOLD
        assert validator.choose_executor(large) == "process"

    def test_explicit_executor_wins(self):
        validator = ParallelValidator(SCHEMA, jobs=4, executor="thread")
        assert validator.choose_executor(_graph()) == "thread"

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ParallelValidator(SCHEMA, executor="fibers")


class TestWorkerCounts:
    def test_jobs_default_to_usable_cores(self):
        assert ParallelValidator(SCHEMA).jobs == usable_cores()

    def test_jobs_clamped_to_at_least_one(self):
        assert ParallelValidator(SCHEMA, jobs=0).jobs == 1
        assert ParallelValidator(SCHEMA, jobs=-3).jobs == 1

    @pytest.mark.parametrize("executor", ("serial", "thread"))
    def test_every_executor_path_agrees(self, executor):
        graph = _graph()
        expected = IndexedValidator(SCHEMA).validate(graph)
        got = ParallelValidator(SCHEMA, jobs=3, executor=executor).validate(graph)
        assert got.keys() == expected.keys()

    def test_process_executor_smoke(self):
        graph = library_graph(3, 5, num_series=1, num_publishers=1, seed=1)
        expected = IndexedValidator(SCHEMA).validate(graph)
        got = ParallelValidator(SCHEMA, jobs=2, executor="process").validate(graph)
        assert got.keys() == expected.keys()

    def test_more_jobs_than_elements(self):
        graph = library_graph(1, 1, seed=0)
        report = ParallelValidator(SCHEMA, jobs=64).validate(graph)
        expected = IndexedValidator(SCHEMA).validate(graph)
        assert report.keys() == expected.keys()

    def test_empty_graph_conforms(self):
        report = ParallelValidator(SCHEMA, jobs=4).validate(PropertyGraph())
        assert report.conforms


class TestFacadeWiring:
    def test_make_validator_routes_parallel(self):
        validator = make_validator(SCHEMA, engine="parallel", jobs=2)
        assert isinstance(validator, ParallelValidator)
        assert validator.jobs == 2

    def test_validate_accepts_engine_and_jobs(self):
        graph = _graph()
        left = validate(SCHEMA, graph, engine="parallel", jobs=2)
        right = validate(SCHEMA, graph, engine="indexed")
        assert left.keys() == right.keys()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown validation engine"):
            make_validator(SCHEMA, engine="quantum")
