"""repro: Property Graph schemas via the GraphQL Schema Definition Language.

A comprehensive reproduction of

    Olaf Hartig and Jan Hidders.
    "Defining Schemas for Property Graphs by using the GraphQL Schema
    Definition Language."  GRADES-NDA 2019.

The package implements the paper end to end, from scratch:

* :mod:`repro.pg` -- the Property Graph model (Definition 2.1);
* :mod:`repro.sdl` -- a GraphQL SDL lexer/parser/printer (June 2018);
* :mod:`repro.schema` -- the formal schema model, type system, subtype
  relation and consistency checks (Section 4);
* :mod:`repro.validation` -- weak/directives/strong satisfaction (Section
  5) with naive and indexed engines;
* :mod:`repro.fo` -- the Theorem-1 first-order encoding, executable;
* :mod:`repro.sat`, :mod:`repro.dl` -- SAT and ALCQI-tableau substrates;
* :mod:`repro.satisfiability` -- Theorems 2 and 3: the CNF reduction, the
  ALCQI translation, and bounded finite-model search (Section 6.2);
* :mod:`repro.lint` -- static analysis: stable diagnostic codes with source
  spans, and polynomial unsatisfiability pre-checks that short-circuit the
  tableau (Example 6.1's class);
* :mod:`repro.api` -- the S3.6 GraphQL-API extension with a query executor;
* :mod:`repro.baselines` -- Angles' schema model, the paper's comparator;
* :mod:`repro.workloads` -- the paper's example corpus and generators.

Quickstart::

    from repro import parse_schema, GraphBuilder, validate

    schema = parse_schema('''
        type User @key(fields: ["id"]) {
          id: ID! @required
          follows: [User] @distinct @noLoops
        }
    ''')
    graph = (
        GraphBuilder()
        .node("alice", "User", id="u1")
        .node("bob", "User", id="u2")
        .edge("alice", "follows", "bob")
        .graph()
    )
    report = validate(schema, graph)
    assert report.conforms
"""

from .errors import (
    ConsistencyError,
    GraphError,
    QueryError,
    ReproError,
    SchemaError,
    SDLSyntaxError,
)
from .lint import Diagnostic, Severity, lint_schema
from .pg import GraphBuilder, PropertyGraph
from .satisfiability import SatisfiabilityChecker
from .schema import GraphQLSchema, TypeRef, parse_schema, print_schema
from .validation import (
    ValidationReport,
    Violation,
    satisfies_directives,
    strongly_satisfies,
    validate,
    weakly_satisfies,
)

__version__ = "1.0.0"

__all__ = [
    "ConsistencyError",
    "Diagnostic",
    "GraphBuilder",
    "GraphError",
    "GraphQLSchema",
    "PropertyGraph",
    "QueryError",
    "ReproError",
    "SDLSyntaxError",
    "SatisfiabilityChecker",
    "SchemaError",
    "Severity",
    "TypeRef",
    "ValidationReport",
    "Violation",
    "__version__",
    "lint_schema",
    "parse_schema",
    "print_schema",
    "satisfies_directives",
    "strongly_satisfies",
    "validate",
    "weakly_satisfies",
]
