"""GraphQL API extension over Property Graphs (the paper's §3.6 outlook)."""

from .executor import GraphQLExecutor, execute_query
from .extend import APISchema, InverseField, extend_to_api_schema
from .query_ast import (
    FieldSelection,
    FragmentDefinition,
    FragmentSpread,
    InlineFragment,
    Operation,
    QueryDocument,
    SelectionSet,
    VariableDefinition,
    VariableRef,
)
from .query_parser import parse_query

__all__ = [
    "APISchema",
    "FieldSelection",
    "FragmentDefinition",
    "FragmentSpread",
    "GraphQLExecutor",
    "InlineFragment",
    "InverseField",
    "Operation",
    "QueryDocument",
    "SelectionSet",
    "VariableDefinition",
    "VariableRef",
    "execute_query",
    "extend_to_api_schema",
    "parse_query",
]
