"""Extending a Property Graph schema into a GraphQL API schema (§3.6).

The paper's schemas deliberately omit root operation types and mention each
edge type only from the source side.  Section 3.6 sketches how a real
GraphQL API over the Property Graph would extend them; this module carries
that sketch out:

* a ``Query`` root type with, per object type ``T``,
  - ``allT: [T]`` listing every ``T`` node, and
  - ``tByK(k: …!): T`` lookup fields, one per single-field scalar ``@key``;
* inverse relationship fields for bidirectional traversal: for every
  relationship declaration ``(S, f)`` with target base ``T``, each object
  type below ``T`` gains ``_incoming_f_from_S: [S]``, so GraphQL queries
  can walk edges against their direction (which Gremlin/Cypher do natively,
  as the paper notes);
* a ``schema { query: Query }`` block, making the result a *complete*
  GraphQL schema in the ordinary sense.

The result carries both the merged SDL text and an extended
:class:`~repro.schema.model.GraphQLSchema` value; parsing the SDL back with
:func:`repro.schema.parse_schema` recovers the original Property Graph
schema, because the builder drops root types and the executor-only inverse
fields are plain relationship fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..schema.model import (
    ArgumentDefinition,
    FieldDefinition,
    FieldKind,
    GraphQLSchema,
    ObjectType,
)
from ..schema.printer import print_schema
from ..schema.typerefs import TypeRef

if TYPE_CHECKING:  # pragma: no cover
    pass


@dataclass(frozen=True)
class InverseField:
    """Resolution metadata for a generated inverse relationship field."""

    field_name: str
    edge_label: str
    source_type: str


@dataclass
class APISchema:
    """A Property Graph schema extended into a GraphQL API schema."""

    base: GraphQLSchema
    extended: GraphQLSchema
    sdl: str
    #: query field name -> ("all", object type) or ("lookup", type, key field)
    query_fields: dict[str, tuple] = field(default_factory=dict)
    #: object type -> generated inverse fields
    inverse_fields: dict[str, list[InverseField]] = field(default_factory=dict)

    def inverse_field(self, type_name: str, field_name: str) -> InverseField | None:
        for inverse in self.inverse_fields.get(type_name, ()):
            if inverse.field_name == field_name:
                return inverse
        return None


def extend_to_api_schema(schema: GraphQLSchema) -> APISchema:
    """Extend *schema* into a complete GraphQL API schema."""
    query_fields: dict[str, tuple] = {}
    inverse_fields: dict[str, list[InverseField]] = {}

    # inverse relationship fields for bidirectional traversal
    extra_fields: dict[str, list[FieldDefinition]] = {
        name: [] for name in schema.object_types
    }
    for source_type, field_name, field_def in schema.field_declarations():
        if not field_def.is_relationship or source_type not in schema.object_types:
            continue  # interface declarations are repeated in implementors
        for target_object in sorted(schema.object_types_below(field_def.type.base)):
            inverse_name = f"_incoming_{field_name}_from_{source_type}"
            existing = inverse_fields.setdefault(target_object, [])
            if any(entry.field_name == inverse_name for entry in existing):
                continue
            existing.append(InverseField(inverse_name, field_name, source_type))
            extra_fields[target_object].append(
                FieldDefinition(
                    name=inverse_name,
                    type=TypeRef.list_of(source_type),
                    kind=FieldKind.RELATIONSHIP,
                    description=f"Inverse of {source_type}.{field_name}",
                )
            )

    # the Query root type
    query_field_defs: list[FieldDefinition] = []
    for type_name in sorted(schema.object_types):
        all_field = f"all{type_name}"
        query_fields[all_field] = ("all", type_name)
        query_field_defs.append(
            FieldDefinition(
                name=all_field,
                type=TypeRef.list_of(type_name),
                kind=FieldKind.RELATIONSHIP,
            )
        )
        for key_fields in schema.object_types[type_name].keys:
            if len(key_fields) != 1:
                continue  # composite keys do not make single-argument lookups
            key_field = key_fields[0]
            ref = schema.type_f(type_name, key_field)
            if ref is None or not schema.is_scalar_type(ref.base):
                continue
            lookup = f"{_lower_first(type_name)}By{_upper_first(key_field)}"
            if lookup in query_fields:
                continue
            query_fields[lookup] = ("lookup", type_name, key_field)
            query_field_defs.append(
                FieldDefinition(
                    name=lookup,
                    type=TypeRef.named(type_name),
                    kind=FieldKind.RELATIONSHIP,
                    arguments=(
                        ArgumentDefinition(
                            name=key_field, type=TypeRef.non_null_of(ref.base)
                        ),
                    ),
                )
            )

    extended_objects = {
        name: ObjectType(
            name=object_type.name,
            fields=object_type.fields + tuple(extra_fields[name]),
            interfaces=object_type.interfaces,
            directives=object_type.directives,
            description=object_type.description,
        )
        for name, object_type in schema.object_types.items()
    }
    extended_objects["Query"] = ObjectType(
        name="Query", fields=tuple(query_field_defs)
    )
    extended = GraphQLSchema(
        object_types=extended_objects,
        interface_types=dict(schema.interface_types),
        union_types=dict(schema.union_types),
        scalars=schema.scalars.copy(),
        directive_definitions=dict(schema.directive_definitions),
    )
    sdl = print_schema(extended) + "\nschema {\n  query: Query\n}\n"

    return APISchema(
        base=schema,
        extended=extended,
        sdl=sdl,
        query_fields=query_fields,
        inverse_fields=inverse_fields,
    )


def _lower_first(text: str) -> str:
    return text[:1].lower() + text[1:]


def _upper_first(text: str) -> str:
    return text[:1].upper() + text[1:]
