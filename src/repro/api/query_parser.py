"""Parser for the executable GraphQL query subset.

Reuses the SDL lexer and low-level parser machinery; grammar (June 2018
spec §2, constant values plus variables):

    Document        := (Operation | FragmentDefinition)+
    Operation       := SelectionSet
                     | "query" Name? VariableDefinitions? SelectionSet
    VariableDefs    := "(" ("$" Name ":" Type DefaultValue?)+ ")"
    FragmentDef     := "fragment" Name "on" Name SelectionSet
    SelectionSet    := "{" Selection+ "}"
    Selection       := Field | InlineFragment | FragmentSpread
    Field           := (Alias ":")? Name Arguments? SelectionSet?
    InlineFragment  := "..." "on" Name SelectionSet
    FragmentSpread  := "..." Name
"""

from __future__ import annotations

from ..errors import SDLSyntaxError
from ..schema.build import value_to_python
from ..sdl import ast as sdl_ast
from ..sdl.lexer import tokenize
from ..sdl.parser import _Parser
from ..sdl.printer import print_type
from ..sdl.tokens import TokenKind
from .query_ast import (
    FieldSelection,
    FragmentDefinition,
    FragmentSpread,
    InlineFragment,
    Operation,
    QueryDocument,
    Selection,
    SelectionSet,
    VariableDefinition,
    VariableRef,
)


def parse_query(source: str) -> QueryDocument:
    """Parse a query document."""
    return _QueryParser(tokenize(source)).parse_query_document()


def _argument_value(node: sdl_ast.ValueNode) -> object:
    """Convert an argument value literal; variables become VariableRef."""
    if isinstance(node, sdl_ast.Variable):
        return VariableRef(node.name)
    if isinstance(node, sdl_ast.ListValue):
        return tuple(_argument_value(item) for item in node.values)
    return value_to_python(node)


class _QueryParser(_Parser):
    def parse_query_document(self) -> QueryDocument:
        operations: list[Operation] = []
        fragments: dict[str, FragmentDefinition] = {}
        while not self.peek(TokenKind.EOF):
            if self.peek_keyword("fragment"):
                fragment = self.parse_fragment_definition()
                if fragment.name in fragments:
                    token = self.current
                    raise SDLSyntaxError(
                        f"duplicate fragment {fragment.name}", token.line, token.column
                    )
                fragments[fragment.name] = fragment
            else:
                operations.append(self.parse_operation())
        if not operations:
            token = self.current
            raise SDLSyntaxError(
                "query document has no operations", token.line, token.column
            )
        return QueryDocument(tuple(operations), fragments)

    def parse_operation(self) -> Operation:
        name: str | None = None
        variables: tuple[VariableDefinition, ...] = ()
        if self.peek_keyword("query"):
            self.advance()
            if self.peek(TokenKind.NAME):
                name = self.parse_name()
            variables = self.parse_variable_definitions()
        elif self.peek_keyword("mutation") or self.peek_keyword("subscription"):
            token = self.current
            raise SDLSyntaxError(
                f"{token.value} operations are not supported (read-only API)",
                token.line,
                token.column,
            )
        return Operation(self.parse_selection_set(), name, "query", variables)

    def parse_variable_definitions(self) -> tuple[VariableDefinition, ...]:
        definitions: list[VariableDefinition] = []
        if self.skip(TokenKind.PAREN_L):
            while not self.skip(TokenKind.PAREN_R):
                self.expect(TokenKind.DOLLAR)
                variable_name = self.parse_name()
                self.expect(TokenKind.COLON)
                type_node = self.parse_type_reference()
                default: object = None
                has_default = False
                if self.skip(TokenKind.EQUALS):
                    default = value_to_python(self.parse_value_literal(const=True))
                    has_default = True
                definitions.append(
                    VariableDefinition(
                        name=variable_name,
                        type_text=print_type(type_node),
                        default=default,
                        has_default=has_default,
                        required=isinstance(type_node, sdl_ast.NonNullTypeNode)
                        and not has_default,
                    )
                )
        return tuple(definitions)

    def parse_fragment_definition(self) -> FragmentDefinition:
        self.expect_keyword("fragment")
        name = self.parse_name()
        if name == "on":
            token = self.current
            raise SDLSyntaxError("fragment cannot be named 'on'", token.line, token.column)
        self.expect_keyword("on")
        type_condition = self.parse_name()
        return FragmentDefinition(name, type_condition, self.parse_selection_set())

    def parse_selection_set(self) -> SelectionSet:
        self.expect(TokenKind.BRACE_L)
        selections: list[Selection] = []
        while not self.skip(TokenKind.BRACE_R):
            selections.append(self.parse_selection())
        if not selections:
            token = self.current
            raise SDLSyntaxError("empty selection set", token.line, token.column)
        return SelectionSet(tuple(selections))

    def parse_selection(self) -> Selection:
        if self.skip(TokenKind.SPREAD):
            if self.peek_keyword("on"):
                self.advance()
                type_condition = self.parse_name()
                return InlineFragment(type_condition, self.parse_selection_set())
            return FragmentSpread(self.parse_name())
        name = self.parse_name()
        alias: str | None = None
        if self.skip(TokenKind.COLON):
            alias, name = name, self.parse_name()
        arguments: list[tuple[str, object]] = []
        if self.skip(TokenKind.PAREN_L):
            while not self.skip(TokenKind.PAREN_R):
                argument_name = self.parse_name()
                self.expect(TokenKind.COLON)
                arguments.append(
                    (argument_name, _argument_value(self.parse_value_literal(const=False)))
                )
        selections: SelectionSet | None = None
        if self.peek(TokenKind.BRACE_L):
            selections = self.parse_selection_set()
        return FieldSelection(name, alias, tuple(arguments), selections)
