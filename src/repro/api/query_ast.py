"""AST for the executable GraphQL subset served by the API extension.

The executor supports the read side of GraphQL: named/anonymous query
operations, nested selection sets, field aliases, field arguments (constant
values only -- no variables) and inline fragments for dispatching on the
concrete type behind a union or interface target.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FieldSelection:
    """``alias: name(arguments) { selections }``"""

    name: str
    alias: str | None = None
    arguments: tuple[tuple[str, object], ...] = ()
    selections: "SelectionSet | None" = None

    @property
    def output_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class InlineFragment:
    """``... on TypeName { selections }``"""

    type_condition: str
    selections: "SelectionSet"


@dataclass(frozen=True)
class FragmentSpread:
    """``...FragmentName``"""

    name: str


@dataclass(frozen=True)
class VariableRef:
    """A ``$name`` placeholder inside argument values."""

    name: str


Selection = FieldSelection | InlineFragment | FragmentSpread


@dataclass(frozen=True)
class SelectionSet:
    selections: tuple[Selection, ...]


@dataclass(frozen=True)
class VariableDefinition:
    """``$name: Type = default`` in an operation header."""

    name: str
    type_text: str
    default: object = None
    has_default: bool = False
    required: bool = False


@dataclass(frozen=True)
class Operation:
    """A query operation (the only kind the executor serves)."""

    selections: SelectionSet
    name: str | None = None
    operation_type: str = "query"
    variables: tuple[VariableDefinition, ...] = ()


@dataclass(frozen=True)
class FragmentDefinition:
    """``fragment Name on Type { selections }``"""

    name: str
    type_condition: str
    selections: SelectionSet


@dataclass(frozen=True)
class QueryDocument:
    operations: tuple[Operation, ...]
    fragments: "dict[str, FragmentDefinition]" = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.fragments is None:
            object.__setattr__(self, "fragments", {})

    def operation(self, name: str | None = None) -> Operation:
        """The named operation, or the only one when *name* is None."""
        if name is None:
            if len(self.operations) != 1:
                raise ValueError(
                    "document has multiple operations; an operation name is required"
                )
            return self.operations[0]
        for operation in self.operations:
            if operation.name == name:
                return operation
        raise ValueError(f"no operation named {name!r}")
