"""The CDC mutation journal: an ordered, versioned JSONL stream of graph
mutations.

A journal is the durable write-ahead form of a living Property Graph: one
JSON object per line, applied in order.  The first line is a *header*
pinning the format and version; every later line is one mutation event::

    {"format": "pgschema-mutation-journal", "version": 1}
    {"op": "add_node", "id": "u1", "label": "User", "properties": {...}}
    {"op": "add_edge", "id": "e1", "source": "s1", "target": "u1",
     "label": "user", "properties": {...}}
    {"op": "set_property", "id": "u1", "name": "login", "value": "alice"}
    {"op": "remove_property", "id": "u1", "name": "login"}
    {"op": "remove_edge", "id": "e1"}
    {"op": "remove_node", "id": "u1"}
    {"op": "set_schema", "sdl": "type User { ... }"}
    {"op": "commit"}

``commit`` lines are batch-commit markers: the CDC consumer
(:mod:`repro.validation.cdc`) applies events transactionally per commit,
emits violation appear/disappear deltas at each marker, and checkpoints
only at marker boundaries -- which is what makes byte-offset resume exact.
``set_schema`` events put schema evolution in the same ordered stream, the
Bonifati-et-al. framing: graph mutations and schema changes are one
history.

Reading is hardened exactly like :mod:`repro.pg.io`: the journal is read
in *binary* so byte offsets are seekable, and every way a line can be
malformed -- invalid UTF-8, truncated JSON, a non-object record, an
unknown ``op``, missing required keys, wrongly-typed ``properties`` --
raises a typed :class:`~repro.errors.GraphLoadError` carrying the source
name and the 1-based line, column and absolute byte offset of the problem.
A resumed read (``start_offset > 0``) continues mid-file from a checkpoint
without re-scanning the prefix.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from types import TracebackType
from typing import IO, Any, Iterator, Mapping, Sequence

from ..errors import GraphLoadError

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "JournalWriter",
    "MutationEvent",
    "MutationJournal",
    "check_journal_record",
]

JOURNAL_FORMAT = "pgschema-mutation-journal"
JOURNAL_VERSION = 1

#: op -> required keys beyond "op".
_EVENT_KEYS: dict[str, tuple[str, ...]] = {
    "add_node": ("id", "label"),
    "remove_node": ("id",),
    "add_edge": ("id", "source", "target", "label"),
    "remove_edge": ("id",),
    "set_property": ("id", "name", "value"),
    "remove_property": ("id", "name"),
    "commit": (),
    "set_schema": ("sdl",),
}

#: ops that may carry a "properties" object.
_PROPERTY_OPS = frozenset({"add_node", "add_edge"})


@dataclass(frozen=True)
class MutationEvent:
    """One decoded, shape-checked journal event.

    Attributes:
        op: The operation kind (a key of the event vocabulary).
        record: The full decoded JSON record (including ``op``).
        seq: 1-based event sequence number within the journal (the header
            line does not count).
        line: 1-based line number in the journal file.
        end_offset: Absolute byte offset just *past* this event's line --
            the exact resume point for a checkpoint taken after it.
    """

    op: str
    record: Mapping[str, Any]
    seq: int
    line: int
    end_offset: int

    @property
    def is_commit(self) -> bool:
        return self.op == "commit"


def check_journal_record(
    record: Any, line: int, source: str | None
) -> dict[str, Any]:
    """Shape-check one decoded journal record; raise with line context."""
    if not isinstance(record, dict):
        raise GraphLoadError(
            f"journal record must be an object, got {type(record).__name__}",
            source=source,
            line=line,
            column=1,
        )
    op = record.get("op")
    if op not in _EVENT_KEYS:
        if "op" in record:
            problem = (
                f'journal record "op" must be one of '
                f"{sorted(_EVENT_KEYS)}, got {op!r}"
            )
        else:
            problem = "journal record is missing required key 'op'"
        raise GraphLoadError(problem, source=source, line=line, column=1)
    for key in _EVENT_KEYS[op]:
        if key not in record:
            raise GraphLoadError(
                f"{op} event is missing required key {key!r}",
                source=source,
                line=line,
                column=1,
            )
    if op in _PROPERTY_OPS:
        properties = record.get("properties")
        if properties is not None and not isinstance(properties, dict):
            raise GraphLoadError(
                f"{op} event properties must be an object, "
                f"got {type(properties).__name__}",
                source=source,
                line=line,
                column=1,
            )
    if op == "set_schema" and not isinstance(record["sdl"], str):
        raise GraphLoadError(
            "set_schema event sdl must be a string, "
            f"got {type(record['sdl']).__name__}",
            source=source,
            line=line,
            column=1,
        )
    return record


def _check_header(record: dict[str, Any], line: int, source: str | None) -> None:
    declared = record.get("format")
    if declared != JOURNAL_FORMAT:
        raise GraphLoadError(
            f"journal header format must be {JOURNAL_FORMAT!r}, got {declared!r}",
            source=source,
            line=line,
            column=1,
        )
    version = record.get("version")
    if not isinstance(version, int) or version < 1:
        raise GraphLoadError(
            f"journal header version must be a positive integer, got {version!r}",
            source=source,
            line=line,
            column=1,
        )
    if version > JOURNAL_VERSION:
        raise GraphLoadError(
            f"journal version {version} is newer than the supported "
            f"version {JOURNAL_VERSION}",
            source=source,
            line=line,
            column=1,
        )


class MutationJournal:
    """A mutation journal on disk: byte-exact reads, append-only writes."""

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = os.fspath(path)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def read(
        self,
        start_offset: int = 0,
        start_seq: int = 0,
        start_line: int = 0,
    ) -> Iterator[MutationEvent]:
        """Yield shape-checked events, resuming from a byte offset.

        ``start_offset == 0`` reads from the beginning and *requires* the
        version header as the first non-blank line.  A positive offset must
        be an event boundary previously reported in
        :attr:`MutationEvent.end_offset` (checkpoints store exactly that);
        ``start_seq``/``start_line`` restore the numbering so later error
        spans and checkpoints stay absolute.
        """
        with open(self.path, "rb") as fp:
            if start_offset:
                fp.seek(start_offset)
            offset = start_offset
            line_number = start_line
            seq = start_seq
            saw_header = start_offset > 0
            for raw in fp:
                line_number += 1
                offset += len(raw)
                try:
                    text = raw.decode("utf-8")
                except UnicodeDecodeError as bad:
                    raise GraphLoadError(
                        f"journal is not valid text: {bad.reason}",
                        source=self.path,
                        line=line_number,
                        column=1,
                        offset=offset - len(raw) + bad.start,
                    ) from None
                if not text.strip():
                    continue
                try:
                    record = json.loads(text)
                except json.JSONDecodeError as bad:
                    raise GraphLoadError(
                        f"invalid JSON: {bad.msg}",
                        source=self.path,
                        line=line_number,
                        column=bad.colno,
                        offset=offset - len(raw) + bad.pos,
                    ) from None
                except RecursionError:
                    raise GraphLoadError(
                        "journal record is nested too deeply",
                        source=self.path,
                        line=line_number,
                        column=1,
                        offset=offset - len(raw),
                    ) from None
                if not saw_header:
                    if not isinstance(record, dict):
                        raise GraphLoadError(
                            "journal must start with a header object",
                            source=self.path,
                            line=line_number,
                            column=1,
                        )
                    _check_header(record, line_number, self.path)
                    saw_header = True
                    continue
                checked = check_journal_record(record, line_number, self.path)
                seq += 1
                yield MutationEvent(
                    op=str(checked["op"]),
                    record=checked,
                    seq=seq,
                    line=line_number,
                    end_offset=offset,
                )

    def size(self) -> int:
        """Current journal size in bytes (for lag gauges)."""
        return os.path.getsize(self.path)

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #

    def writer(self, append: bool = False) -> "JournalWriter":
        """Open a :class:`JournalWriter`; a fresh file gets the header."""
        return JournalWriter(self.path, append=append)

    def write_events(self, events: Sequence[Mapping[str, Any]]) -> int:
        """Write a whole event stream (header included); return the count."""
        with self.writer() as writer:
            for event in events:
                writer.event(event)
            return writer.events_written


class JournalWriter:
    """Append shape-checked events to a journal file.

    Usable as a context manager; :meth:`sync` flushes and fsyncs so a
    producer can make the stream durable at commit boundaries.
    """

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        self.events_written = 0
        exists = append and os.path.exists(path) and os.path.getsize(path) > 0
        self._fp: IO[bytes] = open(path, "ab" if exists else "wb")
        if not exists:
            self._write_record(
                {"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION}
            )

    def _write_record(self, record: Mapping[str, Any]) -> None:
        payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
        self._fp.write(payload.encode("utf-8") + b"\n")

    def event(self, record: Mapping[str, Any]) -> None:
        """Append one event (shape-checked before it hits the disk)."""
        checked = check_journal_record(dict(record), 0, self.path)
        encoded = {
            key: self._encode_value(value) for key, value in checked.items()
        }
        self._write_record(encoded)
        self.events_written += 1

    @staticmethod
    def _encode_value(value: Any) -> Any:
        if isinstance(value, tuple):
            return list(value)
        if isinstance(value, dict):
            return {
                key: list(item) if isinstance(item, tuple) else item
                for key, item in value.items()
            }
        return value

    def commit(self) -> None:
        """Append a batch-commit marker."""
        self.event({"op": "commit"})

    def sync(self) -> None:
        """Flush and fsync (durability at a commit boundary)."""
        self._fp.flush()
        os.fsync(self._fp.fileno())

    def close(self) -> None:
        if not self._fp.closed:
            self._fp.flush()
            self._fp.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
