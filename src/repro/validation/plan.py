"""Compiled validation plans: schema analysis done once, reused everywhere.

Validating a graph needs a fixed amount of *schema analysis* -- the seven
constraint-site tables of :mod:`repro.validation.sites`, the label closures
``labels_below`` used by every DS rule, and per-(label, field) lookups that
the hot loops would otherwise re-derive per element.  A
:class:`ValidationPlan` performs this analysis exactly once per schema and
exposes it as flat dictionaries:

* the seven site tables (``distinct_sites`` ... ``key_sites``);
* memoized label closures (:meth:`ValidationPlan.labels_below`) and the
  derived subtype test :meth:`ValidationPlan.is_below`;
* per-node-label dispatch records (:class:`NodeRules`) fusing WS1, SS1, SS2,
  DS4, DS5, DS6 and the DS7 signature fields for one label;
* per-(source label, edge label) dispatch records (:class:`EdgeRules`)
  fusing WS2, WS3, WS4, SS3, SS4, DS1, DS2 and EP1 for one edge shape.

Plans are immutable once built (the record caches are append-only memo
tables) and are shared by :class:`~repro.validation.indexed.IndexedValidator`,
:class:`~repro.validation.incremental.IncrementalValidator` and
:class:`~repro.validation.parallel.ParallelValidator`.

:func:`compile_plan` fronts an LRU cache keyed by schema identity, so the
``validate()`` facade stops repaying schema-analysis cost on every call;
:func:`plan_cache_info` exposes hit/miss/compile counters for tests and
benchmarks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .. import obs
from . import sites

if TYPE_CHECKING:  # pragma: no cover
    from ..schema.model import GraphQLSchema
    from ..schema.typerefs import TypeRef

ValueChecker = Callable[[object], bool]


@dataclass(frozen=True)
class NodeRules:
    """Everything the per-node rules need for one node label."""

    #: label ∈ OT (SS1 fires on every node otherwise).
    known: bool
    #: property name -> (declared TypeRef | None, values_W checker | None).
    #: A missing name means the property is not a field at all (SS2); a None
    #: checker means the field is a relationship (SS2's second clause).
    properties: dict[str, tuple["TypeRef", ValueChecker | None]]
    #: DS5 obligations: (site location, field name, field type is a list).
    required_attrs: tuple[tuple[str, str, bool], ...]
    #: DS6 obligations: (site location, field name).
    required_edges: tuple[tuple[str, str], ...]
    #: DS4 obligations: (site location, field name, allowed source labels).
    incoming_required: tuple[tuple[str, str, frozenset[str]], ...]
    #: DS7 memberships: (key-site index, scalar key fields of the site).
    key_memberships: tuple[tuple[int, tuple[str, ...]], ...]


@dataclass(frozen=True)
class EdgeRules:
    """Everything the per-edge rules need for one (source label, edge label)."""

    #: type_F(source label, edge label), or None when undefined.
    ref: "TypeRef | None"
    #: SS4 verdict for this shape: None (fine), "missing" or "attribute".
    ss4: str | None
    #: WS3: allowed target labels (labels_below of the base type); None when
    #: the field is undefined (WS3 does not apply).
    ws3_targets: frozenset[str] | None
    #: SS3: the declared argument names.
    args: frozenset[str]
    #: WS2: argument name -> (declared TypeRef, values_W checker).
    arg_checkers: dict[str, tuple["TypeRef", ValueChecker]]
    #: DS2 site locations that make a loop illegal for this shape.
    no_loops: tuple[str, ...]
    #: WS4 applies (field defined with a non-list type).
    ws4: bool
    #: DS1 site locations with source label below the site type.
    distinct: tuple[str, ...]
    #: EP1: non-null, default-less argument names (mandatory edge properties).
    mandatory_args: tuple[str, ...]


class ValidationPlan:
    """The immutable compiled form of one schema's validation constraints."""

    __slots__ = (
        "schema",
        "distinct_sites",
        "no_loops_sites",
        "unique_ft_sites",
        "required_ft_sites",
        "required_attr_sites",
        "required_edge_sites",
        "key_sites",
        "key_scalar_fields",
        "unique_ft_by_field",
        "_distinct_by_field",
        "_no_loops_by_field",
        "_labels_below",
        "_node_rules",
        "_edge_rules",
        "__weakref__",
    )

    def __init__(self, schema: "GraphQLSchema") -> None:
        self.schema = schema
        # the seven site tables, computed once per plan
        self.distinct_sites = sites.distinct_sites(schema)
        self.no_loops_sites = sites.no_loops_sites(schema)
        self.unique_ft_sites = sites.unique_for_target_sites(schema)
        self.required_ft_sites = sites.required_for_target_sites(schema)
        self.required_attr_sites = sites.required_attribute_sites(schema)
        self.required_edge_sites = sites.required_edge_sites(schema)
        self.key_sites = sites.key_sites(schema)
        # memo tables (append-only; lazily filled per label encountered)
        self._labels_below: dict[str, frozenset[str]] = {}
        self._node_rules: dict[str, NodeRules] = {}
        self._edge_rules: dict[tuple[str, str], EdgeRules] = {}
        # DS7: the scalar-typed key fields per site, in site order
        self.key_scalar_fields: tuple[tuple[str, ...], ...] = tuple(
            tuple(
                field_name
                for field_name in site.fields
                if (ref := schema.type_f(site.type_name, field_name)) is not None
                and schema.is_scalar_type(ref.base)
            )
            for site in self.key_sites
        )
        # DS3: field name -> ((site location, allowed source labels), ...)
        by_field: dict[str, list[tuple[str, frozenset[str]]]] = {}
        for site in self.unique_ft_sites:
            by_field.setdefault(site.field_name, []).append(
                (site.location, self.labels_below(site.type_name))
            )
        self.unique_ft_by_field: dict[str, tuple[tuple[str, frozenset[str]], ...]] = {
            name: tuple(entries) for name, entries in by_field.items()
        }
        self._distinct_by_field: dict[str, list] = {}
        for site in self.distinct_sites:
            self._distinct_by_field.setdefault(site.field_name, []).append(site)
        self._no_loops_by_field: dict[str, list] = {}
        for site in self.no_loops_sites:
            self._no_loops_by_field.setdefault(site.field_name, []).append(site)

    # ------------------------------------------------------------------ #
    # label closures and subtyping
    # ------------------------------------------------------------------ #

    def labels_below(self, type_name: str) -> frozenset[str]:
        """Memoized ``labels_below`` (the labels l with l ⊑_S type_name)."""
        found = self._labels_below.get(type_name)
        if found is None:
            found = sites.labels_below(self.schema, type_name)
            self._labels_below[type_name] = found
        return found

    def is_below(self, label: str, type_name: str) -> bool:
        """``label ⊑_S type_name`` for named types, via the cached closure."""
        return label in self.labels_below(type_name)

    # ------------------------------------------------------------------ #
    # compiled per-label dispatch records
    # ------------------------------------------------------------------ #

    def node_rules(self, label: str) -> NodeRules:
        """The compiled node record for one label (built on first use)."""
        found = self._node_rules.get(label)
        if found is None:
            found = self._build_node_rules(label)
            self._node_rules[label] = found
        return found

    def edge_rules(self, source_label: str, edge_label: str) -> EdgeRules:
        """The compiled edge record for one (source label, edge label)."""
        key = (source_label, edge_label)
        found = self._edge_rules.get(key)
        if found is None:
            found = self._build_edge_rules(source_label, edge_label)
            self._edge_rules[key] = found
        return found

    def _build_node_rules(self, label: str) -> NodeRules:
        schema = self.schema
        properties: dict[str, tuple["TypeRef", ValueChecker | None]] = {}
        if schema.is_composite_type(label):
            for field_def in schema.composite(label).fields:
                checker = (
                    schema.scalars.checker_w(field_def.type)
                    if schema.is_scalar_type(field_def.type.base)
                    else None
                )
                properties[field_def.name] = (field_def.type, checker)
        return NodeRules(
            known=label in schema.object_types,
            properties=properties,
            required_attrs=tuple(
                (site.location, site.field_name, site.field.type.is_list)
                for site in self.required_attr_sites
                if label in self.labels_below(site.type_name)
            ),
            required_edges=tuple(
                (site.location, site.field_name)
                for site in self.required_edge_sites
                if label in self.labels_below(site.type_name)
            ),
            incoming_required=tuple(
                (site.location, site.field_name, self.labels_below(site.type_name))
                for site in self.required_ft_sites
                if label in self.labels_below(site.field.type.base)
            ),
            key_memberships=tuple(
                (index, self.key_scalar_fields[index])
                for index, site in enumerate(self.key_sites)
                if label in self.labels_below(site.type_name)
            ),
        )

    def _build_edge_rules(self, source_label: str, edge_label: str) -> EdgeRules:
        schema = self.schema
        field_def = schema.field(source_label, edge_label)
        if field_def is None:
            ref = None
            ss4: str | None = "missing"
            ws3_targets = None
        else:
            ref = field_def.type
            ss4 = "attribute" if schema.is_scalar_type(ref.base) else None
            ws3_targets = self.labels_below(ref.base)
        arg_checkers: dict[str, tuple["TypeRef", ValueChecker]] = {}
        if field_def is not None:
            for argument in field_def.arguments:
                if schema.is_scalar_type(argument.type.base):
                    arg_checkers[argument.name] = (
                        argument.type,
                        schema.scalars.checker_w(argument.type),
                    )
        return EdgeRules(
            ref=ref,
            ss4=ss4,
            ws3_targets=ws3_targets,
            args=(
                frozenset(argument.name for argument in field_def.arguments)
                if field_def is not None
                else frozenset()
            ),
            arg_checkers=arg_checkers,
            no_loops=tuple(
                site.location
                for site in self._no_loops_by_field.get(edge_label, ())
                if source_label in self.labels_below(site.type_name)
            ),
            ws4=ref is not None and not ref.is_list,
            distinct=tuple(
                site.location
                for site in self._distinct_by_field.get(edge_label, ())
                if source_label in self.labels_below(site.type_name)
            ),
            mandatory_args=(
                tuple(
                    argument.name
                    for argument in field_def.arguments
                    if argument.type.non_null and not argument.has_default
                )
                if field_def is not None
                else ()
            ),
        )


# --------------------------------------------------------------------------- #
# the plan cache
# --------------------------------------------------------------------------- #

#: Maximum number of schemas with live cached plans.
PLAN_CACHE_MAXSIZE = 32

_cache_lock = threading.Lock()
_cache: "OrderedDict[int, tuple[GraphQLSchema, ValidationPlan]]" = OrderedDict()
_hits = 0
_misses = 0
_evictions = 0


def compile_plan(schema: "GraphQLSchema") -> ValidationPlan:
    """The compiled plan for *schema*, from the LRU cache when possible.

    The cache is keyed by schema *identity* (schemas are treated as immutable
    after assembly) and holds strong references, so id recycling cannot alias
    two schemas to one entry; as with ``functools.lru_cache``, the
    least-recently-used schemas and plans are released once more than
    ``PLAN_CACHE_MAXSIZE`` schemas have been compiled.
    """
    global _hits, _misses, _evictions
    key = id(schema)
    with _cache_lock:
        entry = _cache.get(key)
        if entry is not None:
            _cache.move_to_end(key)
            _hits += 1
            obs.count("validation.plan_cache.hits")
            return entry[1]
        _misses += 1
    obs.count("validation.plan_cache.misses")
    with obs.span("validation.plan.compile"):
        plan = ValidationPlan(schema)
    with _cache_lock:
        # two threads that both missed may both compile; the second write
        # wins and the loser's plan is discarded -- equal by construction,
        # so callers never observe the race, only a redundant compile
        _cache[key] = (schema, plan)
        _cache.move_to_end(key)
        while len(_cache) > PLAN_CACHE_MAXSIZE:
            _cache.popitem(last=False)
            _evictions += 1
            obs.count("validation.plan_cache.evictions")
    return plan


def plan_cache_info() -> dict[str, int]:
    """Cache statistics: ``hits``, ``misses`` (== compilations), ``size``,
    ``maxsize``, ``evictions`` (reported by ``pgschema validate --profile``,
    ``pgschema stats --json`` and the service ``/v1/stats`` endpoint)."""
    with _cache_lock:
        return {
            "hits": _hits,
            "misses": _misses,
            "size": len(_cache),
            "maxsize": PLAN_CACHE_MAXSIZE,
            "evictions": _evictions,
        }


def plan_cache_clear() -> None:
    """Drop every cached plan and reset the statistics."""
    global _hits, _misses, _evictions
    with _cache_lock:
        dropped = list(_cache.values())
        _cache.clear()
        _hits = 0
        _misses = 0
        _evictions = 0
    del dropped  # release plans outside the lock (reapers may fire)
