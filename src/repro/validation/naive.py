"""The naive validation engine: a direct transcription of Section 5.

Every rule is implemented with exactly the quantifier structure of its
definition -- pairwise rules loop over pairs of edges or nodes, the
per-element rules loop over nodes/edges and re-derive everything from
scratch.  This is the "straightforward implementation of the first-order
logical formulas" whose cost Theorem 1's discussion bounds at O(n²) data
complexity, and it serves as the baseline in experiment E1.

For production use prefer :class:`repro.validation.indexed.IndexedValidator`,
which finds exactly the same violations (the differential tests enforce
this) in near-linear time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .. import obs
from ..errors import BudgetExhaustedError
from ..pg.values import values_equal
from ..schema.subtype import is_named_subtype
from . import sites
from .violations import (
    ValidationReport,
    Violation,
    canonical_pair,
    record_rule_checks,
    rules_for_mode,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..pg.model import PropertyGraph
    from ..resilience import Budget
    from ..schema.model import GraphQLSchema

_ON_BUDGET = ("unknown", "error")


class NaiveValidator:
    """Quantifier-faithful validator (the Theorem-1 baseline algorithm)."""

    def __init__(
        self,
        schema: "GraphQLSchema",
        budget: "Budget | None" = None,
        on_budget: str = "unknown",
    ) -> None:
        if on_budget not in _ON_BUDGET:
            raise ValueError(
                f"unknown on_budget policy {on_budget!r}; expected one of {_ON_BUDGET}"
            )
        self.schema = schema
        self.budget = budget
        self.on_budget = on_budget

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def validate(
        self,
        graph: "PropertyGraph",
        mode: str = "strong",
        budget: "Budget | None" = None,
    ) -> ValidationReport:
        """Check *graph* for weak / directives / strong satisfaction.

        The quadratic passes make this the engine most in need of a
        ``budget``: the deadline is read between rule passes and exhaustion
        yields a partial report unless ``on_budget="error"``.
        """
        rules = rules_for_mode(mode)
        if budget is None and self.budget is not None:
            budget = self.budget.renew()
        report = ValidationReport(mode=mode, rules_checked=rules)
        checkers = {
            "WS1": self._ws1,
            "WS2": self._ws2,
            "WS3": self._ws3,
            "WS4": self._ws4,
            "DS1": self._ds1,
            "DS2": self._ds2,
            "DS3": self._ds3,
            "DS4": self._ds4,
            "DS5": self._ds5,
            "DS6": self._ds6,
            "DS7": self._ds7,
            "SS1": self._ss1,
            "SS2": self._ss2,
            "SS3": self._ss3,
            "SS4": self._ss4,
            "EP1": self._ep1,
        }
        span = obs.span(
            "validation.run", engine="naive", mode=mode, elements=len(graph)
        )
        with span:
            try:
                if budget is not None:
                    budget.charge_nodes(len(graph), site="validation.naive")
                for rule in rules:
                    if budget is not None:
                        budget.check_deadline(site="validation.naive")
                    report.extend(checkers[rule](graph))
            except BudgetExhaustedError as stop:
                if self.on_budget == "error":
                    raise
                report.complete = False
                report.interruption = stop.reason
            span.set(violations=len(report.violations), complete=report.complete)
        observation = obs.active()
        if observation is not None and observation.registry is not None:
            observation.registry.count("validation.runs")
            record_rule_checks(
                observation.registry, rules, graph.num_nodes, graph.num_edges
            )
        return report

    # ------------------------------------------------------------------ #
    # weak satisfaction (Definition 5.1)
    # ------------------------------------------------------------------ #

    def _ws1(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        for element, name, value in graph.property_items():
            if not graph.is_node(element):
                continue
            ref = schema.type_f(graph.label(element), name)
            if ref is None or not schema.is_scalar_type(ref.base):
                continue
            if not schema.scalars.in_values_w(value, ref):
                yield Violation(
                    "WS1",
                    f"{graph.label(element)}.{name}",
                    (element,),
                    f"value {value!r} is not in values_W({ref})",
                )

    def _ws2(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        for element, name, value in graph.property_items():
            if not graph.is_edge(element):
                continue
            source, _target = graph.endpoints(element)
            type_name, field_name = graph.label(source), graph.label(element)
            ref = schema.type_af(type_name, field_name, name)
            if ref is None:
                continue
            if not schema.scalars.in_values_w(value, ref):
                yield Violation(
                    "WS2",
                    f"{type_name}.{field_name}({name})",
                    (element,),
                    f"value {value!r} is not in values_W({ref})",
                )

    def _ws3(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        for edge in graph.edges:
            source, target = graph.endpoints(edge)
            ref = schema.type_f(graph.label(source), graph.label(edge))
            if ref is None:
                continue
            if not is_named_subtype(schema, graph.label(target), ref.base):
                yield Violation(
                    "WS3",
                    f"{graph.label(source)}.{graph.label(edge)}",
                    (edge,),
                    f"target label {graph.label(target)} is not a subtype of {ref.base}",
                )

    def _ws4(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        edges = list(graph.edges)
        for e1 in edges:
            for e2 in edges:
                if e1 is e2 or str(e1) > str(e2):
                    continue
                s1, _ = graph.endpoints(e1)
                s2, _ = graph.endpoints(e2)
                if s1 != s2 or graph.label(e1) != graph.label(e2):
                    continue
                ref = schema.type_f(graph.label(s1), graph.label(e1))
                if ref is None or ref.is_list:
                    continue
                yield Violation(
                    "WS4",
                    f"{graph.label(s1)}.{graph.label(e1)}",
                    canonical_pair(e1, e2),
                    f"two parallel edges for non-list field type {ref}",
                )

    # ------------------------------------------------------------------ #
    # directives satisfaction (Definition 5.2)
    # ------------------------------------------------------------------ #

    def _ds1(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        edges = list(graph.edges)
        for site in sites.distinct_sites(schema):
            for e1 in edges:
                for e2 in edges:
                    if e1 is e2 or str(e1) > str(e2):
                        continue
                    if graph.label(e1) != site.field_name:
                        continue
                    if graph.label(e2) != site.field_name:
                        continue
                    if graph.endpoints(e1) != graph.endpoints(e2):
                        continue
                    source = graph.endpoints(e1)[0]
                    if not is_named_subtype(schema, graph.label(source), site.type_name):
                        continue
                    yield Violation(
                        "DS1",
                        site.location,
                        canonical_pair(e1, e2),
                        "two @distinct edges share both endpoints",
                    )

    def _ds2(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        for site in sites.no_loops_sites(schema):
            for edge in graph.edges:
                if graph.label(edge) != site.field_name:
                    continue
                source, target = graph.endpoints(edge)
                if source != target:
                    continue
                if not is_named_subtype(schema, graph.label(source), site.type_name):
                    continue
                yield Violation(
                    "DS2", site.location, (edge,), "@noLoops edge is a self-loop"
                )

    def _ds3(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        edges = list(graph.edges)
        for site in sites.unique_for_target_sites(schema):
            for e1 in edges:
                for e2 in edges:
                    if e1 is e2 or str(e1) > str(e2):
                        continue
                    if graph.label(e1) != site.field_name:
                        continue
                    if graph.label(e2) != site.field_name:
                        continue
                    if graph.endpoints(e1)[1] != graph.endpoints(e2)[1]:
                        continue
                    if not is_named_subtype(
                        schema, graph.label(graph.endpoints(e1)[0]), site.type_name
                    ):
                        continue
                    if not is_named_subtype(
                        schema, graph.label(graph.endpoints(e2)[0]), site.type_name
                    ):
                        continue
                    yield Violation(
                        "DS3",
                        site.location,
                        canonical_pair(e1, e2),
                        "target has two incoming @uniqueForTarget edges",
                    )

    def _ds4(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        for site in sites.required_for_target_sites(schema):
            target_base = site.field.type.base
            for node in graph.nodes:
                if not is_named_subtype(schema, graph.label(node), target_base):
                    continue
                has_incoming = any(
                    graph.label(edge) == site.field_name
                    and is_named_subtype(
                        schema, graph.label(graph.endpoints(edge)[0]), site.type_name
                    )
                    for edge in graph.edges
                    if graph.endpoints(edge)[1] == node
                )
                if not has_incoming:
                    yield Violation(
                        "DS4",
                        site.location,
                        (node,),
                        f"node of type {graph.label(node)} lacks a required "
                        f"incoming {site.field_name} edge",
                    )

    def _ds5(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        for site in sites.required_attribute_sites(schema):
            for node in graph.nodes:
                if not is_named_subtype(schema, graph.label(node), site.type_name):
                    continue
                if not graph.has_property(node, site.field_name):
                    yield Violation(
                        "DS5",
                        site.location,
                        (node,),
                        f"required property {site.field_name} is absent",
                    )
                elif site.field.type.is_list and graph.property_value(
                    node, site.field_name
                ) == ():
                    yield Violation(
                        "DS5",
                        site.location,
                        (node,),
                        f"required list property {site.field_name} is empty",
                    )

    def _ds6(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        for site in sites.required_edge_sites(schema):
            for node in graph.nodes:
                if not is_named_subtype(schema, graph.label(node), site.type_name):
                    continue
                has_outgoing = any(
                    graph.label(edge) == site.field_name
                    for edge in graph.edges
                    if graph.endpoints(edge)[0] == node
                )
                if not has_outgoing:
                    yield Violation(
                        "DS6",
                        site.location,
                        (node,),
                        f"required outgoing {site.field_name} edge is absent",
                    )

    def _ds7(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        nodes = list(graph.nodes)
        for site in sites.key_sites(schema):
            scalar_fields = [
                field_name
                for field_name in site.fields
                if (ref := schema.type_f(site.type_name, field_name)) is not None
                and schema.is_scalar_type(ref.base)
            ]
            for v1 in nodes:
                for v2 in nodes:
                    if v1 is v2 or str(v1) > str(v2):
                        continue
                    if not is_named_subtype(schema, graph.label(v1), site.type_name):
                        continue
                    if not is_named_subtype(schema, graph.label(v2), site.type_name):
                        continue
                    if all(
                        self._key_fields_agree(graph, v1, v2, field_name)
                        for field_name in scalar_fields
                    ):
                        yield Violation(
                            "DS7",
                            site.location,
                            canonical_pair(v1, v2),
                            "two distinct nodes agree on all key fields",
                        )

    @staticmethod
    def _key_fields_agree(
        graph: "PropertyGraph", v1: object, v2: object, field_name: str
    ) -> bool:
        """DS7's per-field condition: both absent, or both present and equal."""
        has1, has2 = graph.has_property(v1, field_name), graph.has_property(v2, field_name)
        if not has1 and not has2:
            return True
        if has1 and has2:
            return values_equal(
                graph.property_value(v1, field_name),  # type: ignore[arg-type]
                graph.property_value(v2, field_name),  # type: ignore[arg-type]
            )
        return False

    # ------------------------------------------------------------------ #
    # strong satisfaction (Definition 5.3)
    # ------------------------------------------------------------------ #

    def _ss1(self, graph: "PropertyGraph") -> Iterator[Violation]:
        for node in graph.nodes:
            if graph.label(node) not in self.schema.object_types:
                yield Violation(
                    "SS1",
                    "",
                    (node,),
                    f"label {graph.label(node)} is not an object type",
                )

    def _ss2(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        for element, name, _value in graph.property_items():
            if not graph.is_node(element):
                continue
            ref = schema.type_f(graph.label(element), name)
            if ref is None:
                yield Violation(
                    "SS2",
                    f"{graph.label(element)}.{name}",
                    (element,),
                    f"property {name} is not a field of {graph.label(element)}",
                )
            elif not schema.is_scalar_type(ref.base):
                yield Violation(
                    "SS2",
                    f"{graph.label(element)}.{name}",
                    (element,),
                    f"property {name} corresponds to a relationship field",
                )

    def _ss3(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        for element, name, _value in graph.property_items():
            if not graph.is_edge(element):
                continue
            source, _target = graph.endpoints(element)
            type_name, field_name = graph.label(source), graph.label(element)
            if name not in schema.args(type_name, field_name):
                yield Violation(
                    "SS3",
                    f"{type_name}.{field_name}({name})",
                    (element,),
                    f"edge property {name} is not a declared argument",
                )

    def _ss4(self, graph: "PropertyGraph") -> Iterator[Violation]:
        schema = self.schema
        for edge in graph.edges:
            source, _target = graph.endpoints(edge)
            type_name, field_name = graph.label(source), graph.label(edge)
            ref = schema.type_f(type_name, field_name)
            if ref is None:
                yield Violation(
                    "SS4",
                    f"{type_name}.{field_name}",
                    (edge,),
                    f"edge label {field_name} is not a field of {type_name}",
                )
            elif schema.is_scalar_type(ref.base):
                yield Violation(
                    "SS4",
                    f"{type_name}.{field_name}",
                    (edge,),
                    f"edge label {field_name} corresponds to an attribute field",
                )

    # ------------------------------------------------------------------ #
    # extension rules (not part of Definitions 5.1-5.3)
    # ------------------------------------------------------------------ #

    def _ep1(self, graph: "PropertyGraph") -> Iterator[Violation]:
        """§3.5 in prose: a non-null, default-less field argument makes the
        corresponding edge property mandatory."""
        schema = self.schema
        for edge in graph.edges:
            source, _target = graph.endpoints(edge)
            type_name, field_name = graph.label(source), graph.label(edge)
            field_def = schema.field(type_name, field_name)
            if field_def is None:
                continue
            for argument in field_def.arguments:
                if not argument.type.non_null or argument.has_default:
                    continue
                if not graph.has_property(edge, argument.name):
                    yield Violation(
                        "EP1",
                        f"{type_name}.{field_name}({argument.name})",
                        (edge,),
                        f"mandatory edge property {argument.name} is absent",
                    )
