"""Incremental re-validation after graph mutations (an extension feature).

:class:`IncrementalValidator` owns a Property Graph, keeps it strongly
validated, and updates the violation set after each mutation by re-checking
only the affected *scopes* instead of the whole graph:

* per-element scopes -- WS1/SS1/SS2/DS4/DS5/DS6 for one node, and
  WS2/WS3/SS3/SS4/DS2 for one edge;
* edge-group scopes -- WS4/DS1 for one (source, label) group and DS3 for one
  (target, label) group;
* key scopes -- DS7 for one (key site, key-value signature) group, with the
  signature index maintained incrementally.

After any sequence of mutations, ``report()`` equals a from-scratch strong
validation of the current graph (the differential tests enforce this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from .. import obs
from ..pg.values import value_signature
from .indexed import IndexedValidator, _ordered_pairs
from .plan import ValidationPlan
from .sites import KeySite, labels_below
from .violations import ValidationReport, Violation

if TYPE_CHECKING:  # pragma: no cover
    from ..pg.model import ElementId, PropertyGraph
    from ..resilience import Budget
    from ..schema.model import GraphQLSchema

_MISSING = ("<missing>",)

ScopeKey = tuple


class IncrementalValidator:
    """Keeps a graph's strong-validation report current across mutations."""

    def __init__(
        self,
        schema: "GraphQLSchema",
        graph: "PropertyGraph",
        plan: ValidationPlan | None = None,
        budget: "Budget | None" = None,
    ) -> None:
        """``budget`` bounds the initial full rebuild (the only unbounded
        sweep this engine performs).  Exhaustion *raises*
        :class:`~repro.errors.BudgetExhaustedError` rather than returning a
        partial validator: a half-built violation cache would silently
        misreport every later incremental answer."""
        self.schema = schema
        self.graph = graph
        self.budget = budget
        self._engine = IndexedValidator(schema, plan=plan)
        # schema analysis is shared with the other engines via the plan
        self.plan = self._engine.plan
        self._key_sites = self.plan.key_sites
        # scope key -> violations found in that scope
        self._violations: dict[ScopeKey, list[Violation]] = {}
        # key-site index -> signature -> set of nodes
        self._signatures: list[dict[tuple, set["ElementId"]]] = [
            {} for _ in self._key_sites
        ]
        self._node_signatures: dict["ElementId", list[tuple | None]] = {}
        self._full_rebuild()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def report(self) -> ValidationReport:
        """The current strong-validation report."""
        report = ValidationReport(mode="strong")
        for violations in self._violations.values():
            report.extend(violations)
        return report

    @property
    def conforms(self) -> bool:
        return all(not violations for violations in self._violations.values())

    def add_node(
        self,
        node_id: "ElementId",
        label: str,
        properties: Mapping[str, object] | None = None,
    ) -> None:
        self.graph.add_node(node_id, label, properties)
        self._index_node_signatures(node_id)
        self._recheck_node(node_id)
        self._recheck_key_scopes_of(node_id)

    def remove_node(self, node_id: "ElementId") -> None:
        touched_edges = set(self.graph.out_edges(node_id)) | set(
            self.graph.in_edges(node_id)
        )
        neighbour_scopes: set[ScopeKey] = set()
        affected_nodes: set["ElementId"] = set()
        for edge in touched_edges:
            source, target = self.graph.endpoints(edge)
            label = self.graph.label(edge)
            neighbour_scopes.add(("out", source, label))
            neighbour_scopes.add(("in", target, label))
            affected_nodes.update((source, target))
            self._violations.pop(("edge", edge), None)
        self._unindex_node_signatures(node_id)
        self.graph.remove_node(node_id)
        self._violations.pop(("node", node_id), None)
        affected_nodes.discard(node_id)
        for scope in neighbour_scopes:
            if scope[1] != node_id:
                self._recheck_edge_group(scope)
            else:
                self._violations.pop(scope, None)
        for node in affected_nodes:
            self._recheck_node(node)
        self._recheck_key_scopes_of(node_id, removed=True)

    def add_edge(
        self,
        edge_id: "ElementId",
        source: "ElementId",
        target: "ElementId",
        label: str,
        properties: Mapping[str, object] | None = None,
    ) -> None:
        self.graph.add_edge(edge_id, source, target, label, properties)
        self._recheck_edge(edge_id)
        self._recheck_edge_group(("out", source, label))
        self._recheck_edge_group(("in", target, label))
        self._recheck_node(source)
        self._recheck_node(target)

    def remove_edge(self, edge_id: "ElementId") -> None:
        source, target = self.graph.endpoints(edge_id)
        label = self.graph.label(edge_id)
        self.graph.remove_edge(edge_id)
        self._violations.pop(("edge", edge_id), None)
        self._recheck_edge_group(("out", source, label))
        self._recheck_edge_group(("in", target, label))
        self._recheck_node(source)
        self._recheck_node(target)

    def set_property(self, element_id: "ElementId", name: str, value: object) -> None:
        self._change_property(element_id, lambda: self.graph.set_property(element_id, name, value))

    def remove_property(self, element_id: "ElementId", name: str) -> None:
        self._change_property(element_id, lambda: self.graph.remove_property(element_id, name))

    def _change_property(self, element_id: "ElementId", mutate) -> None:
        if not self.graph.is_node(element_id):
            mutate()
            self._recheck_edge(element_id)
            return
        old_signatures = list(self._node_signatures.get(element_id) or ())
        self._unindex_node_signatures(element_id)
        mutate()
        self._index_node_signatures(element_id)
        self._recheck_node(element_id)
        # both the groups the node left and the groups it joined change
        for site_index, signature in enumerate(old_signatures):
            if signature is not None:
                self._recheck_key_scope(site_index, signature)
        self._recheck_key_scopes_of(element_id)

    # ------------------------------------------------------------------ #
    # scope recomputation
    # ------------------------------------------------------------------ #

    def _full_rebuild(self) -> None:
        with obs.span(
            "validation.run", engine="incremental", elements=len(self.graph)
        ):
            self._rebuild_scopes()
        if obs.active() is not None:
            obs.count("validation.runs")

    def _rebuild_scopes(self) -> None:
        budget = self.budget.renew() if self.budget is not None else None
        rebuilt = 0
        self._violations.clear()
        for holder in self._signatures:
            holder.clear()
        self._node_signatures.clear()
        for node in self.graph.nodes:
            if budget is not None:
                rebuilt += 1
                if not rebuilt % 1024:
                    budget.check_deadline(site="validation.incremental")
            self._index_node_signatures(node)
            self._recheck_node(node)
        for edge in self.graph.edges:
            if budget is not None:
                rebuilt += 1
                if not rebuilt % 1024:
                    budget.check_deadline(site="validation.incremental")
            self._recheck_edge(edge)
        seen_groups: set[ScopeKey] = set()
        for edge in self.graph.edges:
            source, target = self.graph.endpoints(edge)
            label = self.graph.label(edge)
            for scope in (("out", source, label), ("in", target, label)):
                if scope not in seen_groups:
                    seen_groups.add(scope)
                    self._recheck_edge_group(scope)
        for site_index in range(len(self._key_sites)):
            for signature in self._signatures[site_index]:
                self._recheck_key_scope(site_index, signature)

    def _recheck_node(self, node: "ElementId") -> None:
        """Re-run the per-node rules (WS1/SS1/SS2/DS4/DS5/DS6) for one node."""
        obs.count("validation.rechecks.node")
        graph, engine = self.graph, self._engine
        found: list[Violation] = []
        single = _SingleNodeIndex(graph, node)
        for checker in (engine._ws1, engine._ss1, engine._ss2):
            found.extend(checker(graph, single))  # type: ignore[arg-type]
        found.extend(
            violation
            for checker in (engine._ds4, engine._ds5, engine._ds6)
            for violation in checker(graph, single)  # type: ignore[arg-type]
        )
        self._store(("node", node), found)

    def _recheck_edge(self, edge: "ElementId") -> None:
        """Re-run the per-edge rules (WS2/WS3/SS3/SS4/DS2) for one edge."""
        obs.count("validation.rechecks.edge")
        graph, engine, schema = self.graph, self._engine, self.schema
        single = _SingleEdgeIndex(graph, edge)
        found: list[Violation] = []
        # WS2 / SS3 / DS2 consume the restricted index directly
        for checker in (engine._ws2, engine._ss3, engine._ds2):
            found.extend(checker(graph, single))  # type: ignore[arg-type]
        # WS3 / SS4 iterate graph.edges in the engine, so check inline here
        source, target = graph.endpoints(edge)
        type_name, field_name = graph.label(source), graph.label(edge)
        ref = schema.type_f(type_name, field_name)
        if ref is None:
            found.append(
                Violation(
                    "SS4",
                    f"{type_name}.{field_name}",
                    (edge,),
                    f"edge label {field_name} is not a field of {type_name}",
                )
            )
        else:
            if schema.is_scalar_type(ref.base):
                found.append(
                    Violation(
                        "SS4",
                        f"{type_name}.{field_name}",
                        (edge,),
                        f"edge label {field_name} corresponds to an attribute field",
                    )
                )
            if not self.plan.is_below(graph.label(target), ref.base):
                found.append(
                    Violation(
                        "WS3",
                        f"{type_name}.{field_name}",
                        (edge,),
                        f"target label {graph.label(target)} is not a subtype of {ref.base}",
                    )
                )
        self._store(("edge", edge), found)

    def _recheck_edge_group(self, scope: ScopeKey) -> None:
        """Re-run WS4/DS1 for one (source, label) group or DS3 for one
        (target, label) group."""
        obs.count("validation.rechecks.edge_group")
        direction, node, label = scope
        graph, schema = self.graph, self.schema
        found: list[Violation] = []
        if not graph.is_node(node):
            self._violations.pop(scope, None)
            return
        if direction == "out":
            edges = graph.out_edges(node, label)
            ref = schema.type_f(graph.label(node), label)
            if ref is not None and not ref.is_list and len(edges) > 1:
                for e1, e2 in _ordered_pairs(edges):
                    found.append(
                        Violation(
                            "WS4",
                            f"{graph.label(node)}.{label}",
                            (e1, e2),
                            f"two parallel edges for non-list field type {ref}",
                        )
                    )
            by_endpoints: dict[tuple, list["ElementId"]] = {}
            for edge in edges:
                by_endpoints.setdefault(graph.endpoints(edge), []).append(edge)
            for site in self._engine._distinct:
                if site.field_name != label:
                    continue
                if not self.plan.is_below(graph.label(node), site.type_name):
                    continue
                for group in by_endpoints.values():
                    for e1, e2 in _ordered_pairs(group):
                        found.append(
                            Violation(
                                "DS1",
                                site.location,
                                (e1, e2),
                                "two @distinct edges share both endpoints",
                            )
                        )
        else:
            edges = graph.in_edges(node, label)
            for site in self._engine._unique_ft:
                if site.field_name != label:
                    continue
                qualifying = [
                    edge
                    for edge in edges
                    if self.plan.is_below(
                        graph.label(graph.endpoints(edge)[0]), site.type_name
                    )
                ]
                for e1, e2 in _ordered_pairs(qualifying):
                    found.append(
                        Violation(
                            "DS3",
                            site.location,
                            (e1, e2),
                            "target has two incoming @uniqueForTarget edges",
                        )
                    )
        self._store(scope, found)

    def _recheck_key_scopes_of(
        self, node: "ElementId", removed: bool = False
    ) -> None:
        """Re-check the DS7 groups that contain (or contained) *node*."""
        signatures = self._node_signatures.get(node)
        if removed:
            signatures = self._last_removed_signatures
        if not signatures:
            return
        for site_index, signature in enumerate(signatures):
            if signature is not None:
                self._recheck_key_scope(site_index, signature)

    def _recheck_key_scope(self, site_index: int, signature: tuple) -> None:
        obs.count("validation.rechecks.key_scope")
        site = self._key_sites[site_index]
        members = sorted(
            self._signatures[site_index].get(signature, ()), key=str
        )
        found = [
            Violation(
                "DS7",
                site.location,
                (v1, v2),
                "two distinct nodes agree on all key fields",
            )
            for v1, v2 in _ordered_pairs(members)
        ]
        self._store(("key", site_index, signature), found)

    # ------------------------------------------------------------------ #
    # signature index maintenance
    # ------------------------------------------------------------------ #

    def _signature_for(self, node: "ElementId", site_index: int) -> tuple | None:
        graph = self.graph
        site = self._key_sites[site_index]
        if not self.plan.is_below(graph.label(node), site.type_name):
            return None
        scalar_fields = self.plan.key_scalar_fields[site_index]
        return tuple(
            value_signature(graph.property_value(node, field_name))
            if graph.has_property(node, field_name)
            else _MISSING
            for field_name in scalar_fields
        )

    def _index_node_signatures(self, node: "ElementId") -> None:
        per_site: list[tuple | None] = []
        for site_index in range(len(self._key_sites)):
            signature = self._signature_for(node, site_index)
            per_site.append(signature)
            if signature is not None:
                self._signatures[site_index].setdefault(signature, set()).add(node)
        self._node_signatures[node] = per_site

    def _unindex_node_signatures(self, node: "ElementId") -> None:
        per_site = self._node_signatures.pop(node, None)
        self._last_removed_signatures = per_site
        if per_site is None:
            return
        for site_index, signature in enumerate(per_site):
            if signature is not None:
                group = self._signatures[site_index].get(signature)
                if group is not None:
                    group.discard(node)
                    if not group:
                        del self._signatures[site_index][signature]

    _last_removed_signatures: list[tuple | None] | None = None

    def _store(self, scope: ScopeKey, violations: list[Violation]) -> None:
        if violations:
            self._violations[scope] = violations
        else:
            self._violations.pop(scope, None)


def migrated_validator(
    source: IncrementalValidator,
    new_schema: "GraphQLSchema",
    affected_labels: frozenset[str],
) -> tuple[IncrementalValidator, int]:
    """Migrate *source* to *new_schema*, rechecking only affected scopes.

    The caller (the CDC consumer's schema-change path) guarantees that the
    subtype relation, interface/union memberships and scalar/enum value
    sets are identical between the two schemas, and that every schema
    change only affects elements whose labels lie in *affected_labels*
    (plus edge scopes incident to such elements).  Under that contract the
    violation store entries of unaffected scopes remain exactly valid, so
    this function transfers them wholesale and re-runs only:

    * per-node scopes of nodes with an affected label (re-deriving their
      DS7 key signatures under the new plan);
    * per-edge and edge-group scopes of edges with an affected endpoint;
    * key scopes whose signature index carried over (same ``(type,
      fields)`` site with the same scalar-field tuple) only where members
      moved, plus full index builds for sites new to the plan.

    Returns the migrated validator and the number of scopes rechecked --
    the cost the E16 benchmark tracks.  Validation work is proportional to
    the affected population; the only whole-graph pass is a label
    comparison per edge to *find* the affected edges.
    """
    graph = source.graph
    fresh = IncrementalValidator.__new__(IncrementalValidator)
    fresh.schema = new_schema
    fresh.graph = graph
    fresh.budget = source.budget
    fresh._engine = IndexedValidator(new_schema)
    fresh.plan = fresh._engine.plan
    fresh._key_sites = fresh.plan.key_sites

    # -- remap the DS7 signature index by (type, fields) site identity --- #
    def identity(site: KeySite) -> tuple[str, tuple[str, ...]]:
        return (site.type_name, site.fields)

    old_index = {identity(site): i for i, site in enumerate(source._key_sites)}
    carried: dict[int, int] = {}  # new site index -> old site index
    for j, site in enumerate(fresh._key_sites):
        i = old_index.get(identity(site))
        if i is not None and (
            source.plan.key_scalar_fields[i] == fresh.plan.key_scalar_fields[j]
        ):
            carried[j] = i
    fresh._signatures = [
        source._signatures[carried[j]] if j in carried else {}
        for j in range(len(fresh._key_sites))
    ]
    fresh._node_signatures = {
        node: [
            per_site[carried[j]] if j in carried else None
            for j in range(len(fresh._key_sites))
        ]
        for node, per_site in source._node_signatures.items()
    }

    # -- transfer the violation store, rekeying DS7 scopes --------------- #
    old_to_new = {i: j for j, i in carried.items()}
    fresh._violations = {}
    for scope, violations in source._violations.items():
        if scope[0] == "key":
            mapped = old_to_new.get(scope[1])
            if mapped is not None:
                fresh._violations[("key", mapped, scope[2])] = violations
        else:
            fresh._violations[scope] = violations

    # -- recheck the affected scopes ------------------------------------- #
    rechecked = 0
    touched_key_scopes: set[tuple[int, tuple]] = set()

    def reindex(node: "ElementId") -> None:
        before = fresh._node_signatures.get(node)
        if before:
            for j, signature in enumerate(before):
                if signature is not None:
                    touched_key_scopes.add((j, signature))
        fresh._unindex_node_signatures(node)
        fresh._index_node_signatures(node)
        for j, signature in enumerate(fresh._node_signatures[node]):
            if signature is not None:
                touched_key_scopes.add((j, signature))

    affected_nodes: set["ElementId"] = set()
    for label in affected_labels:
        affected_nodes.update(graph.nodes_with_label(label))
    for node in affected_nodes:
        reindex(node)
        fresh._recheck_node(node)
        rechecked += 1
    # sites new to the plan must index their whole label population, even
    # the part outside affected_labels (defensive: the caller's affected
    # set normally covers it)
    for j, site in enumerate(fresh._key_sites):
        if j in carried:
            continue
        for label in labels_below(new_schema, site.type_name):
            if label in affected_labels:
                continue
            for node in graph.nodes_with_label(label):
                reindex(node)

    groups: set[ScopeKey] = set()
    for edge in graph.edges:
        edge_source, edge_target = graph.endpoints(edge)
        if (
            graph.label(edge_source) in affected_labels
            or graph.label(edge_target) in affected_labels
        ):
            fresh._recheck_edge(edge)
            rechecked += 1
            label = graph.label(edge)
            groups.add(("out", edge_source, label))
            groups.add(("in", edge_target, label))
    for scope in groups:
        fresh._recheck_edge_group(scope)
        rechecked += 1
    for j, signature in sorted(touched_key_scopes, key=lambda pair: (pair[0], str(pair[1]))):
        fresh._recheck_key_scope(j, signature)
        rechecked += 1
    return fresh, rechecked


class _SingleNodeIndex:
    """A _GraphIndex restricted to one node (for per-node rule reuse)."""

    def __init__(self, graph: "PropertyGraph", node: "ElementId") -> None:
        self.nodes_by_label = {graph.label(node): [node]}
        self.node_properties = [
            (node, name, value) for name, value in graph.properties(node).items()
        ]
        self.edge_properties: list = []
        self.by_source_label: dict = {}
        self.by_target_label: dict = {}
        self.by_endpoints_label: dict = {}
        self.loops_by_label: dict = {}


class _SingleEdgeIndex:
    """A _GraphIndex restricted to one edge (for per-edge rule reuse)."""

    def __init__(self, graph: "PropertyGraph", edge: "ElementId") -> None:
        source, target = graph.endpoints(edge)
        label = graph.label(edge)
        self.nodes_by_label: dict = {}
        self.node_properties: list = []
        self.edge_properties = [
            (edge, name, value) for name, value in graph.properties(edge).items()
        ]
        self.by_source_label = {(source, label): [edge]}
        self.by_target_label = {(target, label): [edge]}
        self.by_endpoints_label = {(source, target, label): [edge]}
        self.loops_by_label = {label: [edge]} if source == target else {}
