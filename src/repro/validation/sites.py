"""Constraint sites: where in a schema each directive-based rule is anchored.

A *site* is a schema location that activates one of the DS rules -- e.g.
``(t, f)`` with ``(@distinct, ∅) ∈ directives_F(t, f)`` activates DS1.  Both
validation engines enumerate the same sites; they differ only in how they
check the graph against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..schema.directives import (
    DISTINCT,
    KEY,
    NO_LOOPS,
    REQUIRED,
    REQUIRED_FOR_TARGET,
    UNIQUE_FOR_TARGET,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..schema.model import FieldDefinition, GraphQLSchema


@dataclass(frozen=True)
class FieldSite:
    """A directive applied to a field definition: the paper's (t, f)."""

    type_name: str
    field_name: str
    field: "FieldDefinition"

    @property
    def location(self) -> str:
        return f"{self.type_name}.{self.field_name}"


@dataclass(frozen=True)
class KeySite:
    """A ``@key(fields: [...])`` directive applied to a type."""

    type_name: str
    fields: tuple[str, ...]

    @property
    def location(self) -> str:
        return f"{self.type_name} @key({', '.join(self.fields)})"


def field_sites_with(schema: "GraphQLSchema", directive_name: str) -> list[FieldSite]:
    """All (t, f) with the named directive in directives_F(t, f)."""
    return [
        FieldSite(type_name, field_name, field_def)
        for type_name, field_name, field_def in schema.field_declarations()
        if field_def.has_directive(directive_name)
    ]


def distinct_sites(schema: "GraphQLSchema") -> list[FieldSite]:
    return field_sites_with(schema, DISTINCT)


def no_loops_sites(schema: "GraphQLSchema") -> list[FieldSite]:
    return field_sites_with(schema, NO_LOOPS)


def unique_for_target_sites(schema: "GraphQLSchema") -> list[FieldSite]:
    return field_sites_with(schema, UNIQUE_FOR_TARGET)


def required_for_target_sites(schema: "GraphQLSchema") -> list[FieldSite]:
    return field_sites_with(schema, REQUIRED_FOR_TARGET)


def required_attribute_sites(schema: "GraphQLSchema") -> list[FieldSite]:
    """DS5 sites: @required where type_S(t, f) ∈ S ∪ W_S."""
    return [
        site
        for site in field_sites_with(schema, REQUIRED)
        if site.field.is_attribute
    ]


def required_edge_sites(schema: "GraphQLSchema") -> list[FieldSite]:
    """DS6 sites: @required where type_S(t, f) ∉ S ∪ W_S."""
    return [
        site
        for site in field_sites_with(schema, REQUIRED)
        if site.field.is_relationship
    ]


def key_sites(schema: "GraphQLSchema") -> list[KeySite]:
    """DS7 sites: every @key directive on any type."""
    sites: list[KeySite] = []
    for type_name in (
        *schema.object_types,
        *schema.interface_types,
        *schema.union_types,
    ):
        for directive in schema.directives_t(type_name):
            if directive.name != KEY:
                continue
            fields = directive.argument("fields", ())
            sites.append(KeySite(type_name, tuple(fields)))  # type: ignore[arg-type]
    return sites


def labels_below(schema: "GraphQLSchema", type_name: str) -> frozenset[str]:
    """The labels l with ``l ⊑_S type_name`` under rules 1-3.

    This is the declared type itself plus its implementing object types
    (interface) or member object types (union).  Note the type itself is
    included by rule 1 even for interfaces/unions: a node *labelled* with an
    interface name satisfies λ(v) ⊑ it (it would separately violate SS1).
    """
    return frozenset({type_name}) | schema.object_types_below(type_name)
