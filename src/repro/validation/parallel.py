"""The parallel validation engine: compiled plans fanned over shards.

:class:`ParallelValidator` validates a Property Graph by (1) compiling the
schema into a :class:`~repro.validation.plan.ValidationPlan` (cached across
calls), (2) splitting the graph into scope-respecting shards
(:mod:`repro.validation.shard`), (3) running the *fused shard kernel*
:func:`validate_shard` over every shard -- serially, on a thread pool, or on
a process pool -- and (4) merging the per-shard results into one
deterministic :class:`~repro.validation.violations.ValidationReport`.

The kernel is the per-shard hot loop.  Unlike
:class:`~repro.validation.indexed.IndexedValidator`, which runs one pass per
rule and re-derives schema lookups per element, the kernel makes a single
pass over the shard's nodes and a single pass over its edges, dispatching
through the plan's per-label records: one dict hit per element resolves
every rule that can apply to it.  This is where the engine's single-core
speedup comes from; the shard fan-out adds multi-core scaling on top.

Executor selection (``executor="auto"``):

* ``jobs == 1`` or a single-core host -- run the kernel inline, no pool
  (pool machinery is pure overhead for CPU-bound work without spare cores);
* small graphs (``len(graph) < SMALL_GRAPH_THRESHOLD``) -- thread pool
  (cheap to start; process startup would dominate);
* otherwise -- process pool, sidestepping the GIL for true multi-core runs.
  Workers receive the schema and graph once (via the pool initializer) and
  recompile the plan locally, so the plan's closures are never pickled.

Two runs over the same graph produce byte-identical reports regardless of
the executor: shard assignment uses a process-stable hash, shard results are
merged in shard order, and the final violation list is canonically sorted.

**Worker-failure recovery.**  Scheduling, retries with exponential backoff,
the executor fallback ladder process → thread → serial, stuck-worker
timeouts (``shard_timeout``) and the recovery log are delegated to the
shared :class:`~repro.resilience.ExecutorLadder` (extracted from this
module so the portfolio satisfiability engine reuses the identical
recovery contract).  Because merging is positional (results land in a
shard-indexed array) the recovered report is byte-identical to an
undisturbed run no matter which executor finally produced each shard.
When even the serial rung fails, the last cause is re-raised wrapped in
:class:`~repro.errors.WorkerFailureError`.  Recovery decisions are
recorded in :attr:`ParallelValidator.recovery_log` so chaos tests can
assert a fault actually fired and was survived.

**Budgets.**  An optional :class:`~repro.resilience.Budget` bounds the run:
elements are charged against ``max_nodes`` up front, and the deadline is
checked between attempts, inside the shard kernel (every
``_DEADLINE_CHECK_EVERY`` elements), and while waiting on workers.
Exhaustion surfaces as :class:`~repro.errors.BudgetExhaustedError`; the
:meth:`ParallelValidator.validate` entry point converts it into a *partial*
report (``complete=False``, violations found so far, structured
``interruption``) unless ``on_budget="error"`` asked for the exception.

Fault-injection sites (see :mod:`repro.resilience.faults`):
``parallel.worker`` fires at every shard attempt (context: ``shard``,
``attempt``, ``executor``) and ``parallel.merge`` before the merge step.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

from .. import obs
from ..errors import BudgetExhaustedError
from ..pg.values import value_signature
from ..resilience import faults
from ..resilience.ladder import FALLBACK as _FALLBACK  # noqa: F401  (re-export)
from ..resilience.ladder import ExecutorLadder
from ..schema.scalars import INT_MAX, INT_MIN
from .indexed import _ordered_pairs
from .plan import ValidationPlan, compile_plan
from .shard import ColumnarShard, GraphShard, partition_graph
from .violations import (
    ValidationReport,
    Violation,
    record_rule_checks,
    rules_for_mode,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..errors import BudgetReason
    from ..pg.columnar import ColumnarGraph, PropertyColumn
    from ..pg.model import ElementId, PropertyGraph
    from ..resilience import Budget
    from ..schema.model import GraphQLSchema
    from ..schema.scalars import ScalarRegistry
    from ..schema.typerefs import TypeRef

#: (key-site index, key-value signature, node) emitted by shard kernels;
#: the merge step groups them to decide DS7 across shard boundaries.
SignatureTriple = tuple

ShardResult = tuple[list[Violation], list[SignatureTriple]]

_MISSING = ("<missing>",)

_EXECUTORS = ("auto", "serial", "thread", "process")

#: Deadline-check cadence inside the shard kernel (elements per check).
_DEADLINE_CHECK_EVERY = 2048

_ON_BUDGET = ("unknown", "error")


def usable_cores() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class ParallelValidator:
    """Multi-core validator; agrees with IndexedValidator on every input."""

    #: Below this graph size (|V| + |E|), "auto" prefers threads to
    #: processes: worker startup and graph transfer would dominate.
    SMALL_GRAPH_THRESHOLD = 4096

    def __init__(
        self,
        schema: "GraphQLSchema",
        jobs: int | None = None,
        executor: str = "auto",
        plan: ValidationPlan | None = None,
        budget: "Budget | None" = None,
        on_budget: str = "unknown",
        max_retries: int = 2,
        retry_base_delay: float = 0.05,
        shard_timeout: float | None = None,
        fallback: bool = True,
    ) -> None:
        """Resilience knobs (all optional; defaults preserve PR-2 behaviour
        on healthy runs):

        * ``budget`` -- a template :class:`~repro.resilience.Budget`; every
          ``validate()`` call runs under a fresh renewal of it.
        * ``on_budget`` -- ``"unknown"`` returns a partial report on
          exhaustion, ``"error"`` raises.
        * ``max_retries`` -- same-executor retries per ladder rung before
          failing shards fall down process → thread → serial.
        * ``retry_base_delay`` -- base of the exponential backoff sleep.
        * ``shard_timeout`` -- wall seconds one shard attempt may take
          before it is treated as a stuck worker and recovered.
        * ``fallback`` -- disable the executor ladder (then exhausted
          retries raise :class:`~repro.errors.WorkerFailureError`).
        """
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        if on_budget not in _ON_BUDGET:
            raise ValueError(
                f"unknown on_budget policy {on_budget!r}; expected one of {_ON_BUDGET}"
            )
        self.schema = schema
        self.plan = plan if plan is not None else compile_plan(schema)
        self.jobs = max(1, jobs) if jobs is not None else usable_cores()
        self.executor = executor
        self.budget = budget
        self.on_budget = on_budget
        self.max_retries = max(0, max_retries)
        self.retry_base_delay = retry_base_delay
        self.shard_timeout = shard_timeout
        self.fallback = fallback
        #: recovery events of the last run: one dict per failed attempt
        #: (keys: shard, executor, attempt, error).
        self.recovery_log: list[dict] = []

    def validate(
        self,
        graph: "PropertyGraph",
        mode: str = "strong",
        budget: "Budget | None" = None,
    ) -> ValidationReport:
        """Check *graph* for weak / directives / strong satisfaction."""
        with obs.span(
            "validation.run",
            engine="parallel",
            mode=mode,
            jobs=self.jobs,
            elements=len(graph),
        ):
            return self._validate(graph, mode, budget)

    def _validate(
        self,
        graph: "PropertyGraph",
        mode: str,
        budget: "Budget | None",
    ) -> ValidationReport:
        rules = rules_for_mode(mode)
        if budget is None and self.budget is not None:
            budget = self.budget.renew()
        with obs.span("validation.partition", jobs=self.jobs):
            shards = partition_graph(graph, self.jobs)
        observation = obs.active()
        if observation is not None and observation.registry is not None:
            registry = observation.registry
            registry.count("validation.runs")
            registry.count("validation.shards", len(shards))
            total_nodes = total_edges = 0
            for shard in shards:
                registry.observe(
                    "validation.shard_size", len(shard.nodes) + len(shard.edges)
                )
                total_nodes += len(shard.nodes)
                total_edges += len(shard.edges)
            record_rule_checks(registry, rules, total_nodes, total_edges)
        results: list[ShardResult | None] = [None] * len(shards)
        interruption: "BudgetReason | None" = None
        try:
            if budget is not None:
                budget.charge_nodes(len(graph), site="validation.parallel")
            self._run_shards(graph, shards, rules, results, budget)
        except BudgetExhaustedError as stop:
            if self.on_budget == "error":
                raise
            interruption = stop.reason
        return self._merge(results, mode, rules, interruption)

    def choose_executor(self, graph: "PropertyGraph") -> str:
        """The executor "auto" resolves to for this graph."""
        if self.executor != "auto":
            return self.executor
        if self.jobs <= 1 or usable_cores() <= 1:
            # One worker -- or one core, where pool machinery is pure
            # overhead for this CPU-bound kernel.  The compiled-plan kernel
            # still beats the indexed engine; fan-out needs real cores.
            return "serial"
        if len(graph) < self.SMALL_GRAPH_THRESHOLD:
            return "thread"
        return "process"

    # ------------------------------------------------------------------ #
    # execution: attempts, retries, the executor fallback ladder
    # ------------------------------------------------------------------ #

    def _run_shards(
        self,
        graph: "PropertyGraph",
        shards: Sequence[GraphShard],
        rules: tuple[str, ...],
        results: "list[ShardResult | None]",
        budget: "Budget | None",
    ) -> None:
        """Fill ``results`` (shard-indexed, so merging stays deterministic),
        delegating retries and the executor fallback to the shared
        :class:`~repro.resilience.ExecutorLadder`."""
        ladder = ExecutorLadder(
            jobs=self.jobs,
            max_retries=self.max_retries,
            retry_base_delay=self.retry_base_delay,
            task_timeout=self.shard_timeout,
            fallback=self.fallback,
            site="validation.parallel",
            log_key="shard",
            timeout_label="shard_timeout",
        )
        self.recovery_log = ladder.recovery_log

        def serial(index: int, attempt: int) -> ShardResult:
            faults.fault_point(
                "parallel.worker",
                shard=shards[index].index,
                attempt=attempt,
                executor="serial",
            )
            with obs.span(
                "validation.shard",
                shard=shards[index].index,
                attempt=attempt,
                executor="serial",
            ):
                return validate_shard(self.plan, graph, shards[index], rules, budget)

        def thread_submit(pool, index: int, attempt: int):
            return pool.submit(
                _thread_validate,
                self.plan,
                graph,
                shards[index],
                rules,
                attempt,
                budget,
            )

        def process_submit(pool, index: int, attempt: int):
            return pool.submit(_pool_validate, (shards[index], rules, attempt, budget))

        def make_process_pool(workers: int):
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_pool_initializer,
                initargs=(self.schema, graph, faults.active_spec(), obs.worker_config()),
            )

        ladder.run(
            self.choose_executor(graph),
            range(len(shards)),
            results,
            serial=serial,
            thread_submit=thread_submit,
            process_submit=process_submit,
            make_process_pool=make_process_pool,
            budget=budget,
        )

    def _merge(
        self,
        results: "Sequence[ShardResult | None]",
        mode: str,
        rules: tuple[str, ...],
        interruption: "BudgetReason | None" = None,
    ) -> ValidationReport:
        faults.fault_point("parallel.merge")
        # The merge barrier doubles as the span-merge barrier: worker tasks
        # that ran with observability on arrive as TracedResult wrappers,
        # absorbed into the parent tracer/registry before the deterministic
        # report merge (which therefore stays byte-identical either way).
        results = [obs.unwrap(result) for result in results]
        with obs.span("validation.merge", shards=len(results)):
            return self._merge_results(results, mode, rules, interruption)

    def _merge_results(
        self,
        results: "Sequence[ShardResult | None]",
        mode: str,
        rules: tuple[str, ...],
        interruption: "BudgetReason | None",
    ) -> ValidationReport:
        return merge_shard_results(self.plan, results, mode, rules, interruption)


def merge_shard_results(
    plan: ValidationPlan,
    results: "Sequence[ShardResult | None]",
    mode: str,
    rules: tuple[str, ...],
    interruption: "BudgetReason | None" = None,
) -> ValidationReport:
    """Merge per-shard (violations, DS7 triples) results into one
    deterministic report: DS7 is decided by grouping the signature triples
    across shards, then the combined violation list is canonically sorted.
    Shared by :class:`ParallelValidator` and the out-of-core streaming
    validator (:mod:`repro.validation.stream`), whose chunk results merge
    through the identical code path -- that is what makes streamed and
    in-memory reports byte-identical."""
    violations: list[Violation] = []
    signature_groups: dict[tuple, list["ElementId"]] = {}
    for result in results:
        if result is None:  # shard never completed (partial, budgeted run)
            continue
        shard_violations, triples = result
        violations.extend(shard_violations)
        for site_index, signature, node in triples:
            signature_groups.setdefault((site_index, signature), []).append(node)
    key_sites = plan.key_sites
    for (site_index, _signature), nodes in signature_groups.items():
        if len(nodes) < 2:
            continue
        location = key_sites[site_index].location
        for first, second in _ordered_pairs(nodes):
            violations.append(
                Violation(
                    "DS7",
                    location,
                    (first, second),
                    "two distinct nodes agree on all key fields",
                )
            )
    violations.sort(key=_sort_key)
    report = ValidationReport(
        mode=mode,
        rules_checked=rules,
        complete=interruption is None,
        interruption=interruption,
    )
    report.extend(violations)
    return report


def _sort_key(violation: Violation) -> tuple:
    return (
        violation.rule,
        violation.location,
        tuple(str(element) for element in violation.elements),
        violation.detail,
    )


# --------------------------------------------------------------------------- #
# worker plumbing
# --------------------------------------------------------------------------- #

_pool_plan: ValidationPlan | None = None
_pool_graph: "PropertyGraph | None" = None


def _thread_validate(
    plan: ValidationPlan,
    graph: "PropertyGraph",
    shard: GraphShard,
    rules: tuple[str, ...],
    attempt: int,
    budget: "Budget | None",
) -> ShardResult:
    faults.fault_point(
        "parallel.worker", shard=shard.index, attempt=attempt, executor="thread"
    )
    with obs.span(
        "validation.shard", shard=shard.index, attempt=attempt, executor="thread"
    ):
        return validate_shard(plan, graph, shard, rules, budget)


def _pool_initializer(
    schema: "GraphQLSchema",
    graph: "PropertyGraph",
    fault_spec: str | None,
    obs_config: dict | None = None,
) -> None:
    """Runs once per worker process: compile the plan locally (its closures
    are never pickled), pin the shared graph, and mirror the parent's fault
    plan -- shipping the spec explicitly keeps injection working under any
    multiprocessing start method, and marking the process as a worker arms
    ``mode=exit`` crash faults (a real ``os._exit``, never in the parent).
    The parent's observability config rides along the same way: workers
    record into a private capture buffer (sharing the parent tracer's
    monotonic epoch) whose contents ship back with each task result."""
    global _pool_plan, _pool_graph
    _pool_plan = compile_plan(schema)
    _pool_graph = graph
    faults.mark_worker_process()
    faults.install(fault_spec)
    obs.install_worker(obs_config)


def _pool_validate(
    task: "tuple[GraphShard, tuple[str, ...], int, Budget | None]",
) -> "ShardResult | obs.TracedResult":
    shard, rules, attempt, budget = task
    assert _pool_plan is not None and _pool_graph is not None
    faults.fault_point(
        "parallel.worker", shard=shard.index, attempt=attempt, executor="process"
    )
    with obs.span(
        "validation.shard", shard=shard.index, attempt=attempt, executor="process"
    ):
        result = validate_shard(_pool_plan, _pool_graph, shard, rules, budget)
    return obs.package(result)


# --------------------------------------------------------------------------- #
# the fused shard kernel
# --------------------------------------------------------------------------- #


def validate_shard(
    plan: ValidationPlan,
    graph: "PropertyGraph | ColumnarGraph",
    shard: "GraphShard | ColumnarShard",
    rules: tuple[str, ...],
    budget: "Budget | None" = None,
) -> ShardResult:
    """Check every rule in *rules* against one shard of *graph*.

    Returns the violations whose scope lies inside the shard plus the DS7
    signature triples for the merge step.  Union over a full partition ==
    the sequential engines' result (the differential tests enforce this).

    :class:`~repro.validation.shard.ColumnarShard` row-range shards (from a
    frozen :class:`~repro.pg.columnar.ColumnarGraph`) dispatch to the
    columnar kernel, which sweeps label-id and endpoint columns run by run
    instead of doing per-element dict hits; both kernels emit the same
    violation multiset, so merged reports are byte-identical across
    backends.

    A ``budget`` deadline is read every ``_DEADLINE_CHECK_EVERY`` elements
    -- one monotonic-clock read amortised over thousands of kernel
    iterations, so budgeted and unbudgeted runs stay within noise of each
    other.
    """
    if isinstance(shard, ColumnarShard):
        return _validate_columnar_shard(plan, graph, shard, rules, budget)
    active = frozenset(rules)
    violations: list[Violation] = []
    emit = violations.append
    triples: list[SignatureTriple] = []
    label_of = graph.label
    endpoints = graph.endpoints
    property_map = graph.property_map
    elements_seen = 0

    # ---------------------------- node pass ---------------------------- #
    ws1 = "WS1" in active
    ss1 = "SS1" in active
    ss2 = "SS2" in active
    ds4 = "DS4" in active
    ds5 = "DS5" in active
    ds6 = "DS6" in active
    ds7 = "DS7" in active
    node_rules = plan.node_rules
    if ws1 or ss1 or ss2 or ds4 or ds5 or ds6 or ds7:
        iter_in_edges = graph.iter_in_edges
        out_degree = graph.out_degree
        for node, label in shard.nodes:
            if budget is not None:
                elements_seen += 1
                if not elements_seen % _DEADLINE_CHECK_EVERY:
                    budget.check_deadline(site="validation.shard")
            rec = node_rules(label)
            if ss1 and not rec.known:
                emit(
                    Violation(
                        "SS1", "", (node,), f"label {label} is not an object type"
                    )
                )
            props = property_map(node)
            if props and (ws1 or ss2):
                declared = rec.properties
                for name, value in props.items():
                    entry = declared.get(name)
                    if entry is None:
                        if ss2:
                            emit(
                                Violation(
                                    "SS2",
                                    f"{label}.{name}",
                                    (node,),
                                    f"property {name} is not a field of {label}",
                                )
                            )
                        continue
                    ref, checker = entry
                    if checker is None:
                        if ss2:
                            emit(
                                Violation(
                                    "SS2",
                                    f"{label}.{name}",
                                    (node,),
                                    f"property {name} corresponds to a relationship field",
                                )
                            )
                        continue
                    if ws1 and not checker(value):
                        emit(
                            Violation(
                                "WS1",
                                f"{label}.{name}",
                                (node,),
                                f"value {value!r} is not in values_W({ref})",
                            )
                        )
            if ds5:
                for location, field_name, is_list in rec.required_attrs:
                    value = props.get(field_name)
                    if value is None and field_name not in props:
                        emit(
                            Violation(
                                "DS5",
                                location,
                                (node,),
                                f"required property {field_name} is absent",
                            )
                        )
                    elif is_list and value == ():
                        emit(
                            Violation(
                                "DS5",
                                location,
                                (node,),
                                f"required list property {field_name} is empty",
                            )
                        )
            if ds6:
                for location, field_name in rec.required_edges:
                    if not out_degree(node, field_name):
                        emit(
                            Violation(
                                "DS6",
                                location,
                                (node,),
                                f"required outgoing {field_name} edge is absent",
                            )
                        )
            if ds4:
                for location, field_name, source_below in rec.incoming_required:
                    for edge in iter_in_edges(node, field_name):
                        if label_of(endpoints(edge)[0]) in source_below:
                            break
                    else:
                        emit(
                            Violation(
                                "DS4",
                                location,
                                (node,),
                                f"node of type {label} lacks a required "
                                f"incoming {field_name} edge",
                            )
                        )
            if ds7 and rec.key_memberships:
                for site_index, scalar_fields in rec.key_memberships:
                    signature = tuple(
                        value_signature(props[field_name])
                        if field_name in props
                        else _MISSING
                        for field_name in scalar_fields
                    )
                    triples.append((site_index, signature, node))

    # ---------------------------- edge pass ---------------------------- #
    ws2 = "WS2" in active
    ws3 = "WS3" in active
    ss3 = "SS3" in active
    ss4 = "SS4" in active
    ds2 = "DS2" in active
    ep1 = "EP1" in active
    edge_rules = plan.edge_rules
    if ws2 or ws3 or ss3 or ss4 or ds2 or ep1:
        for edge, source, target, edge_label, source_label, target_label in shard.edges:
            if budget is not None:
                elements_seen += 1
                if not elements_seen % _DEADLINE_CHECK_EVERY:
                    budget.check_deadline(site="validation.shard")
            rec = edge_rules(source_label, edge_label)
            if ss4 and rec.ss4 is not None:
                emit(
                    Violation(
                        "SS4",
                        f"{source_label}.{edge_label}",
                        (edge,),
                        f"edge label {edge_label} is not a field of {source_label}"
                        if rec.ss4 == "missing"
                        else f"edge label {edge_label} corresponds to an attribute field",
                    )
                )
            if ws3 and rec.ws3_targets is not None and target_label not in rec.ws3_targets:
                emit(
                    Violation(
                        "WS3",
                        f"{source_label}.{edge_label}",
                        (edge,),
                        f"target label {target_label} is not a subtype of "
                        f"{rec.ref.base}",  # type: ignore[union-attr]
                    )
                )
            if ds2 and rec.no_loops and source == target:
                for location in rec.no_loops:
                    emit(
                        Violation(
                            "DS2", location, (edge,), "@noLoops edge is a self-loop"
                        )
                    )
            props = property_map(edge)
            if props and (ws2 or ss3):
                arg_checkers = rec.arg_checkers
                declared_args = rec.args
                for name, value in props.items():
                    if ss3 and name not in declared_args:
                        emit(
                            Violation(
                                "SS3",
                                f"{source_label}.{edge_label}({name})",
                                (edge,),
                                f"edge property {name} is not a declared argument",
                            )
                        )
                    if ws2:
                        entry = arg_checkers.get(name)
                        if entry is not None and not entry[1](value):
                            emit(
                                Violation(
                                    "WS2",
                                    f"{source_label}.{edge_label}({name})",
                                    (edge,),
                                    f"value {value!r} is not in values_W({entry[0]})",
                                )
                            )
            if ep1 and rec.mandatory_args:
                for name in rec.mandatory_args:
                    if name not in props:
                        emit(
                            Violation(
                                "EP1",
                                f"{source_label}.{edge_label}({name})",
                                (edge,),
                                f"mandatory edge property {name} is absent",
                            )
                        )

    # ------------------------- edge-group passes ------------------------ #
    ws4 = "WS4" in active
    ds1 = "DS1" in active
    if ws4 or ds1:
        for _source, edge_label, records in shard.source_groups:
            source_label = records[0][4]
            rec = edge_rules(source_label, edge_label)
            if ws4 and rec.ws4:
                for first, second in _ordered_pairs([r[0] for r in records]):
                    emit(
                        Violation(
                            "WS4",
                            f"{source_label}.{edge_label}",
                            (first, second),
                            f"two parallel edges for non-list field type {rec.ref}",
                        )
                    )
            if ds1 and rec.distinct:
                by_endpoints: dict[tuple, list] = {}
                for r in records:
                    by_endpoints.setdefault((r[1], r[2]), []).append(r[0])
                for group in by_endpoints.values():
                    if len(group) < 2:
                        continue
                    for location in rec.distinct:
                        for first, second in _ordered_pairs(group):
                            emit(
                                Violation(
                                    "DS1",
                                    location,
                                    (first, second),
                                    "two @distinct edges share both endpoints",
                                )
                            )
    if "DS3" in active:
        unique_ft_by_field = plan.unique_ft_by_field
        if unique_ft_by_field:
            for _target, edge_label, records in shard.target_groups:
                for location, source_below in unique_ft_by_field.get(edge_label, ()):
                    qualifying = [r[0] for r in records if r[4] in source_below]
                    if len(qualifying) < 2:
                        continue
                    for first, second in _ordered_pairs(qualifying):
                        emit(
                            Violation(
                                "DS3",
                                location,
                                (first, second),
                                "target has two incoming @uniqueForTarget edges",
                            )
                        )
    return violations, triples


# --------------------------------------------------------------------------- #
# the columnar shard kernel
# --------------------------------------------------------------------------- #


def _column_accepts(
    scalars: "ScalarRegistry", ref: "TypeRef", column: "PropertyColumn"
) -> bool:
    """Whole-column acceptance of values_W(ref): every value stored in
    *column* is provably a member, so WS1/WS2 skip the per-value loop.
    Stored values are never None, which is why nullability plays no role
    here (absence models null); tuples likewise never contain None."""
    kind = column.kind
    if ref.is_list:
        if kind != "obj":
            return False  # non-tuple values can never satisfy a list type
        item_kind = column.item_kind
        if item_kind is None:
            return False
        if item_kind == "empty":
            return True
        return scalars.accepts_kind(
            ref.base,
            item_kind,
            int32=column.item_int_min >= INT_MIN and column.item_int_max <= INT_MAX,
            finite=column.item_floats_finite,
        )
    if kind == "obj":
        return False
    return scalars.accepts_kind(
        ref.base,
        kind,
        int32=column.int_min >= INT_MIN and column.int_max <= INT_MAX,
        finite=column.floats_finite,
    )


#: Column kinds whose DS7 signature is the inline pair (kind, value),
#: bypassing the value_signature call (identical output by construction).
_SIGNATURE_TAGS = frozenset(("int", "float", "bool", "str"))


def _validate_columnar_shard(
    plan: ValidationPlan,
    graph: "ColumnarGraph",
    shard: ColumnarShard,
    rules: tuple[str, ...],
    budget: "Budget | None" = None,
) -> ShardResult:
    """The fused kernel over a columnar shard: one pass over the node-row
    range, one over the edge-row range, and CSR-slice group passes.

    Work is organised by *run* -- maximal row ranges sharing a label (or a
    (source label, edge label) shape) -- so per-label dispatch records,
    interned-id lookups and wholesale column checks are paid once per run
    instead of once per element.  Emission content matches the dict kernel
    string for string; only emission *order* differs, which the canonical
    merge sort erases.
    """
    active = frozenset(rules)
    violations: list[Violation] = []
    emit = violations.append
    triples: list[SignatureTriple] = []
    labels = graph.labels
    keys = graph.keys
    scalars = plan.schema.scalars
    node_ids = graph.node_id_list
    edge_ids = graph.edge_id_list
    node_ext_of = graph.node_ext_of
    edge_ext_of = graph.edge_ext_of
    edge_src = graph.edge_src
    edge_tgt = graph.edge_tgt
    node_label_ids = graph.node_label_ids
    edge_run_index: dict[tuple[int, int], int] = {
        (src_label, edge_label): index
        for index, (src_label, edge_label, _start, _stop) in enumerate(graph.edge_runs)
    }
    pending = 0  # deadline-cadence accumulator (checked per run)

    # ---------------------------- node pass ---------------------------- #
    ws1 = "WS1" in active
    ss1 = "SS1" in active
    ss2 = "SS2" in active
    ds4 = "DS4" in active
    ds5 = "DS5" in active
    ds6 = "DS6" in active
    ds7 = "DS7" in active
    node_rules = plan.node_rules
    if ws1 or ss1 or ss2 or ds4 or ds5 or ds6 or ds7:
        node_columns = graph.node_columns
        shard_lo, shard_hi = shard.node_start, shard.node_stop
        for label_id, run_lo, run_hi in graph.node_runs:
            lo = run_lo if run_lo > shard_lo else shard_lo
            hi = run_hi if run_hi < shard_hi else shard_hi
            if lo >= hi:
                continue
            count = hi - lo
            if budget is not None:
                pending += count
                if pending >= _DEADLINE_CHECK_EVERY:
                    budget.check_deadline(site="validation.shard")
                    pending = 0
            label = labels[label_id]
            rec = node_rules(label)
            if ss1 and not rec.known:
                detail = f"label {label} is not an object type"
                for row in range(lo, hi):
                    emit(Violation("SS1", "", (node_ids[node_ext_of[row]],), detail))
            if ws1 or ss2:
                declared = rec.properties
                for key_id, column in node_columns.items():
                    if not column.count_range(lo, hi):
                        continue
                    name = keys[key_id]
                    entry = declared.get(name)
                    if entry is None:
                        if ss2:
                            location = f"{label}.{name}"
                            detail = f"property {name} is not a field of {label}"
                            for row in column.iter_present(lo, hi):
                                emit(
                                    Violation(
                                        "SS2",
                                        location,
                                        (node_ids[node_ext_of[row]],),
                                        detail,
                                    )
                                )
                        continue
                    ref, checker = entry
                    if checker is None:
                        if ss2:
                            location = f"{label}.{name}"
                            detail = (
                                f"property {name} corresponds to a relationship field"
                            )
                            for row in column.iter_present(lo, hi):
                                emit(
                                    Violation(
                                        "SS2",
                                        location,
                                        (node_ids[node_ext_of[row]],),
                                        detail,
                                    )
                                )
                        continue
                    if ws1 and not _column_accepts(scalars, ref, column):
                        location = f"{label}.{name}"
                        for row in column.iter_present(lo, hi):
                            value = column.get(row)
                            if not checker(value):
                                emit(
                                    Violation(
                                        "WS1",
                                        location,
                                        (node_ids[node_ext_of[row]],),
                                        f"value {value!r} is not in values_W({ref})",
                                    )
                                )
            if ds5:
                for location, field_name, is_list in rec.required_attrs:
                    key_id = keys.id_of(field_name)
                    column = node_columns.get(key_id) if key_id >= 0 else None
                    detail = f"required property {field_name} is absent"
                    if column is None:
                        for row in range(lo, hi):
                            emit(
                                Violation(
                                    "DS5",
                                    location,
                                    (node_ids[node_ext_of[row]],),
                                    detail,
                                )
                            )
                        continue
                    if column.count_range(lo, hi) < count:
                        for row in column.iter_absent(lo, hi):
                            emit(
                                Violation(
                                    "DS5",
                                    location,
                                    (node_ids[node_ext_of[row]],),
                                    detail,
                                )
                            )
                    if is_list and column.has_empty_tuple:
                        empty_detail = (
                            f"required list property {field_name} is empty"
                        )
                        for row in column.iter_present(lo, hi):
                            if column.get(row) == ():
                                emit(
                                    Violation(
                                        "DS5",
                                        location,
                                        (node_ids[node_ext_of[row]],),
                                        empty_detail,
                                    )
                                )
            if ds6:
                for location, field_name in rec.required_edges:
                    edge_label_id = labels.id_of(field_name)
                    detail = f"required outgoing {field_name} edge is absent"
                    if edge_label_id < 0:
                        for row in range(lo, hi):
                            emit(
                                Violation(
                                    "DS6",
                                    location,
                                    (node_ids[node_ext_of[row]],),
                                    detail,
                                )
                            )
                        continue
                    run_index = edge_run_index.get((label_id, edge_label_id))
                    if (
                        run_index is not None
                        and graph.run_distinct_sources(run_index) == run_hi - run_lo
                    ):
                        continue  # every node of this label is a source
                    sources = graph.sources_with_edge_label(edge_label_id)
                    for row in range(lo, hi):
                        if node_ext_of[row] not in sources:
                            emit(
                                Violation(
                                    "DS6",
                                    location,
                                    (node_ids[node_ext_of[row]],),
                                    detail,
                                )
                            )
            if ds4:
                for location, field_name, source_below in rec.incoming_required:
                    detail = (
                        f"node of type {label} lacks a required "
                        f"incoming {field_name} edge"
                    )
                    edge_label_id = labels.id_of(field_name)
                    if edge_label_id < 0:
                        for row in range(lo, hi):
                            emit(
                                Violation(
                                    "DS4",
                                    location,
                                    (node_ids[node_ext_of[row]],),
                                    detail,
                                )
                            )
                        continue
                    allowed = frozenset(
                        label_index
                        for source_label in source_below
                        if (label_index := labels.id_of(source_label)) >= 0
                    )
                    targets = graph.targets_of_labelled_sources(
                        edge_label_id, allowed
                    )
                    for row in range(lo, hi):
                        if node_ext_of[row] not in targets:
                            emit(
                                Violation(
                                    "DS4",
                                    location,
                                    (node_ids[node_ext_of[row]],),
                                    detail,
                                )
                            )
            if ds7 and rec.key_memberships:
                for site_index, scalar_fields in rec.key_memberships:
                    columns = []
                    for field_name in scalar_fields:
                        key_id = keys.id_of(field_name)
                        column = node_columns.get(key_id) if key_id >= 0 else None
                        tag = (
                            column.kind
                            if column is not None and column.kind in _SIGNATURE_TAGS
                            else None
                        )
                        columns.append((column, tag))
                    for row in range(lo, hi):
                        signature = tuple(
                            (
                                (tag, column.get(row))
                                if tag is not None
                                else value_signature(column.get(row))
                            )
                            if column is not None and column.has(row)
                            else _MISSING
                            for column, tag in columns
                        )
                        triples.append(
                            (site_index, signature, node_ids[node_ext_of[row]])
                        )

    # ---------------------------- edge pass ---------------------------- #
    ws2 = "WS2" in active
    ws3 = "WS3" in active
    ss3 = "SS3" in active
    ss4 = "SS4" in active
    ds2 = "DS2" in active
    ep1 = "EP1" in active
    edge_rules = plan.edge_rules
    if ws2 or ws3 or ss3 or ss4 or ds2 or ep1:
        edge_columns = graph.edge_columns
        shard_lo, shard_hi = shard.edge_start, shard.edge_stop
        for run_index, (src_label_id, edge_label_id, run_lo, run_hi) in enumerate(
            graph.edge_runs
        ):
            lo = run_lo if run_lo > shard_lo else shard_lo
            hi = run_hi if run_hi < shard_hi else shard_hi
            if lo >= hi:
                continue
            count = hi - lo
            if budget is not None:
                pending += count
                if pending >= _DEADLINE_CHECK_EVERY:
                    budget.check_deadline(site="validation.shard")
                    pending = 0
            source_label = labels[src_label_id]
            edge_label = labels[edge_label_id]
            rec = edge_rules(source_label, edge_label)
            if ss4 and rec.ss4 is not None:
                location = f"{source_label}.{edge_label}"
                detail = (
                    f"edge label {edge_label} is not a field of {source_label}"
                    if rec.ss4 == "missing"
                    else f"edge label {edge_label} corresponds to an attribute field"
                )
                for row in range(lo, hi):
                    emit(
                        Violation("SS4", location, (edge_ids[edge_ext_of[row]],), detail)
                    )
            if ws3 and rec.ws3_targets is not None:
                allowed = frozenset(
                    label_index
                    for target_label in rec.ws3_targets
                    if (label_index := labels.id_of(target_label)) >= 0
                )
                if not graph.run_target_labels(run_index) <= allowed:
                    location = f"{source_label}.{edge_label}"
                    base = rec.ref.base  # type: ignore[union-attr]
                    for row in range(lo, hi):
                        ext = edge_ext_of[row]
                        target_label_id = node_label_ids[edge_tgt[ext]]
                        if target_label_id not in allowed:
                            emit(
                                Violation(
                                    "WS3",
                                    location,
                                    (edge_ids[ext],),
                                    f"target label {labels[target_label_id]} is "
                                    f"not a subtype of {base}",
                                )
                            )
            if ds2 and rec.no_loops and graph.run_has_loops(run_index):
                for row in range(lo, hi):
                    ext = edge_ext_of[row]
                    if edge_src[ext] == edge_tgt[ext]:
                        for location in rec.no_loops:
                            emit(
                                Violation(
                                    "DS2",
                                    location,
                                    (edge_ids[ext],),
                                    "@noLoops edge is a self-loop",
                                )
                            )
            if ws2 or ss3:
                declared_args = rec.args
                arg_checkers = rec.arg_checkers
                for key_id, column in edge_columns.items():
                    if not column.count_range(lo, hi):
                        continue
                    name = keys[key_id]
                    if ss3 and name not in declared_args:
                        location = f"{source_label}.{edge_label}({name})"
                        detail = f"edge property {name} is not a declared argument"
                        for row in column.iter_present(lo, hi):
                            emit(
                                Violation(
                                    "SS3",
                                    location,
                                    (edge_ids[edge_ext_of[row]],),
                                    detail,
                                )
                            )
                    if ws2:
                        entry = arg_checkers.get(name)
                        if entry is not None and not _column_accepts(
                            scalars, entry[0], column
                        ):
                            location = f"{source_label}.{edge_label}({name})"
                            checker = entry[1]
                            for row in column.iter_present(lo, hi):
                                value = column.get(row)
                                if not checker(value):
                                    emit(
                                        Violation(
                                            "WS2",
                                            location,
                                            (edge_ids[edge_ext_of[row]],),
                                            f"value {value!r} is not in "
                                            f"values_W({entry[0]})",
                                        )
                                    )
            if ep1 and rec.mandatory_args:
                for name in rec.mandatory_args:
                    key_id = keys.id_of(name)
                    column = edge_columns.get(key_id) if key_id >= 0 else None
                    location = f"{source_label}.{edge_label}({name})"
                    detail = f"mandatory edge property {name} is absent"
                    if column is None:
                        for row in range(lo, hi):
                            emit(
                                Violation(
                                    "EP1",
                                    location,
                                    (edge_ids[edge_ext_of[row]],),
                                    detail,
                                )
                            )
                    elif column.count_range(lo, hi) < count:
                        for row in column.iter_absent(lo, hi):
                            emit(
                                Violation(
                                    "EP1",
                                    location,
                                    (edge_ids[edge_ext_of[row]],),
                                    detail,
                                )
                            )

    # ------------------------- edge-group passes ------------------------ #
    ws4 = "WS4" in active
    ds1 = "DS1" in active
    if (ws4 or ds1) and shard.source_groups:
        out_csr = graph.out_csr_edges()
        for node_ext, edge_label_id, start, end in shard.source_groups:
            source_label = labels[node_label_ids[node_ext]]
            edge_label = labels[edge_label_id]
            rec = edge_rules(source_label, edge_label)
            if ws4 and rec.ws4:
                members = [edge_ids[out_csr[position]] for position in range(start, end)]
                location = f"{source_label}.{edge_label}"
                detail = f"two parallel edges for non-list field type {rec.ref}"
                for first, second in _ordered_pairs(members):
                    emit(Violation("WS4", location, (first, second), detail))
            if ds1 and rec.distinct:
                by_target: dict[int, list] = {}
                for position in range(start, end):
                    ext = out_csr[position]
                    by_target.setdefault(edge_tgt[ext], []).append(edge_ids[ext])
                for group in by_target.values():
                    if len(group) < 2:
                        continue
                    for location in rec.distinct:
                        for first, second in _ordered_pairs(group):
                            emit(
                                Violation(
                                    "DS1",
                                    location,
                                    (first, second),
                                    "two @distinct edges share both endpoints",
                                )
                            )
    if "DS3" in active and shard.target_groups:
        unique_ft_by_field = plan.unique_ft_by_field
        if unique_ft_by_field:
            in_csr = graph.in_csr_edges()
            for _node_ext, edge_label_id, start, end in shard.target_groups:
                entries = unique_ft_by_field.get(labels[edge_label_id])
                if not entries:
                    continue
                for location, source_below in entries:
                    qualifying = []
                    for position in range(start, end):
                        ext = in_csr[position]
                        if labels[node_label_ids[edge_src[ext]]] in source_below:
                            qualifying.append(edge_ids[ext])
                    if len(qualifying) < 2:
                        continue
                    for first, second in _ordered_pairs(qualifying):
                        emit(
                            Violation(
                                "DS3",
                                location,
                                (first, second),
                                "target has two incoming @uniqueForTarget edges",
                            )
                        )
    return violations, triples
