"""The parallel validation engine: compiled plans fanned over shards.

:class:`ParallelValidator` validates a Property Graph by (1) compiling the
schema into a :class:`~repro.validation.plan.ValidationPlan` (cached across
calls), (2) splitting the graph into scope-respecting shards
(:mod:`repro.validation.shard`), (3) running the *fused shard kernel*
:func:`validate_shard` over every shard -- serially, on a thread pool, or on
a process pool -- and (4) merging the per-shard results into one
deterministic :class:`~repro.validation.violations.ValidationReport`.

The kernel is the per-shard hot loop.  Unlike
:class:`~repro.validation.indexed.IndexedValidator`, which runs one pass per
rule and re-derives schema lookups per element, the kernel makes a single
pass over the shard's nodes and a single pass over its edges, dispatching
through the plan's per-label records: one dict hit per element resolves
every rule that can apply to it.  This is where the engine's single-core
speedup comes from; the shard fan-out adds multi-core scaling on top.

Executor selection (``executor="auto"``):

* ``jobs == 1`` or a single-core host -- run the kernel inline, no pool
  (pool machinery is pure overhead for CPU-bound work without spare cores);
* small graphs (``len(graph) < SMALL_GRAPH_THRESHOLD``) -- thread pool
  (cheap to start; process startup would dominate);
* otherwise -- process pool, sidestepping the GIL for true multi-core runs.
  Workers receive the schema and graph once (via the pool initializer) and
  recompile the plan locally, so the plan's closures are never pickled.

Two runs over the same graph produce byte-identical reports regardless of
the executor: shard assignment uses a process-stable hash, shard results are
merged in shard order, and the final violation list is canonically sorted.

**Worker-failure recovery.**  Scheduling, retries with exponential backoff,
the executor fallback ladder process → thread → serial, stuck-worker
timeouts (``shard_timeout``) and the recovery log are delegated to the
shared :class:`~repro.resilience.ExecutorLadder` (extracted from this
module so the portfolio satisfiability engine reuses the identical
recovery contract).  Because merging is positional (results land in a
shard-indexed array) the recovered report is byte-identical to an
undisturbed run no matter which executor finally produced each shard.
When even the serial rung fails, the last cause is re-raised wrapped in
:class:`~repro.errors.WorkerFailureError`.  Recovery decisions are
recorded in :attr:`ParallelValidator.recovery_log` so chaos tests can
assert a fault actually fired and was survived.

**Budgets.**  An optional :class:`~repro.resilience.Budget` bounds the run:
elements are charged against ``max_nodes`` up front, and the deadline is
checked between attempts, inside the shard kernel (every
``_DEADLINE_CHECK_EVERY`` elements), and while waiting on workers.
Exhaustion surfaces as :class:`~repro.errors.BudgetExhaustedError`; the
:meth:`ParallelValidator.validate` entry point converts it into a *partial*
report (``complete=False``, violations found so far, structured
``interruption``) unless ``on_budget="error"`` asked for the exception.

Fault-injection sites (see :mod:`repro.resilience.faults`):
``parallel.worker`` fires at every shard attempt (context: ``shard``,
``attempt``, ``executor``) and ``parallel.merge`` before the merge step.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

from .. import obs
from ..errors import BudgetExhaustedError
from ..pg.values import value_signature
from ..resilience import faults
from ..resilience.ladder import FALLBACK as _FALLBACK  # noqa: F401  (re-export)
from ..resilience.ladder import ExecutorLadder
from .indexed import _ordered_pairs
from .plan import ValidationPlan, compile_plan
from .shard import GraphShard, partition_graph
from .violations import (
    ValidationReport,
    Violation,
    record_rule_checks,
    rules_for_mode,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..errors import BudgetReason
    from ..pg.model import ElementId, PropertyGraph
    from ..resilience import Budget
    from ..schema.model import GraphQLSchema

#: (key-site index, key-value signature, node) emitted by shard kernels;
#: the merge step groups them to decide DS7 across shard boundaries.
SignatureTriple = tuple

ShardResult = tuple[list[Violation], list[SignatureTriple]]

_MISSING = ("<missing>",)

_EXECUTORS = ("auto", "serial", "thread", "process")

#: Deadline-check cadence inside the shard kernel (elements per check).
_DEADLINE_CHECK_EVERY = 2048

_ON_BUDGET = ("unknown", "error")


def usable_cores() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class ParallelValidator:
    """Multi-core validator; agrees with IndexedValidator on every input."""

    #: Below this graph size (|V| + |E|), "auto" prefers threads to
    #: processes: worker startup and graph transfer would dominate.
    SMALL_GRAPH_THRESHOLD = 4096

    def __init__(
        self,
        schema: "GraphQLSchema",
        jobs: int | None = None,
        executor: str = "auto",
        plan: ValidationPlan | None = None,
        budget: "Budget | None" = None,
        on_budget: str = "unknown",
        max_retries: int = 2,
        retry_base_delay: float = 0.05,
        shard_timeout: float | None = None,
        fallback: bool = True,
    ) -> None:
        """Resilience knobs (all optional; defaults preserve PR-2 behaviour
        on healthy runs):

        * ``budget`` -- a template :class:`~repro.resilience.Budget`; every
          ``validate()`` call runs under a fresh renewal of it.
        * ``on_budget`` -- ``"unknown"`` returns a partial report on
          exhaustion, ``"error"`` raises.
        * ``max_retries`` -- same-executor retries per ladder rung before
          failing shards fall down process → thread → serial.
        * ``retry_base_delay`` -- base of the exponential backoff sleep.
        * ``shard_timeout`` -- wall seconds one shard attempt may take
          before it is treated as a stuck worker and recovered.
        * ``fallback`` -- disable the executor ladder (then exhausted
          retries raise :class:`~repro.errors.WorkerFailureError`).
        """
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        if on_budget not in _ON_BUDGET:
            raise ValueError(
                f"unknown on_budget policy {on_budget!r}; expected one of {_ON_BUDGET}"
            )
        self.schema = schema
        self.plan = plan if plan is not None else compile_plan(schema)
        self.jobs = max(1, jobs) if jobs is not None else usable_cores()
        self.executor = executor
        self.budget = budget
        self.on_budget = on_budget
        self.max_retries = max(0, max_retries)
        self.retry_base_delay = retry_base_delay
        self.shard_timeout = shard_timeout
        self.fallback = fallback
        #: recovery events of the last run: one dict per failed attempt
        #: (keys: shard, executor, attempt, error).
        self.recovery_log: list[dict] = []

    def validate(
        self,
        graph: "PropertyGraph",
        mode: str = "strong",
        budget: "Budget | None" = None,
    ) -> ValidationReport:
        """Check *graph* for weak / directives / strong satisfaction."""
        with obs.span(
            "validation.run",
            engine="parallel",
            mode=mode,
            jobs=self.jobs,
            elements=len(graph),
        ):
            return self._validate(graph, mode, budget)

    def _validate(
        self,
        graph: "PropertyGraph",
        mode: str,
        budget: "Budget | None",
    ) -> ValidationReport:
        rules = rules_for_mode(mode)
        if budget is None and self.budget is not None:
            budget = self.budget.renew()
        with obs.span("validation.partition", jobs=self.jobs):
            shards = partition_graph(graph, self.jobs)
        observation = obs.active()
        if observation is not None and observation.registry is not None:
            registry = observation.registry
            registry.count("validation.runs")
            registry.count("validation.shards", len(shards))
            total_nodes = total_edges = 0
            for shard in shards:
                registry.observe(
                    "validation.shard_size", len(shard.nodes) + len(shard.edges)
                )
                total_nodes += len(shard.nodes)
                total_edges += len(shard.edges)
            record_rule_checks(registry, rules, total_nodes, total_edges)
        results: list[ShardResult | None] = [None] * len(shards)
        interruption: "BudgetReason | None" = None
        try:
            if budget is not None:
                budget.charge_nodes(len(graph), site="validation.parallel")
            self._run_shards(graph, shards, rules, results, budget)
        except BudgetExhaustedError as stop:
            if self.on_budget == "error":
                raise
            interruption = stop.reason
        return self._merge(results, mode, rules, interruption)

    def choose_executor(self, graph: "PropertyGraph") -> str:
        """The executor "auto" resolves to for this graph."""
        if self.executor != "auto":
            return self.executor
        if self.jobs <= 1 or usable_cores() <= 1:
            # One worker -- or one core, where pool machinery is pure
            # overhead for this CPU-bound kernel.  The compiled-plan kernel
            # still beats the indexed engine; fan-out needs real cores.
            return "serial"
        if len(graph) < self.SMALL_GRAPH_THRESHOLD:
            return "thread"
        return "process"

    # ------------------------------------------------------------------ #
    # execution: attempts, retries, the executor fallback ladder
    # ------------------------------------------------------------------ #

    def _run_shards(
        self,
        graph: "PropertyGraph",
        shards: Sequence[GraphShard],
        rules: tuple[str, ...],
        results: "list[ShardResult | None]",
        budget: "Budget | None",
    ) -> None:
        """Fill ``results`` (shard-indexed, so merging stays deterministic),
        delegating retries and the executor fallback to the shared
        :class:`~repro.resilience.ExecutorLadder`."""
        ladder = ExecutorLadder(
            jobs=self.jobs,
            max_retries=self.max_retries,
            retry_base_delay=self.retry_base_delay,
            task_timeout=self.shard_timeout,
            fallback=self.fallback,
            site="validation.parallel",
            log_key="shard",
            timeout_label="shard_timeout",
        )
        self.recovery_log = ladder.recovery_log

        def serial(index: int, attempt: int) -> ShardResult:
            faults.fault_point(
                "parallel.worker",
                shard=shards[index].index,
                attempt=attempt,
                executor="serial",
            )
            with obs.span(
                "validation.shard",
                shard=shards[index].index,
                attempt=attempt,
                executor="serial",
            ):
                return validate_shard(self.plan, graph, shards[index], rules, budget)

        def thread_submit(pool, index: int, attempt: int):
            return pool.submit(
                _thread_validate,
                self.plan,
                graph,
                shards[index],
                rules,
                attempt,
                budget,
            )

        def process_submit(pool, index: int, attempt: int):
            return pool.submit(_pool_validate, (shards[index], rules, attempt, budget))

        def make_process_pool(workers: int):
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_pool_initializer,
                initargs=(self.schema, graph, faults.active_spec(), obs.worker_config()),
            )

        ladder.run(
            self.choose_executor(graph),
            range(len(shards)),
            results,
            serial=serial,
            thread_submit=thread_submit,
            process_submit=process_submit,
            make_process_pool=make_process_pool,
            budget=budget,
        )

    def _merge(
        self,
        results: "Sequence[ShardResult | None]",
        mode: str,
        rules: tuple[str, ...],
        interruption: "BudgetReason | None" = None,
    ) -> ValidationReport:
        faults.fault_point("parallel.merge")
        # The merge barrier doubles as the span-merge barrier: worker tasks
        # that ran with observability on arrive as TracedResult wrappers,
        # absorbed into the parent tracer/registry before the deterministic
        # report merge (which therefore stays byte-identical either way).
        results = [obs.unwrap(result) for result in results]
        with obs.span("validation.merge", shards=len(results)):
            return self._merge_results(results, mode, rules, interruption)

    def _merge_results(
        self,
        results: "Sequence[ShardResult | None]",
        mode: str,
        rules: tuple[str, ...],
        interruption: "BudgetReason | None",
    ) -> ValidationReport:
        violations: list[Violation] = []
        signature_groups: dict[tuple, list["ElementId"]] = {}
        for result in results:
            if result is None:  # shard never completed (partial, budgeted run)
                continue
            shard_violations, triples = result
            violations.extend(shard_violations)
            for site_index, signature, node in triples:
                signature_groups.setdefault((site_index, signature), []).append(node)
        key_sites = self.plan.key_sites
        for (site_index, _signature), nodes in signature_groups.items():
            if len(nodes) < 2:
                continue
            location = key_sites[site_index].location
            for first, second in _ordered_pairs(nodes):
                violations.append(
                    Violation(
                        "DS7",
                        location,
                        (first, second),
                        "two distinct nodes agree on all key fields",
                    )
                )
        violations.sort(key=_sort_key)
        report = ValidationReport(
            mode=mode,
            rules_checked=rules,
            complete=interruption is None,
            interruption=interruption,
        )
        report.extend(violations)
        return report


def _sort_key(violation: Violation) -> tuple:
    return (
        violation.rule,
        violation.location,
        tuple(str(element) for element in violation.elements),
        violation.detail,
    )


# --------------------------------------------------------------------------- #
# worker plumbing
# --------------------------------------------------------------------------- #

_pool_plan: ValidationPlan | None = None
_pool_graph: "PropertyGraph | None" = None


def _thread_validate(
    plan: ValidationPlan,
    graph: "PropertyGraph",
    shard: GraphShard,
    rules: tuple[str, ...],
    attempt: int,
    budget: "Budget | None",
) -> ShardResult:
    faults.fault_point(
        "parallel.worker", shard=shard.index, attempt=attempt, executor="thread"
    )
    with obs.span(
        "validation.shard", shard=shard.index, attempt=attempt, executor="thread"
    ):
        return validate_shard(plan, graph, shard, rules, budget)


def _pool_initializer(
    schema: "GraphQLSchema",
    graph: "PropertyGraph",
    fault_spec: str | None,
    obs_config: dict | None = None,
) -> None:
    """Runs once per worker process: compile the plan locally (its closures
    are never pickled), pin the shared graph, and mirror the parent's fault
    plan -- shipping the spec explicitly keeps injection working under any
    multiprocessing start method, and marking the process as a worker arms
    ``mode=exit`` crash faults (a real ``os._exit``, never in the parent).
    The parent's observability config rides along the same way: workers
    record into a private capture buffer (sharing the parent tracer's
    monotonic epoch) whose contents ship back with each task result."""
    global _pool_plan, _pool_graph
    _pool_plan = compile_plan(schema)
    _pool_graph = graph
    faults.mark_worker_process()
    faults.install(fault_spec)
    obs.install_worker(obs_config)


def _pool_validate(
    task: "tuple[GraphShard, tuple[str, ...], int, Budget | None]",
) -> "ShardResult | obs.TracedResult":
    shard, rules, attempt, budget = task
    assert _pool_plan is not None and _pool_graph is not None
    faults.fault_point(
        "parallel.worker", shard=shard.index, attempt=attempt, executor="process"
    )
    with obs.span(
        "validation.shard", shard=shard.index, attempt=attempt, executor="process"
    ):
        result = validate_shard(_pool_plan, _pool_graph, shard, rules, budget)
    return obs.package(result)


# --------------------------------------------------------------------------- #
# the fused shard kernel
# --------------------------------------------------------------------------- #


def validate_shard(
    plan: ValidationPlan,
    graph: "PropertyGraph",
    shard: GraphShard,
    rules: tuple[str, ...],
    budget: "Budget | None" = None,
) -> ShardResult:
    """Check every rule in *rules* against one shard of *graph*.

    Returns the violations whose scope lies inside the shard plus the DS7
    signature triples for the merge step.  Union over a full partition ==
    the sequential engines' result (the differential tests enforce this).

    A ``budget`` deadline is read every ``_DEADLINE_CHECK_EVERY`` elements
    -- one monotonic-clock read amortised over thousands of kernel
    iterations, so budgeted and unbudgeted runs stay within noise of each
    other.
    """
    active = frozenset(rules)
    violations: list[Violation] = []
    emit = violations.append
    triples: list[SignatureTriple] = []
    label_of = graph.label
    endpoints = graph.endpoints
    property_map = graph.property_map
    elements_seen = 0

    # ---------------------------- node pass ---------------------------- #
    ws1 = "WS1" in active
    ss1 = "SS1" in active
    ss2 = "SS2" in active
    ds4 = "DS4" in active
    ds5 = "DS5" in active
    ds6 = "DS6" in active
    ds7 = "DS7" in active
    node_rules = plan.node_rules
    if ws1 or ss1 or ss2 or ds4 or ds5 or ds6 or ds7:
        iter_in_edges = graph.iter_in_edges
        out_degree = graph.out_degree
        for node, label in shard.nodes:
            if budget is not None:
                elements_seen += 1
                if not elements_seen % _DEADLINE_CHECK_EVERY:
                    budget.check_deadline(site="validation.shard")
            rec = node_rules(label)
            if ss1 and not rec.known:
                emit(
                    Violation(
                        "SS1", "", (node,), f"label {label} is not an object type"
                    )
                )
            props = property_map(node)
            if props and (ws1 or ss2):
                declared = rec.properties
                for name, value in props.items():
                    entry = declared.get(name)
                    if entry is None:
                        if ss2:
                            emit(
                                Violation(
                                    "SS2",
                                    f"{label}.{name}",
                                    (node,),
                                    f"property {name} is not a field of {label}",
                                )
                            )
                        continue
                    ref, checker = entry
                    if checker is None:
                        if ss2:
                            emit(
                                Violation(
                                    "SS2",
                                    f"{label}.{name}",
                                    (node,),
                                    f"property {name} corresponds to a relationship field",
                                )
                            )
                        continue
                    if ws1 and not checker(value):
                        emit(
                            Violation(
                                "WS1",
                                f"{label}.{name}",
                                (node,),
                                f"value {value!r} is not in values_W({ref})",
                            )
                        )
            if ds5:
                for location, field_name, is_list in rec.required_attrs:
                    value = props.get(field_name)
                    if value is None and field_name not in props:
                        emit(
                            Violation(
                                "DS5",
                                location,
                                (node,),
                                f"required property {field_name} is absent",
                            )
                        )
                    elif is_list and value == ():
                        emit(
                            Violation(
                                "DS5",
                                location,
                                (node,),
                                f"required list property {field_name} is empty",
                            )
                        )
            if ds6:
                for location, field_name in rec.required_edges:
                    if not out_degree(node, field_name):
                        emit(
                            Violation(
                                "DS6",
                                location,
                                (node,),
                                f"required outgoing {field_name} edge is absent",
                            )
                        )
            if ds4:
                for location, field_name, source_below in rec.incoming_required:
                    for edge in iter_in_edges(node, field_name):
                        if label_of(endpoints(edge)[0]) in source_below:
                            break
                    else:
                        emit(
                            Violation(
                                "DS4",
                                location,
                                (node,),
                                f"node of type {label} lacks a required "
                                f"incoming {field_name} edge",
                            )
                        )
            if ds7 and rec.key_memberships:
                for site_index, scalar_fields in rec.key_memberships:
                    signature = tuple(
                        value_signature(props[field_name])
                        if field_name in props
                        else _MISSING
                        for field_name in scalar_fields
                    )
                    triples.append((site_index, signature, node))

    # ---------------------------- edge pass ---------------------------- #
    ws2 = "WS2" in active
    ws3 = "WS3" in active
    ss3 = "SS3" in active
    ss4 = "SS4" in active
    ds2 = "DS2" in active
    ep1 = "EP1" in active
    edge_rules = plan.edge_rules
    if ws2 or ws3 or ss3 or ss4 or ds2 or ep1:
        for edge, source, target, edge_label, source_label, target_label in shard.edges:
            if budget is not None:
                elements_seen += 1
                if not elements_seen % _DEADLINE_CHECK_EVERY:
                    budget.check_deadline(site="validation.shard")
            rec = edge_rules(source_label, edge_label)
            if ss4 and rec.ss4 is not None:
                emit(
                    Violation(
                        "SS4",
                        f"{source_label}.{edge_label}",
                        (edge,),
                        f"edge label {edge_label} is not a field of {source_label}"
                        if rec.ss4 == "missing"
                        else f"edge label {edge_label} corresponds to an attribute field",
                    )
                )
            if ws3 and rec.ws3_targets is not None and target_label not in rec.ws3_targets:
                emit(
                    Violation(
                        "WS3",
                        f"{source_label}.{edge_label}",
                        (edge,),
                        f"target label {target_label} is not a subtype of "
                        f"{rec.ref.base}",  # type: ignore[union-attr]
                    )
                )
            if ds2 and rec.no_loops and source == target:
                for location in rec.no_loops:
                    emit(
                        Violation(
                            "DS2", location, (edge,), "@noLoops edge is a self-loop"
                        )
                    )
            props = property_map(edge)
            if props and (ws2 or ss3):
                arg_checkers = rec.arg_checkers
                declared_args = rec.args
                for name, value in props.items():
                    if ss3 and name not in declared_args:
                        emit(
                            Violation(
                                "SS3",
                                f"{source_label}.{edge_label}({name})",
                                (edge,),
                                f"edge property {name} is not a declared argument",
                            )
                        )
                    if ws2:
                        entry = arg_checkers.get(name)
                        if entry is not None and not entry[1](value):
                            emit(
                                Violation(
                                    "WS2",
                                    f"{source_label}.{edge_label}({name})",
                                    (edge,),
                                    f"value {value!r} is not in values_W({entry[0]})",
                                )
                            )
            if ep1 and rec.mandatory_args:
                for name in rec.mandatory_args:
                    if name not in props:
                        emit(
                            Violation(
                                "EP1",
                                f"{source_label}.{edge_label}({name})",
                                (edge,),
                                f"mandatory edge property {name} is absent",
                            )
                        )

    # ------------------------- edge-group passes ------------------------ #
    ws4 = "WS4" in active
    ds1 = "DS1" in active
    if ws4 or ds1:
        for _source, edge_label, records in shard.source_groups:
            source_label = records[0][4]
            rec = edge_rules(source_label, edge_label)
            if ws4 and rec.ws4:
                for first, second in _ordered_pairs([r[0] for r in records]):
                    emit(
                        Violation(
                            "WS4",
                            f"{source_label}.{edge_label}",
                            (first, second),
                            f"two parallel edges for non-list field type {rec.ref}",
                        )
                    )
            if ds1 and rec.distinct:
                by_endpoints: dict[tuple, list] = {}
                for r in records:
                    by_endpoints.setdefault((r[1], r[2]), []).append(r[0])
                for group in by_endpoints.values():
                    if len(group) < 2:
                        continue
                    for location in rec.distinct:
                        for first, second in _ordered_pairs(group):
                            emit(
                                Violation(
                                    "DS1",
                                    location,
                                    (first, second),
                                    "two @distinct edges share both endpoints",
                                )
                            )
    if "DS3" in active:
        unique_ft_by_field = plan.unique_ft_by_field
        if unique_ft_by_field:
            for _target, edge_label, records in shard.target_groups:
                for location, source_below in unique_ft_by_field.get(edge_label, ()):
                    qualifying = [r[0] for r in records if r[4] in source_below]
                    if len(qualifying) < 2:
                        continue
                    for first, second in _ordered_pairs(qualifying):
                        emit(
                            Violation(
                                "DS3",
                                location,
                                (first, second),
                                "target has two incoming @uniqueForTarget edges",
                            )
                        )
    return violations, triples
