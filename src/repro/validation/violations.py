"""Violations and validation reports.

Every satisfaction rule of Section 5 (WS1-WS4, DS1-DS7, SS1-SS4) reports its
failures as :class:`Violation` objects carrying the rule id, the schema
location that imposed the constraint, and the graph elements witnessing the
failure.  Reports from the naive and the indexed validator are comparable as
sets, which is how the differential tests establish engine agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

#: Rule catalogue: id -> (title, statement from the paper).
RULES: dict[str, tuple[str, str]] = {
    "WS1": (
        "Node properties must be of the required type",
        "For all (v, f) ∈ dom(σ) with v ∈ V, f ∈ fields(λ(v)) and "
        "t = type_F(λ(v), f) ∈ S ∪ W_S: σ(v, f) ∈ values_W(t).",
    ),
    "WS2": (
        "Edge properties must be of the required type",
        "For all (e, a) ∈ dom(σ) with e ∈ E, (v1, v2) = ρ(e), "
        "f = (λ(v1), λ(e)) and a ∈ args(f): σ(e, a) ∈ values_W(type_AF(f, a)).",
    ),
    "WS3": (
        "Target nodes must be of the required type",
        "For every e ∈ E with ρ(e) = (v1, v2) and f = (λ(v1), λ(e)) ∈ "
        "dom(type_F): λ(v2) ⊑ basetype(type_F(f)).",
    ),
    "WS4": (
        "Non-list fields contain at most one edge",
        "Edges e1, e2 with the same source and the same label f, where "
        "type_F(λ(v1), f) is not a list type: e1 = e2.",
    ),
    "DS1": (
        "Edges identified by nodes and label (@distinct)",
        "If (@distinct, ∅) ∈ directives_F(t, f): edges e1, e2 with identical "
        "endpoints, source label ⊑ t and label f coincide.",
    ),
    "DS2": (
        "No loops (@noLoops)",
        "If (@noLoops, ∅) ∈ directives_F(t, f): no edge e with ρ(e) = (v, v), "
        "λ(v) ⊑ t and λ(e) = f.",
    ),
    "DS3": (
        "Target has at most one incoming edge (@uniqueForTarget)",
        "If (@uniqueForTarget, ∅) ∈ directives_F(t, f): edges e1, e2 with the "
        "same target, source labels ⊑ t and label f coincide.",
    ),
    "DS4": (
        "Target has at least one incoming edge (@requiredForTarget)",
        "If (@requiredForTarget, ∅) ∈ directives_F(t, f): every node v2 with "
        "λ(v2) ⊑ basetype(type_S(t, f)) has an incoming f-edge from a node "
        "with label ⊑ t.",
    ),
    "DS5": (
        "Property is required (@required on an attribute)",
        "If (@required, ∅) ∈ directives_F(t, f) and type_S(t, f) ∈ S ∪ W_S: "
        "every v with λ(v) ⊑ t has (v, f) ∈ dom(σ), with a nonempty list "
        "value when type_S(t, f) is a list type.",
    ),
    "DS6": (
        "Edge is required (@required on a relationship)",
        "If (@required, ∅) ∈ directives_F(t, f) and type_S(t, f) ∉ S ∪ W_S: "
        "every v1 with λ(v1) ⊑ t has at least one outgoing edge labelled f.",
    ),
    "DS7": (
        "Keys (@key)",
        "If (@key, {fields: [f1 … fn]}) ∈ directives_T(t): any two nodes with "
        "labels ⊑ t that agree on every scalar-typed key field (both absent, "
        "or both present and equal) are identical.",
    ),
    "SS1": (
        "All nodes are justified",
        "For all v ∈ V: λ(v) ∈ OT.",
    ),
    "SS2": (
        "All node properties are justified",
        "For all (v, f) ∈ dom(σ) with v ∈ V: f ∈ fields(λ(v)) and "
        "type_F(λ(v), f) ∈ S ∪ W_S.",
    ),
    "SS3": (
        "All edge properties are justified",
        "For all (e, a) ∈ dom(σ) with e ∈ E: a ∈ args((λ(v1), λ(e))).",
    ),
    "SS4": (
        "All edges are justified",
        "For all e ∈ E with ρ(e) = (v1, v2): λ(e) ∈ fields(λ(v1)) and "
        "type_F(λ(v1), λ(e)) ∉ S ∪ W_S.",
    ),
}

RULES["EP1"] = (
    "Non-null edge properties are mandatory (extension)",
    "For every edge e with (λ(v1), λ(e)) ∈ dom(type_F) and every argument a "
    "with non-null type_AF and no default value: (e, a) ∈ dom(σ).  Stated in "
    "prose in §3.5/Example 3.12 but absent from Definitions 5.1-5.3; checked "
    'only in the "extended" validation mode.',
)

WEAK_RULES = ("WS1", "WS2", "WS3", "WS4")
DIRECTIVE_RULES = ("DS1", "DS2", "DS3", "DS4", "DS5", "DS6", "DS7")
STRONG_RULES = ("SS1", "SS2", "SS3", "SS4")
EXTENSION_RULES = ("EP1",)
ALL_RULES = WEAK_RULES + DIRECTIVE_RULES + STRONG_RULES


def rules_for_mode(mode: str) -> tuple[str, ...]:
    """The rule set decided by each validation mode."""
    if mode == "weak":
        return WEAK_RULES
    if mode == "directives":
        return DIRECTIVE_RULES
    if mode == "strong":
        return ALL_RULES
    if mode == "extended":
        return ALL_RULES + EXTENSION_RULES
    raise ValueError(f"unknown validation mode: {mode!r}")


#: Which element population each rule scans: node-scoped rules touch every
#: node of the graph, edge-scoped rules every edge.  Used to derive the
#: ``validation.checks.<rule>`` counters all engines export.
RULE_SCOPE: dict[str, str] = {
    "WS1": "nodes",
    "SS1": "nodes",
    "SS2": "nodes",
    "DS4": "nodes",
    "DS5": "nodes",
    "DS6": "nodes",
    "DS7": "nodes",
    "WS2": "edges",
    "WS3": "edges",
    "WS4": "edges",
    "SS3": "edges",
    "SS4": "edges",
    "DS1": "edges",
    "DS2": "edges",
    "DS3": "edges",
    "EP1": "edges",
}


def record_rule_checks(registry, rules: tuple[str, ...], nodes: int, edges: int) -> None:
    """Count the per-rule check work of one run into *registry*.

    One "check" is one element scanned by a rule: node-scoped rules perform
    ``nodes`` checks, edge-scoped rules ``edges`` -- the granularity the
    complexity claims of Theorem 1 are stated at.
    """
    for rule in rules:
        registry.count(
            f"validation.checks.{rule}",
            nodes if RULE_SCOPE[rule] == "nodes" else edges,
        )


@dataclass(frozen=True)
class Violation:
    """One witnessed failure of a satisfaction rule.

    Attributes:
        rule: Rule id ("WS1" … "SS4").
        location: Schema location imposing the constraint, e.g.
            ``"Book.author"`` or ``"type User @key(id)"``; empty for the
            purely structural SS rules.
        elements: The graph elements witnessing the failure (node/edge ids,
            in canonical order for pairwise rules).
        detail: Human-readable explanation.
    """

    rule: str
    location: str
    elements: tuple
    detail: str = ""

    @property
    def title(self) -> str:
        return RULES[self.rule][0]

    def __str__(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        subject = ", ".join(str(element) for element in self.elements)
        detail = f": {self.detail}" if self.detail else ""
        return f"{self.rule}{where} ({subject}){detail}"

    def key(self) -> tuple:
        """Identity ignoring the free-text detail (for engine comparison)."""
        return (self.rule, self.location, self.elements)


def canonical_pair(a: object, b: object) -> tuple:
    """Order a pair of element ids canonically (for WS4/DS1/DS3/DS7 witnesses)."""
    return (a, b) if str(a) <= str(b) else (b, a)


@dataclass
class ValidationReport:
    """The outcome of validating one Property Graph against one schema.

    ``conforms`` is True iff no violations were found for the rules that were
    checked *and the run completed*.  ``mode`` records which satisfaction
    notion was decided: ``"weak"`` (WS only), ``"directives"`` (DS only) or
    ``"strong"`` (all).

    ``complete`` is False when an execution budget (deadline, element
    count) ran out mid-validation: the report then carries the violations
    found *so far* plus the structured ``interruption`` reason, and its
    verdict is "unknown" rather than "conforms" -- a partial scan proves
    nothing about the unscanned remainder.
    """

    mode: str
    violations: list[Violation] = field(default_factory=list)
    rules_checked: tuple[str, ...] = ALL_RULES
    complete: bool = True
    #: a :class:`repro.errors.BudgetReason` when ``complete`` is False
    interruption: object | None = None

    @property
    def conforms(self) -> bool:
        return self.complete and not self.violations

    @property
    def verdict(self) -> str:
        """``"conforms"``, ``"violations"`` or ``"unknown"`` (partial run)."""
        if self.violations:
            return "violations"
        return "conforms" if self.complete else "unknown"

    def by_rule(self) -> dict[str, list[Violation]]:
        grouped: dict[str, list[Violation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.rule, []).append(violation)
        return grouped

    def keys(self) -> frozenset[tuple]:
        """The set of violation identities (for engine-agreement checks)."""
        return frozenset(violation.key() for violation in self.violations)

    def summary(self) -> str:
        suffix = "" if self.complete else (
            f" [INCOMPLETE: {self.interruption}]"
            if self.interruption is not None
            else " [INCOMPLETE]"
        )
        if not self.violations:
            if self.complete:
                return f"conforms ({self.mode} satisfaction)"
            return f"UNKNOWN ({self.mode} satisfaction undecided){suffix}"
        counts = ", ".join(
            f"{rule}×{len(violations)}" for rule, violations in sorted(self.by_rule().items())
        )
        return f"{len(self.violations)} violation(s): {counts}{suffix}"

    def extend(self, violations: Iterable[Violation]) -> None:
        self.violations.extend(violations)
