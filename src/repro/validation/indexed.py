"""The indexed validation engine: near-linear-time validation.

Finds exactly the same violations as :class:`~repro.validation.naive.NaiveValidator`
(the differential tests enforce agreement) but replaces every nested
quantifier with a hash-grouping pass:

* WS4 groups edges by (source, label);
* DS1 groups by (source, target, label), DS3 by (target, label);
* DS4/DS5/DS6 use per-label node lists and the graph's incidence indexes;
* DS7 groups nodes by their key-value signature.

With a fixed schema the whole pass is O(|V| + |E| + |dom σ|) expected time,
which experiment E1 contrasts against the naive engine's quadratic growth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .. import obs
from ..errors import BudgetExhaustedError
from ..pg.values import value_signature
from ..schema.subtype import is_named_subtype
from .plan import ValidationPlan, compile_plan
from .violations import (
    ValidationReport,
    Violation,
    canonical_pair,
    record_rule_checks,
    rules_for_mode,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..pg.model import ElementId, PropertyGraph
    from ..resilience import Budget
    from ..schema.model import GraphQLSchema

_MISSING = ("<missing>",)

_ON_BUDGET = ("unknown", "error")


class IndexedValidator:
    """Hash-indexed validator; the sequential production engine."""

    def __init__(
        self,
        schema: "GraphQLSchema",
        plan: ValidationPlan | None = None,
        budget: "Budget | None" = None,
        on_budget: str = "unknown",
    ) -> None:
        if on_budget not in _ON_BUDGET:
            raise ValueError(
                f"unknown on_budget policy {on_budget!r}; expected one of {_ON_BUDGET}"
            )
        self.schema = schema
        # all schema analysis (site tables, label closures) lives in the
        # compiled plan, shared across validators via the plan cache
        self.plan = plan if plan is not None else compile_plan(schema)
        self.budget = budget
        self.on_budget = on_budget
        self._distinct = self.plan.distinct_sites
        self._no_loops = self.plan.no_loops_sites
        self._unique_ft = self.plan.unique_ft_sites
        self._required_ft = self.plan.required_ft_sites
        self._required_attr = self.plan.required_attr_sites
        self._required_edge = self.plan.required_edge_sites
        self._keys = self.plan.key_sites

    def validate(
        self,
        graph: "PropertyGraph",
        mode: str = "strong",
        budget: "Budget | None" = None,
    ) -> ValidationReport:
        """Check *graph* for weak / directives / strong satisfaction.

        Under a ``budget``, element counts are charged up front and the
        deadline is read between rule passes; exhaustion yields a *partial*
        report (violations found so far, ``complete=False``) unless the
        validator was built with ``on_budget="error"``.
        """
        rules = rules_for_mode(mode)
        if budget is None and self.budget is not None:
            budget = self.budget.renew()
        report = ValidationReport(mode=mode, rules_checked=rules)
        span = obs.span(
            "validation.run", engine="indexed", mode=mode, elements=len(graph)
        )
        with span:
            try:
                if budget is not None:
                    budget.charge_nodes(len(graph), site="validation.indexed")
                index = _GraphIndex(graph)
                checkers = self._checkers()
                for rule in rules:
                    if budget is not None:
                        budget.check_deadline(site="validation.indexed")
                    report.extend(checkers[rule](graph, index))
            except BudgetExhaustedError as stop:
                if self.on_budget == "error":
                    raise
                report.complete = False
                report.interruption = stop.reason
            span.set(violations=len(report.violations), complete=report.complete)
        observation = obs.active()
        if observation is not None and observation.registry is not None:
            observation.registry.count("validation.runs")
            record_rule_checks(
                observation.registry, rules, graph.num_nodes, graph.num_edges
            )
        return report

    def profile_rules(
        self, graph: "PropertyGraph", mode: str = "strong"
    ) -> tuple[ValidationReport, dict[str, float]]:
        """Like :meth:`validate`, but also time each rule's pass.

        Returns ``(report, {rule id: wall seconds})``; the timing dict feeds
        ``pgschema validate --profile`` and the E12 experiment table.
        """
        rules = rules_for_mode(mode)
        report = ValidationReport(mode=mode, rules_checked=rules)
        index = _GraphIndex(graph)
        checkers = self._checkers()
        # per-rule timings live in a private registry so the profile is one
        # more view over the metrics vocabulary; the legacy return shape
        # ({rule id: seconds}) is derived from the histogram sums
        registry = obs.MetricsRegistry()
        for rule in rules:
            with registry.timer(f"validation.rule.{rule}"):
                report.extend(checkers[rule](graph, index))
        histograms = registry.snapshot()["histograms"]
        timings = {
            rule: histograms[f"validation.rule.{rule}"]["sum"] for rule in rules
        }
        observation = obs.active()
        if observation is not None and observation.registry is not None:
            observation.registry.merge_snapshot(registry.drain())
        return report, timings

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _checkers(self):
        return {
            "WS1": self._ws1,
            "WS2": self._ws2,
            "WS3": self._ws3,
            "WS4": self._ws4,
            "DS1": self._ds1,
            "DS2": self._ds2,
            "DS3": self._ds3,
            "DS4": self._ds4,
            "DS5": self._ds5,
            "DS6": self._ds6,
            "DS7": self._ds7,
            "SS1": self._ss1,
            "SS2": self._ss2,
            "SS3": self._ss3,
            "SS4": self._ss4,
            "EP1": self._ep1,
        }

    def _below(self, type_name: str) -> frozenset[str]:
        return self.plan.labels_below(type_name)

    # ------------------------------------------------------------------ #
    # weak satisfaction
    # ------------------------------------------------------------------ #

    def _ws1(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        schema = self.schema
        for node, name, value in index.node_properties:
            ref = schema.type_f(graph.label(node), name)
            if ref is None or not schema.is_scalar_type(ref.base):
                continue
            if not schema.scalars.in_values_w(value, ref):
                yield Violation(
                    "WS1",
                    f"{graph.label(node)}.{name}",
                    (node,),
                    f"value {value!r} is not in values_W({ref})",
                )

    def _ws2(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        schema = self.schema
        for edge, name, value in index.edge_properties:
            source, _target = graph.endpoints(edge)
            type_name, field_name = graph.label(source), graph.label(edge)
            ref = schema.type_af(type_name, field_name, name)
            if ref is None:
                continue
            if not schema.scalars.in_values_w(value, ref):
                yield Violation(
                    "WS2",
                    f"{type_name}.{field_name}({name})",
                    (edge,),
                    f"value {value!r} is not in values_W({ref})",
                )

    def _ws3(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        schema = self.schema
        for edge in graph.edges:
            source, target = graph.endpoints(edge)
            ref = schema.type_f(graph.label(source), graph.label(edge))
            if ref is None:
                continue
            if not is_named_subtype(schema, graph.label(target), ref.base):
                yield Violation(
                    "WS3",
                    f"{graph.label(source)}.{graph.label(edge)}",
                    (edge,),
                    f"target label {graph.label(target)} is not a subtype of {ref.base}",
                )

    def _ws4(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        schema = self.schema
        for (source, label), edges in index.by_source_label.items():
            if len(edges) < 2:
                continue
            ref = schema.type_f(graph.label(source), label)
            if ref is None or ref.is_list:
                continue
            for e1, e2 in _ordered_pairs(edges):
                yield Violation(
                    "WS4",
                    f"{graph.label(source)}.{label}",
                    (e1, e2),
                    f"two parallel edges for non-list field type {ref}",
                )

    # ------------------------------------------------------------------ #
    # directives satisfaction
    # ------------------------------------------------------------------ #

    def _ds1(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        for site in self._distinct:
            below = self._below(site.type_name)
            for (source, target, label), edges in index.by_endpoints_label.items():
                if label != site.field_name or len(edges) < 2:
                    continue
                if graph.label(source) not in below:
                    continue
                for e1, e2 in _ordered_pairs(edges):
                    yield Violation(
                        "DS1",
                        site.location,
                        (e1, e2),
                        "two @distinct edges share both endpoints",
                    )

    def _ds2(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        for site in self._no_loops:
            below = self._below(site.type_name)
            for edge in index.loops_by_label.get(site.field_name, ()):
                source = graph.endpoints(edge)[0]
                if graph.label(source) in below:
                    yield Violation(
                        "DS2", site.location, (edge,), "@noLoops edge is a self-loop"
                    )

    def _ds3(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        for site in self._unique_ft:
            below = self._below(site.type_name)
            for (target, label), edges in index.by_target_label.items():
                if label != site.field_name or len(edges) < 2:
                    continue
                qualifying = [
                    edge
                    for edge in edges
                    if graph.label(graph.endpoints(edge)[0]) in below
                ]
                for e1, e2 in _ordered_pairs(qualifying):
                    yield Violation(
                        "DS3",
                        site.location,
                        (e1, e2),
                        "target has two incoming @uniqueForTarget edges",
                    )

    def _ds4(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        for site in self._required_ft:
            source_below = self._below(site.type_name)
            target_below = self._below(site.field.type.base)
            for label in target_below:
                for node in index.nodes_by_label.get(label, ()):
                    has_incoming = any(
                        graph.label(graph.endpoints(edge)[0]) in source_below
                        for edge in graph.in_edges(node, site.field_name)
                    )
                    if not has_incoming:
                        yield Violation(
                            "DS4",
                            site.location,
                            (node,),
                            f"node of type {graph.label(node)} lacks a required "
                            f"incoming {site.field_name} edge",
                        )

    def _ds5(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        for site in self._required_attr:
            for label in self._below(site.type_name):
                for node in index.nodes_by_label.get(label, ()):
                    if not graph.has_property(node, site.field_name):
                        yield Violation(
                            "DS5",
                            site.location,
                            (node,),
                            f"required property {site.field_name} is absent",
                        )
                    elif site.field.type.is_list and graph.property_value(
                        node, site.field_name
                    ) == ():
                        yield Violation(
                            "DS5",
                            site.location,
                            (node,),
                            f"required list property {site.field_name} is empty",
                        )

    def _ds6(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        for site in self._required_edge:
            for label in self._below(site.type_name):
                for node in index.nodes_by_label.get(label, ()):
                    if not graph.out_edges(node, site.field_name):
                        yield Violation(
                            "DS6",
                            site.location,
                            (node,),
                            f"required outgoing {site.field_name} edge is absent",
                        )

    def _ds7(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        for site_index, site in enumerate(self._keys):
            scalar_fields = self.plan.key_scalar_fields[site_index]
            groups: dict[tuple, list["ElementId"]] = {}
            for label in self._below(site.type_name):
                for node in index.nodes_by_label.get(label, ()):
                    signature = tuple(
                        value_signature(graph.property_value(node, field_name))
                        if graph.has_property(node, field_name)
                        else _MISSING
                        for field_name in scalar_fields
                    )
                    groups.setdefault(signature, []).append(node)
            for group in groups.values():
                for v1, v2 in _ordered_pairs(group):
                    yield Violation(
                        "DS7",
                        site.location,
                        (v1, v2),
                        "two distinct nodes agree on all key fields",
                    )

    # ------------------------------------------------------------------ #
    # strong satisfaction
    # ------------------------------------------------------------------ #

    def _ss1(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        object_types = self.schema.object_types
        for label, nodes in index.nodes_by_label.items():
            if label in object_types:
                continue
            for node in nodes:
                yield Violation(
                    "SS1", "", (node,), f"label {label} is not an object type"
                )

    def _ss2(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        schema = self.schema
        for node, name, _value in index.node_properties:
            ref = schema.type_f(graph.label(node), name)
            if ref is None:
                yield Violation(
                    "SS2",
                    f"{graph.label(node)}.{name}",
                    (node,),
                    f"property {name} is not a field of {graph.label(node)}",
                )
            elif not schema.is_scalar_type(ref.base):
                yield Violation(
                    "SS2",
                    f"{graph.label(node)}.{name}",
                    (node,),
                    f"property {name} corresponds to a relationship field",
                )

    def _ss3(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        schema = self.schema
        for edge, name, _value in index.edge_properties:
            source, _target = graph.endpoints(edge)
            type_name, field_name = graph.label(source), graph.label(edge)
            if name not in schema.args(type_name, field_name):
                yield Violation(
                    "SS3",
                    f"{type_name}.{field_name}({name})",
                    (edge,),
                    f"edge property {name} is not a declared argument",
                )

    def _ss4(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        schema = self.schema
        for edge in graph.edges:
            source, _target = graph.endpoints(edge)
            type_name, field_name = graph.label(source), graph.label(edge)
            ref = schema.type_f(type_name, field_name)
            if ref is None:
                yield Violation(
                    "SS4",
                    f"{type_name}.{field_name}",
                    (edge,),
                    f"edge label {field_name} is not a field of {type_name}",
                )
            elif schema.is_scalar_type(ref.base):
                yield Violation(
                    "SS4",
                    f"{type_name}.{field_name}",
                    (edge,),
                    f"edge label {field_name} corresponds to an attribute field",
                )


    # ------------------------------------------------------------------ #
    # extension rules (not part of Definitions 5.1-5.3)
    # ------------------------------------------------------------------ #

    def _ep1(self, graph: "PropertyGraph", index: "_GraphIndex") -> Iterator[Violation]:
        """§3.5 in prose: a non-null, default-less field argument makes the
        corresponding edge property mandatory."""
        schema = self.schema
        for (source, label), edges in index.by_source_label.items():
            field_def = schema.field(graph.label(source), label)
            if field_def is None:
                continue
            mandatory = [
                argument.name
                for argument in field_def.arguments
                if argument.type.non_null and not argument.has_default
            ]
            if not mandatory:
                continue
            for edge in edges:
                for name in mandatory:
                    if not graph.has_property(edge, name):
                        yield Violation(
                            "EP1",
                            f"{graph.label(source)}.{label}({name})",
                            (edge,),
                            f"mandatory edge property {name} is absent",
                        )


class _GraphIndex:
    """One-pass hash indexes over a Property Graph, built per validation."""

    def __init__(self, graph: "PropertyGraph") -> None:
        self.nodes_by_label: dict[str, list["ElementId"]] = {}
        for node in graph.nodes:
            self.nodes_by_label.setdefault(graph.label(node), []).append(node)

        self.by_source_label: dict[tuple, list["ElementId"]] = {}
        self.by_target_label: dict[tuple, list["ElementId"]] = {}
        self.by_endpoints_label: dict[tuple, list["ElementId"]] = {}
        self.loops_by_label: dict[str, list["ElementId"]] = {}
        for edge in graph.edges:
            source, target = graph.endpoints(edge)
            label = graph.label(edge)
            self.by_source_label.setdefault((source, label), []).append(edge)
            self.by_target_label.setdefault((target, label), []).append(edge)
            self.by_endpoints_label.setdefault((source, target, label), []).append(edge)
            if source == target:
                self.loops_by_label.setdefault(label, []).append(edge)

        self.node_properties: list[tuple["ElementId", str, object]] = []
        self.edge_properties: list[tuple["ElementId", str, object]] = []
        for element, name, value in graph.property_items():
            if graph.is_node(element):
                self.node_properties.append((element, name, value))
            else:
                self.edge_properties.append((element, name, value))


def _ordered_pairs(elements: list) -> Iterator[tuple]:
    """All unordered pairs of *elements*, each in canonical order."""
    ordered = sorted(elements, key=str)
    for i, first in enumerate(ordered):
        for second in ordered[i + 1 :]:
            yield canonical_pair(first, second)
