"""Facade over the validation engines.

:func:`validate` decides the Schema Validation Problem of Section 6.1 for
one (schema, graph) pair; the convenience predicates mirror the paper's
three satisfaction notions.

Validator construction goes through the compiled-plan cache
(:func:`repro.validation.plan.compile_plan`), so repeated ``validate()``
calls against the same schema no longer repay the schema-analysis cost
(site tables, label closures) on every call.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .indexed import IndexedValidator
from .naive import NaiveValidator
from .parallel import ParallelValidator
from .plan import compile_plan
from .violations import ValidationReport

if TYPE_CHECKING:  # pragma: no cover
    from ..pg.model import PropertyGraph
    from ..resilience import Budget
    from ..schema.model import GraphQLSchema

ENGINES = ("indexed", "naive", "parallel")


def make_validator(
    schema: "GraphQLSchema",
    engine: str = "indexed",
    jobs: int | None = None,
    executor: str = "auto",
    budget: "Budget | None" = None,
    on_budget: str = "unknown",
):
    """Instantiate a validator by engine name.

    Args:
        engine: ``"indexed"``, ``"naive"`` or ``"parallel"``.
        jobs: Worker count for the parallel engine (default: all usable
            cores); ignored by the sequential engines.
        executor: Executor policy for the parallel engine (``"auto"``,
            ``"serial"``, ``"thread"`` or ``"process"``).
        budget: Template :class:`~repro.resilience.Budget`; each
            ``validate()`` call runs under a fresh renewal of it.
        on_budget: ``"unknown"`` (default) turns budget exhaustion into a
            partial report with ``complete=False``; ``"error"`` raises
            :class:`~repro.errors.BudgetExhaustedError` instead.
    """
    if engine == "indexed":
        return IndexedValidator(
            schema, plan=compile_plan(schema), budget=budget, on_budget=on_budget
        )
    if engine == "naive":
        return NaiveValidator(schema, budget=budget, on_budget=on_budget)
    if engine == "parallel":
        return ParallelValidator(
            schema,
            jobs=jobs,
            executor=executor,
            plan=compile_plan(schema),
            budget=budget,
            on_budget=on_budget,
        )
    raise ValueError(f"unknown validation engine: {engine!r}")


def validate(
    schema: "GraphQLSchema",
    graph: "PropertyGraph",
    mode: str = "strong",
    engine: str = "indexed",
    jobs: int | None = None,
    budget: "Budget | None" = None,
    on_budget: str = "unknown",
) -> ValidationReport:
    """Validate *graph* against *schema*.

    Args:
        mode: ``"weak"`` (Definition 5.1), ``"directives"`` (Definition 5.2)
            or ``"strong"`` (Definition 5.3, the default -- this is the
            Schema Validation Problem).
        engine: ``"indexed"`` (near-linear; default), ``"naive"``
            (quantifier-faithful baseline) or ``"parallel"`` (compiled
            plans fanned over worker shards).
        jobs: Worker count for the parallel engine.
        budget: Optional execution budget; when it runs out the report is
            returned *partial* (``complete=False``, ``verdict=="unknown"``
            unless violations were already found) rather than wrong.
        on_budget: ``"unknown"`` or ``"error"`` -- see :func:`make_validator`.
    """
    return make_validator(
        schema, engine, jobs=jobs, budget=budget, on_budget=on_budget
    ).validate(graph, mode)


def weakly_satisfies(schema: "GraphQLSchema", graph: "PropertyGraph") -> bool:
    """Definition 5.1: does the graph weakly satisfy the schema?"""
    return validate(schema, graph, mode="weak").conforms


def satisfies_directives(schema: "GraphQLSchema", graph: "PropertyGraph") -> bool:
    """Definition 5.2: does the graph satisfy the schema's directives?"""
    return validate(schema, graph, mode="directives").conforms


def strongly_satisfies(schema: "GraphQLSchema", graph: "PropertyGraph") -> bool:
    """Definition 5.3: does the graph strongly satisfy the schema?"""
    return validate(schema, graph, mode="strong").conforms
