"""Facade over the validation engines.

:func:`validate` decides the Schema Validation Problem of Section 6.1 for
one (schema, graph) pair; the convenience predicates mirror the paper's
three satisfaction notions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .indexed import IndexedValidator
from .naive import NaiveValidator
from .violations import ValidationReport

if TYPE_CHECKING:  # pragma: no cover
    from ..pg.model import PropertyGraph
    from ..schema.model import GraphQLSchema

_ENGINES = {"indexed": IndexedValidator, "naive": NaiveValidator}


def make_validator(schema: "GraphQLSchema", engine: str = "indexed"):
    """Instantiate a validator by engine name ("indexed" or "naive")."""
    try:
        return _ENGINES[engine](schema)
    except KeyError:
        raise ValueError(f"unknown validation engine: {engine!r}") from None


def validate(
    schema: "GraphQLSchema",
    graph: "PropertyGraph",
    mode: str = "strong",
    engine: str = "indexed",
) -> ValidationReport:
    """Validate *graph* against *schema*.

    Args:
        mode: ``"weak"`` (Definition 5.1), ``"directives"`` (Definition 5.2)
            or ``"strong"`` (Definition 5.3, the default -- this is the
            Schema Validation Problem).
        engine: ``"indexed"`` (near-linear; default) or ``"naive"``
            (quantifier-faithful baseline).
    """
    return make_validator(schema, engine).validate(graph, mode)


def weakly_satisfies(schema: "GraphQLSchema", graph: "PropertyGraph") -> bool:
    """Definition 5.1: does the graph weakly satisfy the schema?"""
    return validate(schema, graph, mode="weak").conforms


def satisfies_directives(schema: "GraphQLSchema", graph: "PropertyGraph") -> bool:
    """Definition 5.2: does the graph satisfy the schema's directives?"""
    return validate(schema, graph, mode="directives").conforms


def strongly_satisfies(schema: "GraphQLSchema", graph: "PropertyGraph") -> bool:
    """Definition 5.3: does the graph strongly satisfy the schema?"""
    return validate(schema, graph, mode="strong").conforms
