"""Crash-resumable CDC validation: consume a mutation journal, keep the
violation set current, survive being killed at any point.

:class:`CDCConsumer` drives an :class:`IncrementalValidator` from an
ordered :class:`~repro.validation.journal.MutationJournal`.  Events are
applied *transactionally per commit marker*; at each marker the consumer
diffs the violation set against the previous commit and emits
deterministic :class:`ViolationEvent` APPEARED/DISAPPEARED deltas -- the
PG-Schema framing that violation *transitions*, not end states, are the
operational contract for a living graph.  ``set_schema`` events route
through :func:`repro.evolution.diff_schemas`: when the change set is
scope-local (no subtype/union/interface/enum surgery) the validator is
*migrated* -- only scopes under the labels the diff names are rechecked
(:func:`~repro.validation.incremental.migrated_validator`); anything
structural falls back to a full rebuild.

Durability is the headline.  Every ``checkpoint_every`` commits the
consumer writes an atomic checkpoint (tmp file + fsync + rename into
``checkpoint_dir``) holding the journal byte offset / sequence / line,
the commit counter, the serialized graph, the current schema SDL, the
violation store, the emitted-events byte offset, and a SHA-256 digest
over the whole payload.  Recovery walks a ladder:

1. newest checkpoint whose digest verifies *and* whose violation store
   matches a validator rebuilt from its own graph (scope-state check);
2. the previous checkpoint, on corruption/truncation;
3. cold replay from offset 0.

The events log is truncated back to the checkpointed offset before the
journal suffix replays, so a crashed-and-resumed run produces an events
file and final report *byte-identical* to an uninterrupted run -- the
property the crash tests enforce with fault-injected kills at the
``cdc.apply`` / ``cdc.checkpoint`` / ``cdc.recover`` sites (all under
``PGSCHEMA_FAULTS``).  Transient apply faults are retried with
exponential backoff *before* any mutation lands; budget exhaustion
surfaces as a typed UNKNOWN/partial report frozen at the last completed
commit boundary.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Any

from .. import obs
from ..errors import BudgetExhaustedError, GraphLoadError, ReproError
from ..evolution import SchemaDiff, diff_schemas
from ..pg.io import graph_from_dict, graph_to_dict
from ..pg.model import PropertyGraph
from ..resilience import faults
from ..schema.build import parse_schema
from ..schema.printer import print_schema
from .incremental import IncrementalValidator, migrated_validator
from .journal import MutationEvent, MutationJournal
from .sites import labels_below
from .violations import ValidationReport, Violation

if TYPE_CHECKING:  # pragma: no cover
    from ..resilience import Budget
    from ..schema.model import GraphQLSchema

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CDCConsumer",
    "CDCResult",
    "ViolationEvent",
]

CHECKPOINT_FORMAT = "pgschema-cdc-checkpoint"
CHECKPOINT_VERSION = 1

#: How many committed checkpoints to keep (newest + its fallback).
_KEEP_CHECKPOINTS = 2

APPEARED = "appeared"
DISAPPEARED = "disappeared"


@dataclass(frozen=True)
class ViolationEvent:
    """One violation transition observed at a commit boundary.

    Attributes:
        kind: ``"appeared"`` or ``"disappeared"``.
        commit: 1-based index of the commit whose application caused it.
        rule: The satisfaction rule id (``"WS1"`` ... ``"SS4"``).
        location: The schema location imposing the constraint.
        elements: The witnessing graph elements.
        detail: The violation's human-readable detail (for DISAPPEARED,
            the detail the violation carried while it existed).
    """

    kind: str
    commit: int
    rule: str
    location: str
    elements: tuple
    detail: str = ""

    def to_json(self) -> dict[str, Any]:
        return {
            "event": self.kind,
            "commit": self.commit,
            "rule": self.rule,
            "location": self.location,
            "elements": list(self.elements),
            "detail": self.detail,
        }

    def __str__(self) -> str:
        sign = "+" if self.kind == APPEARED else "-"
        where = f" [{self.location}]" if self.location else ""
        subject = ", ".join(str(element) for element in self.elements)
        return f"{sign}{self.rule}{where} ({subject}) @commit {self.commit}"


@dataclass
class CDCResult:
    """The outcome of one :meth:`CDCConsumer.run`."""

    report: ValidationReport
    events: list[ViolationEvent]
    commits: int
    events_applied: int
    recovered_from: str | None
    checkpoints_written: int
    retries: int

    @property
    def conforms(self) -> bool:
        return self.report.conforms


def _violation_state(report: ValidationReport) -> list[list[Any]]:
    """Canonical JSON-friendly form of a report's violation multiset."""
    entries = [
        [violation.rule, violation.location, list(violation.elements), violation.detail]
        for violation in report.violations
    ]
    entries.sort(key=lambda entry: json.dumps(entry, sort_keys=True, default=str))
    return entries


def _digest(payload: dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _event_sort_key(key: tuple) -> tuple[str, str, list[str]]:
    rule, location, elements = key
    return (str(rule), str(location), [str(element) for element in elements])


def _affected_labels(
    old: "GraphQLSchema", new: "GraphQLSchema", diff: SchemaDiff
) -> frozenset[str] | None:
    """The labels whose scopes a schema change can touch, or None.

    Returns None (→ full rebuild) whenever the change alters the subtype
    relation or a value domain out from under unchanged declarations:
    interface/union membership, enum value sets, custom scalar sets, or
    any change the diff locates at a union/interface/enum/scalar.  For
    the remaining (object-type-local) changes the affected labels are the
    labels below each named type in *both* schemas, plus -- for
    relationship fields -- the labels below the field's target family
    (the DS4 target side lives in the target node's scope).
    """
    if set(old.interface_types) != set(new.interface_types):
        return None
    if set(old.union_types) != set(new.union_types):
        return None
    for union_name in old.union_types:
        if old.union(union_name) != new.union(union_name):
            return None
    for interface_name in old.interface_types:
        if old.implementation(interface_name) != new.implementation(interface_name):
            return None
    if old.scalars.custom_names != new.scalars.custom_names:
        return None
    for name in old.scalars.custom_names:
        if old.scalars.is_enum(name) != new.scalars.is_enum(name):
            return None
        if old.scalars.is_enum(name) and (
            old.scalars.enum_values(name) != new.scalars.enum_values(name)
        ):
            return None

    affected: set[str] = set()

    def add_type(type_name: str) -> None:
        affected.update(labels_below(old, type_name))
        affected.update(labels_below(new, type_name))

    for change in diff.changes:
        location = change.location
        if location.startswith(("union ", "interface ", "enum ", "scalar ")):
            return None
        if location.startswith("type "):
            add_type(location[len("type "):])
            continue
        head, _, rest = location.partition(".")
        field_name = rest.split("(", 1)[0]
        if not head or not field_name:
            return None
        add_type(head)
        for schema in (old, new):
            ref = schema.type_f(head, field_name)
            if ref is not None and not schema.is_scalar_type(ref.base):
                affected.update(labels_below(schema, ref.base))
    return frozenset(affected)


class CDCConsumer:
    """Applies a mutation journal to a validated graph, resumably.

    Args:
        schema: The initial schema (``set_schema`` events may replace it).
        journal: The mutation journal (path or :class:`MutationJournal`).
        base_graph: Optional starting graph (copied; the original is not
            mutated).  Defaults to an empty graph.
        checkpoint_dir: Where to write checkpoints; None disables both
            checkpointing and resume.
        checkpoint_every: Commits between checkpoints.
        events_path: Optional JSONL file receiving every
            :class:`ViolationEvent` (the byte-identical-stream surface).
        budget: Optional :class:`~repro.resilience.Budget` template;
            charged ``len(commit)`` nodes + a deadline check per commit,
            *before* the commit applies, so exhaustion always leaves the
            consumer at a commit boundary.
        on_budget: ``"unknown"`` (partial report) or ``"error"`` (raise).
        retry_attempts: Extra attempts for transient apply failures.
        retry_base_delay: Backoff base (doubles per retry).
    """

    def __init__(
        self,
        schema: "GraphQLSchema",
        journal: "MutationJournal | str | os.PathLike[str]",
        *,
        base_graph: "PropertyGraph | None" = None,
        checkpoint_dir: "str | os.PathLike[str] | None" = None,
        checkpoint_every: int = 16,
        events_path: "str | os.PathLike[str] | None" = None,
        budget: "Budget | None" = None,
        on_budget: str = "unknown",
        retry_attempts: int = 2,
        retry_base_delay: float = 0.05,
    ) -> None:
        if on_budget not in ("unknown", "error"):
            raise ValueError(f"on_budget must be 'unknown' or 'error', got {on_budget!r}")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self._initial_schema = schema
        self._journal = (
            journal if isinstance(journal, MutationJournal) else MutationJournal(journal)
        )
        self._base_graph_dict = (
            graph_to_dict(base_graph) if base_graph is not None else None
        )
        self._checkpoint_dir = (
            os.fspath(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self._events_path = os.fspath(events_path) if events_path is not None else None
        self.budget = budget
        self.on_budget = on_budget
        self.retry_attempts = retry_attempts
        self.retry_base_delay = retry_base_delay
        if self._checkpoint_dir is not None:
            os.makedirs(self._checkpoint_dir, exist_ok=True)
        # consume-time state (set by _start)
        self._validator: IncrementalValidator | None = None
        self._schema: "GraphQLSchema" = schema
        self._schema_sdl = ""
        self._offset = 0
        self._seq = 0
        self._line = 0
        self._commit_index = 0
        self._events_offset = 0
        self._events_fp: IO[bytes] | None = None
        self._last_violations: dict[tuple, Violation] = {}
        self._budget: "Budget | None" = None
        self._commits_since_checkpoint = 0
        self._checkpoints_written = 0
        self._retries = 0

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def run(self, resume: bool = False) -> CDCResult:
        """Consume the journal (optionally resuming) and return the result."""
        started = time.perf_counter()
        with obs.span("cdc.run", journal=self._journal.path, resume=resume):
            recovered_from = self._start(resume)
            try:
                result = self._consume(recovered_from)
            finally:
                self._close_events()
        elapsed = time.perf_counter() - started
        if elapsed > 0 and result.events_applied:
            obs.gauge("cdc.events_per_second", result.events_applied / elapsed)
        return result

    # ------------------------------------------------------------------ #
    # start / recovery ladder
    # ------------------------------------------------------------------ #

    def _base_graph(self) -> PropertyGraph:
        if self._base_graph_dict is None:
            return PropertyGraph()
        return graph_from_dict(self._base_graph_dict)

    def _cold_state(self) -> None:
        self._schema = self._initial_schema
        self._schema_sdl = print_schema(self._schema)
        self._validator = IncrementalValidator(self._schema, self._base_graph())
        self._offset = 0
        self._seq = 0
        self._line = 0
        self._commit_index = 0
        self._events_offset = 0
        self._last_violations = self._current_violations()

    def _start(self, resume: bool) -> str | None:
        self._budget = self.budget.renew() if self.budget is not None else None
        self._commits_since_checkpoint = 0
        self._checkpoints_written = 0
        self._retries = 0
        recovered_from: str | None = None
        if resume and self._checkpoint_dir is not None:
            recovered_from = self._recover()
        else:
            if self._checkpoint_dir is not None:
                # a fresh run invalidates checkpoints of any previous run
                self._clear_checkpoints()
            self._cold_state()
        self._open_events()
        return recovered_from

    def _recover(self) -> str:
        faults.fault_point("cdc.recover", stage="start")
        with obs.span("cdc.recover"):
            for path in self._checkpoint_candidates():
                state = self._load_checkpoint(path)
                if state is None:
                    obs.count("cdc.recover.rejected")
                    continue
                self._schema = state["schema"]
                self._schema_sdl = state["schema_sdl"]
                self._validator = state["validator"]
                self._offset = state["offset"]
                self._seq = state["seq"]
                self._line = state["line"]
                self._commit_index = state["commit"]
                self._events_offset = state["events_offset"]
                self._last_violations = self._current_violations()
                obs.instant("cdc.recovered", source=os.path.basename(path))
                return f"checkpoint:{os.path.basename(path)}"
            # recovery ladder bottom: cold replay from offset 0
            self._cold_state()
            obs.instant("cdc.recovered", source="cold")
            return "cold"

    def _checkpoint_candidates(self) -> list[str]:
        assert self._checkpoint_dir is not None
        try:
            names = os.listdir(self._checkpoint_dir)
        except OSError:
            return []
        return [
            os.path.join(self._checkpoint_dir, name)
            for name in sorted(names, reverse=True)
            if name.startswith("ckpt-") and name.endswith(".json")
        ]

    def _load_checkpoint(self, path: str) -> dict[str, Any] | None:
        """Decode and *verify* one checkpoint; None means try the next rung."""
        try:
            with open(path, "rb") as fp:
                payload = json.load(fp)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != CHECKPOINT_FORMAT:
            return None
        if payload.get("version") != CHECKPOINT_VERSION:
            return None
        stored_digest = payload.pop("digest", None)
        if stored_digest != _digest(payload):
            return None
        try:
            graph = graph_from_dict(payload["graph"])
            schema = parse_schema(payload["schema_sdl"])
            validator = IncrementalValidator(schema, graph)
        except (ReproError, KeyError, TypeError, ValueError):
            return None
        # scope-state digest: the stored violation store must match a
        # validator rebuilt from the checkpointed graph, or the checkpoint
        # is internally inconsistent (e.g. torn by a partial write that
        # still hashed correctly -- impossible for sha256, but cheap to
        # guard; mostly this catches hand-edited checkpoints)
        if _violation_state(validator.report()) != payload.get("violations"):
            return None
        offset = payload.get("offset")
        seq = payload.get("seq")
        line = payload.get("line")
        commit = payload.get("commit")
        events_offset = payload.get("events_offset")
        values = (offset, seq, line, commit, events_offset)
        if not all(isinstance(value, int) and value >= 0 for value in values):
            return None
        if offset > self._journal_size():
            return None  # checkpoint is ahead of the (truncated?) journal
        if self._events_path is not None:
            try:
                emitted = os.path.getsize(self._events_path)
            except OSError:
                emitted = 0
            if emitted < events_offset:
                return None  # events log lost bytes the checkpoint relies on
        return {
            "schema": schema,
            "schema_sdl": payload["schema_sdl"],
            "validator": validator,
            "offset": offset,
            "seq": seq,
            "line": line,
            "commit": commit,
            "events_offset": events_offset,
        }

    def _journal_size(self) -> int:
        try:
            return self._journal.size()
        except OSError:
            return 0

    def _clear_checkpoints(self) -> None:
        for path in self._checkpoint_candidates():
            try:
                os.remove(path)
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # events log
    # ------------------------------------------------------------------ #

    def _open_events(self) -> None:
        if self._events_path is None:
            return
        exists = os.path.exists(self._events_path)
        fp = open(self._events_path, "r+b" if exists else "w+b")
        # drop any events emitted after the recovery point so the replayed
        # suffix regenerates them -- this is what makes the stream exact
        fp.truncate(self._events_offset)
        fp.seek(self._events_offset)
        self._events_fp = fp

    def _close_events(self) -> None:
        if self._events_fp is not None:
            self._events_fp.flush()
            self._events_fp.close()
            self._events_fp = None

    def _write_events(self, events: list[ViolationEvent]) -> None:
        if self._events_fp is None:
            self._events_offset += sum(
                len(json.dumps(event.to_json(), sort_keys=True, separators=(",", ":")))
                + 1
                for event in events
            )
            return
        for event in events:
            blob = (
                json.dumps(event.to_json(), sort_keys=True, separators=(",", ":"))
                + "\n"
            ).encode("utf-8")
            self._events_fp.write(blob)
            self._events_offset += len(blob)

    # ------------------------------------------------------------------ #
    # the consume loop
    # ------------------------------------------------------------------ #

    def _consume(self, recovered_from: str | None) -> CDCResult:
        assert self._validator is not None
        journal_size = self._journal_size()
        pending: list[MutationEvent] = []
        all_events: list[ViolationEvent] = []
        events_applied = 0
        commits = 0
        interruption: object | None = None
        try:
            for event in self._journal.read(self._offset, self._seq, self._line):
                if event.is_commit:
                    all_events.extend(self._commit(pending, event, journal_size))
                    events_applied += len(pending)
                    commits += 1
                    pending = []
                else:
                    pending.append(event)
            if pending:
                # a journal ending without a marker: apply the tail as one
                # implicit final commit (identically on resume, since the
                # resume point is always a marker boundary)
                all_events.extend(self._commit(pending, None, journal_size))
                events_applied += len(pending)
                commits += 1
                pending = []
        except BudgetExhaustedError as exhausted:
            if self.on_budget == "error":
                raise
            interruption = exhausted.reason
            obs.instant("cdc.budget_exhausted", site=exhausted.reason.site)
        if self._checkpoint_dir is not None and self._commits_since_checkpoint:
            self._write_checkpoint()
            self._commits_since_checkpoint = 0
        report = self._validator.report()
        if interruption is not None:
            report.complete = False
            report.interruption = interruption
        return CDCResult(
            report=report,
            events=all_events,
            commits=commits,
            events_applied=events_applied,
            recovered_from=recovered_from,
            checkpoints_written=self._checkpoints_written,
            retries=self._retries,
        )

    def _commit(
        self,
        pending: list[MutationEvent],
        marker: MutationEvent | None,
        journal_size: int,
    ) -> list[ViolationEvent]:
        commit_index = self._commit_index + 1
        if self._budget is not None:
            # charge *before* mutating so exhaustion is a clean boundary
            if pending:
                self._budget.charge_nodes(len(pending), site="cdc.apply")
            self._budget.check_deadline(site="cdc.apply")
        self._apply_with_retry(pending, commit_index)
        boundary = marker if marker is not None else pending[-1]
        self._offset = boundary.end_offset
        self._seq = boundary.seq
        self._line = boundary.line
        self._commit_index = commit_index
        events = self._emit_transitions(commit_index)
        self._write_events(events)
        obs.count("cdc.commits")
        obs.count("cdc.events", len(pending))
        if events:
            obs.count("cdc.violation_events", len(events))
        obs.gauge("cdc.lag", max(0, journal_size - self._offset))
        self._commits_since_checkpoint += 1
        if (
            self._checkpoint_dir is not None
            and self._commits_since_checkpoint >= self.checkpoint_every
        ):
            self._write_checkpoint()
            self._commits_since_checkpoint = 0
        return events

    def _apply_with_retry(self, pending: list[MutationEvent], commit_index: int) -> None:
        attempt = 0
        while True:
            try:
                # the fault point sits *before* any mutation: an injected
                # transient failure retries against untouched state
                faults.fault_point("cdc.apply", commit=commit_index, attempt=attempt)
                with obs.span("cdc.apply", commit=commit_index, events=len(pending)):
                    for event in pending:
                        self._apply_event(event)
                return
            except ReproError:
                raise  # permanent: the journal cannot apply to this graph
            except Exception:
                if attempt >= self.retry_attempts:
                    raise
                attempt += 1
                self._retries += 1
                obs.count("cdc.apply.retries")
                obs.instant("cdc.retry", commit=commit_index, attempt=attempt)
                delay = self.retry_base_delay * (2 ** (attempt - 1))
                if delay > 0:
                    time.sleep(delay)

    def _apply_event(self, event: MutationEvent) -> None:
        assert self._validator is not None
        record = event.record
        op = event.op
        try:
            if op == "add_node":
                self._validator.add_node(
                    record["id"], record["label"], record.get("properties")
                )
            elif op == "remove_node":
                self._validator.remove_node(record["id"])
            elif op == "add_edge":
                self._validator.add_edge(
                    record["id"],
                    record["source"],
                    record["target"],
                    record["label"],
                    record.get("properties"),
                )
            elif op == "remove_edge":
                self._validator.remove_edge(record["id"])
            elif op == "set_property":
                self._validator.set_property(
                    record["id"], record["name"], record["value"]
                )
            elif op == "remove_property":
                self._validator.remove_property(record["id"], record["name"])
            elif op == "set_schema":
                self._apply_schema_change(record["sdl"])
            else:  # pragma: no cover - the journal shape-check forbids this
                raise GraphLoadError(
                    f"unknown journal op {op!r}",
                    source=self._journal.path,
                    line=event.line,
                    column=1,
                )
        except GraphLoadError:
            raise
        except (ReproError, TypeError, ValueError) as bad:
            raise GraphLoadError(
                f"cannot apply {op} event: {bad}",
                source=self._journal.path,
                line=event.line,
                column=1,
            ) from bad

    # ------------------------------------------------------------------ #
    # schema-change events
    # ------------------------------------------------------------------ #

    def _apply_schema_change(self, sdl: str) -> None:
        assert self._validator is not None
        new_schema = parse_schema(sdl)
        with obs.span("cdc.schema_change"):
            diff = diff_schemas(self._schema, new_schema)
            obs.count("cdc.schema_changes")
            affected = _affected_labels(self._schema, new_schema, diff)
            if affected is None:
                # structural change (subtyping / value domains): rebuild
                self._validator = IncrementalValidator(
                    new_schema, self._validator.graph
                )
                obs.count("cdc.schema_rebuilds")
            elif affected or diff.changes:
                self._validator, rechecked = migrated_validator(
                    self._validator, new_schema, affected
                )
                obs.count("cdc.schema_migrations")
                obs.count("cdc.schema_rechecked_scopes", rechecked)
            # an empty diff with identical structure: keep the validator
            self._schema = new_schema
            self._schema_sdl = print_schema(new_schema)

    # ------------------------------------------------------------------ #
    # violation transitions
    # ------------------------------------------------------------------ #

    def _current_violations(self) -> dict[tuple, Violation]:
        assert self._validator is not None
        current: dict[tuple, Violation] = {}
        for violation in self._validator.report().violations:
            key = violation.key()
            kept = current.get(key)
            # order-independent representative when identities collide
            if kept is None or violation.detail < kept.detail:
                current[key] = violation
        return current

    def _emit_transitions(self, commit_index: int) -> list[ViolationEvent]:
        current = self._current_violations()
        previous = self._last_violations
        events: list[ViolationEvent] = []
        for key in sorted(set(current) - set(previous), key=_event_sort_key):
            rule, location, elements = key
            events.append(
                ViolationEvent(
                    APPEARED, commit_index, rule, location, elements,
                    current[key].detail,
                )
            )
        for key in sorted(set(previous) - set(current), key=_event_sort_key):
            rule, location, elements = key
            events.append(
                ViolationEvent(
                    DISAPPEARED, commit_index, rule, location, elements,
                    previous[key].detail,
                )
            )
        self._last_violations = current
        return events

    # ------------------------------------------------------------------ #
    # checkpoints
    # ------------------------------------------------------------------ #

    def _write_checkpoint(self) -> None:
        assert self._validator is not None and self._checkpoint_dir is not None
        faults.fault_point(
            "cdc.checkpoint", commit=self._commit_index, phase="begin"
        )
        with obs.span("cdc.checkpoint", commit=self._commit_index):
            if self._events_fp is not None:
                # the checkpoint pins the events-log length: make those
                # bytes durable before anything references them
                self._events_fp.flush()
                os.fsync(self._events_fp.fileno())
            payload: dict[str, Any] = {
                "format": CHECKPOINT_FORMAT,
                "version": CHECKPOINT_VERSION,
                "journal": os.path.basename(self._journal.path),
                "offset": self._offset,
                "seq": self._seq,
                "line": self._line,
                "commit": self._commit_index,
                "events_offset": self._events_offset,
                "schema_sdl": self._schema_sdl,
                "graph": graph_to_dict(self._validator.graph),
                "violations": _violation_state(self._validator.report()),
            }
            payload["digest"] = _digest(
                {key: value for key, value in payload.items() if key != "digest"}
            )
            blob = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
            final = os.path.join(
                self._checkpoint_dir, f"ckpt-{self._commit_index:010d}.json"
            )
            tmp = final + ".tmp"
            with open(tmp, "wb") as fp:
                fp.write(blob)
                fp.flush()
                os.fsync(fp.fileno())
            # a crash between here and the rename leaves only the tmp file,
            # which recovery ignores -- the previous checkpoint still wins
            faults.fault_point(
                "cdc.checkpoint", commit=self._commit_index, phase="rename"
            )
            os.replace(tmp, final)
            self._checkpoints_written += 1
            obs.gauge("cdc.checkpoint_bytes", len(blob))
            obs.count("cdc.checkpoints")
            self._prune_checkpoints(keep=final)

    def _prune_checkpoints(self, keep: str) -> None:
        assert self._checkpoint_dir is not None
        candidates = self._checkpoint_candidates()
        for stale in candidates[_KEEP_CHECKPOINTS:]:
            try:
                os.remove(stale)
            except OSError:
                pass
        for name in os.listdir(self._checkpoint_dir):
            if name.endswith(".json.tmp"):
                stale = os.path.join(self._checkpoint_dir, name)
                if stale != keep + ".tmp":
                    try:
                        os.remove(stale)
                    except OSError:
                        pass
