"""Scope-aware partitioning of a Property Graph into validation shards.

Theorem 1 places schema validation in AC0, so the work parallelises -- but
only if no rule's *scope* spans two workers.  The satisfaction rules fall
into three scope classes:

* **per-element** rules (WS1-WS3, DS2, DS4-DS6, SS1-SS4, EP1) read one node
  or one edge (plus that element's incident edges, which every worker can
  reach because workers share the whole graph);
* **edge-group** rules -- WS4 and DS1 quantify over the edges of one
  (source, label) group, DS3 over one (target, label) group;
* **key-group** rules -- DS7 quantifies over nodes agreeing on a key-value
  signature, which is only known after reading the nodes.

:func:`partition_graph` therefore shards each class independently: nodes and
edges by a *stable* hash of their identifier, edge groups by a hash of their
group key, so a group never straddles two shards.  DS7 is resolved by the
merge step instead (workers emit ``(site, signature, node)`` triples, the
merger groups them), because co-locating equal signatures would require
computing every signature up front -- exactly the work being distributed.

Shards carry pre-resolved *records* -- ``(node, label)`` pairs and
``(edge, source, target, edge label, source label, target label)`` tuples --
so the shard kernel never pays a per-element ``graph.label()`` /
``graph.endpoints()`` call on its hot paths; the single bulk resolution pass
happens here (in :meth:`PropertyGraph.edge_records`).

The hash is ``zlib.crc32`` over the stringified identifier, *not* Python's
``hash()``: the builtin is salted per process, which would make shard
assignment differ between the parent and spawned pool workers and between
runs.  Stability is what makes two parallel runs byte-identical.

Every element/group lands in exactly one shard and every shard preserves
graph iteration order, so the merged result of validating all shards equals
a sequential run (the differential tests enforce this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from zlib import crc32

if TYPE_CHECKING:  # pragma: no cover
    from ..pg.columnar import ColumnarGraph
    from ..pg.model import ElementId, PropertyGraph

#: (node, label).
NodeRecord = tuple
#: (edge, source, target, edge label, source label, target label).
EdgeRecord = tuple


def stable_bucket(key: str, num_buckets: int) -> int:
    """A process-stable bucket index for a string key."""
    return crc32(key.encode("utf-8", "surrogatepass")) % num_buckets


@dataclass
class GraphShard:
    """One worker's share of a Property Graph.

    ``source_groups`` and ``target_groups`` only carry groups with at least
    two edges -- the pairwise rules (WS4/DS1/DS3) are vacuous on singletons.
    """

    index: int
    nodes: list[NodeRecord] = field(default_factory=list)
    edges: list[EdgeRecord] = field(default_factory=list)
    #: (source, edge label, edge records) groups for WS4/DS1.
    source_groups: list[tuple["ElementId", str, list[EdgeRecord]]] = field(
        default_factory=list
    )
    #: (target, edge label, edge records) groups for DS3.
    target_groups: list[tuple["ElementId", str, list[EdgeRecord]]] = field(
        default_factory=list
    )

    def __len__(self) -> int:
        return len(self.nodes) + len(self.edges)


@dataclass
class ColumnarShard:
    """One worker's share of a :class:`~repro.pg.columnar.ColumnarGraph`.

    Because a columnar graph's rows are already label-sorted and its
    WS4/DS1/DS3 scopes are contiguous CSR slices, a shard is four integers
    and two slice lists instead of materialised record tuples: nodes and
    edges are *contiguous row ranges*, groups are ``(node position, edge
    label id, start, end)`` windows into the graph's CSR arrays.  The merge
    step sorts violations canonically, so range sharding produces reports
    byte-identical to the hash sharding of :class:`GraphShard` (the
    differential tests enforce this).
    """

    index: int
    node_start: int = 0
    node_stop: int = 0
    edge_start: int = 0
    edge_stop: int = 0
    #: (source position, edge label id, CSR start, CSR end) for WS4/DS1.
    source_groups: list[tuple[int, int, int, int]] = field(default_factory=list)
    #: (target position, edge label id, CSR start, CSR end) for DS3.
    target_groups: list[tuple[int, int, int, int]] = field(default_factory=list)

    @property
    def nodes(self) -> range:
        """The shard's node rows (sized, like GraphShard.nodes)."""
        return range(self.node_start, self.node_stop)

    @property
    def edges(self) -> range:
        """The shard's edge rows (sized, like GraphShard.edges)."""
        return range(self.edge_start, self.edge_stop)

    def __len__(self) -> int:
        return (self.node_stop - self.node_start) + (self.edge_stop - self.edge_start)


def partition_graph(
    graph: "PropertyGraph | ColumnarGraph", num_shards: int
) -> "list[GraphShard] | list[ColumnarShard]":
    """Split *graph* into ``num_shards`` scope-respecting shards.

    The assignment depends only on the graph and ``num_shards`` -- never on
    the executor or the worker count actually used -- so a report merged
    from these shards is deterministic.  Columnar graphs partition into
    :class:`ColumnarShard` row ranges (no per-element hashing at all);
    dict-backed graphs into hashed :class:`GraphShard` record lists.
    """
    num_shards = max(1, num_shards)
    if getattr(graph, "is_columnar", False):
        return partition_columnar(graph, num_shards)  # type: ignore[arg-type]
    shards = [GraphShard(index) for index in range(num_shards)]
    edge_records = graph.edge_records()
    if num_shards == 1:
        single = shards[0]
        single.nodes = list(graph.node_items())
        single.edges = edge_records
    else:
        node_lists = [shard.nodes for shard in shards]
        for record in graph.node_items():
            node_lists[crc32(str(record[0]).encode()) % num_shards].append(record)
        edge_lists = [shard.edges for shard in shards]
        for record in edge_records:
            edge_lists[crc32(str(record[0]).encode()) % num_shards].append(record)
    _collect_groups(edge_records, shards, num_shards)
    return shards


def partition_columnar(
    graph: "ColumnarGraph", num_shards: int
) -> list[ColumnarShard]:
    """Range-partition a columnar graph: contiguous node/edge row slices of
    near-equal size, groups dealt round-robin in CSR enumeration order.
    Deterministic in (graph, num_shards) alone, like :func:`partition_graph`.
    """
    num_shards = max(1, num_shards)
    num_node_rows = graph.num_nodes
    num_edge_rows = graph.num_edges
    shards = [
        ColumnarShard(
            index,
            node_start=index * num_node_rows // num_shards,
            node_stop=(index + 1) * num_node_rows // num_shards,
            edge_start=index * num_edge_rows // num_shards,
            edge_stop=(index + 1) * num_edge_rows // num_shards,
        )
        for index in range(num_shards)
    ]
    if num_shards == 1:
        shards[0].source_groups = graph.source_groups()
        shards[0].target_groups = graph.target_groups()
    else:
        for position, group in enumerate(graph.source_groups()):
            shards[position % num_shards].source_groups.append(group)
        for position, group in enumerate(graph.target_groups()):
            shards[position % num_shards].target_groups.append(group)
    return shards


def _collect_groups(
    edge_records: list[EdgeRecord],
    shards: list[GraphShard],
    num_shards: int,
) -> None:
    by_source: dict[tuple, list] = {}
    by_target: dict[tuple, list] = {}
    for record in edge_records:
        by_source.setdefault((record[1], record[3]), []).append(record)
        by_target.setdefault((record[2], record[3]), []).append(record)
    for (source, label), group in by_source.items():
        if len(group) < 2:
            continue
        bucket = (
            crc32(f"s\x00{source}\x00{label}".encode("utf-8", "surrogatepass"))
            % num_shards
        )
        shards[bucket].source_groups.append((source, label, group))
    for (target, label), group in by_target.items():
        if len(group) < 2:
            continue
        bucket = (
            crc32(f"t\x00{target}\x00{label}".encode("utf-8", "surrogatepass"))
            % num_shards
        )
        shards[bucket].target_groups.append((target, label, group))
