"""Schema validation: the satisfaction semantics of Section 5."""

from .engine import (
    ENGINES,
    make_validator,
    satisfies_directives,
    strongly_satisfies,
    validate,
    weakly_satisfies,
)
from .incremental import IncrementalValidator
from .indexed import IndexedValidator
from .naive import NaiveValidator
from .parallel import ParallelValidator
from .plan import (
    ValidationPlan,
    compile_plan,
    plan_cache_clear,
    plan_cache_info,
)
from .shard import GraphShard, partition_graph
from .violations import (
    ALL_RULES,
    DIRECTIVE_RULES,
    EXTENSION_RULES,
    RULES,
    STRONG_RULES,
    WEAK_RULES,
    ValidationReport,
    Violation,
)

__all__ = [
    "ALL_RULES",
    "DIRECTIVE_RULES",
    "ENGINES",
    "EXTENSION_RULES",
    "GraphShard",
    "IncrementalValidator",
    "IndexedValidator",
    "NaiveValidator",
    "ParallelValidator",
    "RULES",
    "STRONG_RULES",
    "ValidationPlan",
    "ValidationReport",
    "Violation",
    "WEAK_RULES",
    "compile_plan",
    "make_validator",
    "partition_graph",
    "plan_cache_clear",
    "plan_cache_info",
    "satisfies_directives",
    "strongly_satisfies",
    "validate",
    "weakly_satisfies",
]
