"""Schema validation: the satisfaction semantics of Section 5."""

from .engine import (
    make_validator,
    satisfies_directives,
    strongly_satisfies,
    validate,
    weakly_satisfies,
)
from .incremental import IncrementalValidator
from .indexed import IndexedValidator
from .naive import NaiveValidator
from .violations import (
    ALL_RULES,
    DIRECTIVE_RULES,
    EXTENSION_RULES,
    RULES,
    STRONG_RULES,
    WEAK_RULES,
    ValidationReport,
    Violation,
)

__all__ = [
    "ALL_RULES",
    "DIRECTIVE_RULES",
    "EXTENSION_RULES",
    "IncrementalValidator",
    "IndexedValidator",
    "NaiveValidator",
    "RULES",
    "STRONG_RULES",
    "ValidationReport",
    "Violation",
    "WEAK_RULES",
    "make_validator",
    "satisfies_directives",
    "strongly_satisfies",
    "validate",
    "weakly_satisfies",
]
