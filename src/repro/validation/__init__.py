"""Schema validation: the satisfaction semantics of Section 5."""

from .engine import (
    ENGINES,
    make_validator,
    satisfies_directives,
    strongly_satisfies,
    validate,
    weakly_satisfies,
)
from .cdc import CDCConsumer, CDCResult, ViolationEvent
from .incremental import IncrementalValidator, migrated_validator
from .indexed import IndexedValidator
from .journal import JournalWriter, MutationEvent, MutationJournal
from .naive import NaiveValidator
from .parallel import ParallelValidator, merge_shard_results, validate_shard
from .plan import (
    ValidationPlan,
    compile_plan,
    plan_cache_clear,
    plan_cache_info,
)
from .shard import ColumnarShard, GraphShard, partition_graph
from .stream import StreamValidator, validate_jsonl
from .violations import (
    ALL_RULES,
    DIRECTIVE_RULES,
    EXTENSION_RULES,
    RULES,
    STRONG_RULES,
    WEAK_RULES,
    ValidationReport,
    Violation,
)

__all__ = [
    "ALL_RULES",
    "CDCConsumer",
    "CDCResult",
    "ColumnarShard",
    "DIRECTIVE_RULES",
    "ENGINES",
    "EXTENSION_RULES",
    "GraphShard",
    "IncrementalValidator",
    "IndexedValidator",
    "JournalWriter",
    "MutationEvent",
    "MutationJournal",
    "NaiveValidator",
    "ParallelValidator",
    "RULES",
    "STRONG_RULES",
    "StreamValidator",
    "ValidationPlan",
    "ValidationReport",
    "Violation",
    "ViolationEvent",
    "WEAK_RULES",
    "compile_plan",
    "make_validator",
    "merge_shard_results",
    "migrated_validator",
    "partition_graph",
    "plan_cache_clear",
    "plan_cache_info",
    "satisfies_directives",
    "strongly_satisfies",
    "validate",
    "validate_jsonl",
    "validate_shard",
    "weakly_satisfies",
]
