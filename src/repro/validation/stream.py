"""Out-of-core validation: chunked streaming over JSONL graph files.

The in-memory engines assume the whole Property Graph fits in RAM.  This
module removes that assumption for graphs stored in the JSON Lines format
(:mod:`repro.pg.io`): :class:`StreamValidator` validates a JSONL file in
bounded memory by cutting it into *chunks* along the same scope boundaries
the parallel engine's partitioner uses (:mod:`repro.validation.shard`), so
no satisfaction rule ever has to see two chunks at once.

**Phase A -- route.**  One streaming pass over the file assigns every
element to a chunk by the partitioner's stable crc32 hash and appends it to
that chunk's spill file (a temporary JSONL of compact rows).  An edge is
spilled to every chunk whose rules need it, tagged with a *role bitmask*:

* ``ELEMENT`` -- the chunk hashed from the edge id runs the per-element
  rules (WS2/WS3/SS3/SS4/DS2/EP1) and owns the edge's properties;
* ``SOURCE_GROUP`` / ``TARGET_GROUP`` -- the chunks hashed from the
  ``(source, label)`` / ``(target, label)`` group keys run WS4/DS1 and DS3,
  exactly mirroring ``partition_graph``'s group placement;
* ``OUT_DEGREE`` / ``IN_DEGREE`` -- the chunks owning the source / target
  node need the edge incident so DS6's ``out_degree`` and DS4's incoming
  scan see the node's full neighbourhood.

The only whole-graph state phase A keeps resident is the node directory --
one interned label id per node id, O(|V|) ints -- needed to resolve
endpoint labels and to materialise ghost endpoint nodes.  Property values
never stay resident; they live in the spill rows of the one chunk that
needs them.

**Phase B -- validate.**  Chunks are rebuilt one at a time as small
dict-backed :class:`~repro.pg.model.PropertyGraph` instances (assigned
elements plus label-only ghost endpoints) with an explicit
:class:`~repro.validation.shard.GraphShard` listing exactly the records
each rule class should check.  The fused kernel
(:func:`~repro.validation.parallel.validate_shard`) runs unchanged, and the
chunk results merge through
:func:`~repro.validation.parallel.merge_shard_results` -- the *same* merge
the parallel engine uses, which is what makes a streamed report
byte-identical to an in-memory run of any engine, worker count or backend.

**Budgets.**  A :class:`~repro.resilience.Budget` is charged per chunk
(site ``"validation.stream"``) before the chunk is validated; exhaustion
mid-stream yields a partial report (``complete=False``) built from the
chunks that finished, or raises under ``on_budget="error"`` -- the PR 3
contract, unchanged.

**Observability.**  The run is wrapped in a ``validation.stream`` span with
``validation.stream.route`` / ``validation.stream.chunk`` children;
counters ``stream.chunks`` / ``stream.nodes`` / ``stream.edges`` and
gauges ``stream.peak_resident`` (the largest chunk graph ever alive,
|V|+|E|) and ``stream.pool.labels`` record the memory-bounding claim the
E15 benchmark asserts.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import IO, TYPE_CHECKING, Any

from .. import obs
from ..errors import BudgetExhaustedError, GraphError, GraphLoadError
from ..pg.columnar import (
    ROLE_ELEMENT,
    ROLE_IN_DEGREE,
    ROLE_OUT_DEGREE,
    ROLE_SOURCE_GROUP,
    ROLE_TARGET_GROUP,
    StringPool,
)
from ..pg.io import iter_graph_jsonl
from ..pg.model import PropertyGraph
from .parallel import ShardResult, merge_shard_results, validate_shard
from .plan import ValidationPlan, compile_plan
from .shard import GraphShard, stable_bucket
from .violations import ValidationReport, rules_for_mode

if TYPE_CHECKING:  # pragma: no cover
    from ..errors import BudgetReason
    from ..resilience import Budget
    from ..schema.model import GraphQLSchema

_ON_BUDGET = ("unknown", "error")

#: Spill files stay manageable: more chunks than this and the per-chunk
#: constant costs (open files, graph rebuilds) start to dominate.
_MAX_CHUNKS = 1024


class StreamValidator:
    """Validate a JSONL graph file chunk by chunk in bounded memory."""

    def __init__(
        self,
        schema: "GraphQLSchema",
        chunk_elements: int = 65536,
        plan: ValidationPlan | None = None,
        budget: "Budget | None" = None,
        on_budget: str = "unknown",
    ) -> None:
        if chunk_elements < 1:
            raise ValueError(f"chunk_elements must be positive, got {chunk_elements}")
        if on_budget not in _ON_BUDGET:
            raise ValueError(
                f"unknown on_budget policy {on_budget!r}; expected one of {_ON_BUDGET}"
            )
        self.schema = schema
        self.plan = plan if plan is not None else compile_plan(schema)
        self.chunk_elements = chunk_elements
        self.budget = budget
        self.on_budget = on_budget
        #: Peak ``|V| + |E|`` of any chunk graph of the last run.
        self.peak_resident = 0

    def validate(
        self,
        path: "str | os.PathLike[str]",
        mode: str = "strong",
        budget: "Budget | None" = None,
    ) -> ValidationReport:
        """Stream-validate the JSONL graph at *path*."""
        path = os.fspath(path)
        rules = rules_for_mode(mode)
        if budget is None and self.budget is not None:
            budget = self.budget.renew()
        self.peak_resident = 0
        span = obs.span("validation.stream", engine="stream", mode=mode)
        with span:
            with open(path, "r", encoding="utf-8") as fp:
                total = sum(1 for line in fp if line.strip())
            num_chunks = min(
                _MAX_CHUNKS, max(1, -(-total // self.chunk_elements))
            )
            span.set(elements=total, chunks=num_chunks)
            obs.count("stream.chunks", num_chunks)
            interruption: "BudgetReason | None" = None
            results: "list[ShardResult | None]" = [None] * num_chunks
            with tempfile.TemporaryDirectory(prefix="pgschema-stream-") as tmp:
                labels, node_labels = self._route(path, tmp, num_chunks)
                obs.gauge("stream.pool.labels", len(labels))
                try:
                    for index in range(num_chunks):
                        results[index] = self._validate_chunk(
                            os.path.join(tmp, f"chunk{index}.jsonl"),
                            index,
                            path,
                            labels,
                            node_labels,
                            rules,
                            budget,
                        )
                except BudgetExhaustedError as stop:
                    if self.on_budget == "error":
                        raise
                    interruption = stop.reason
            obs.gauge("stream.peak_resident", self.peak_resident)
            return merge_shard_results(self.plan, results, mode, rules, interruption)

    # ------------------------------------------------------------------ #
    # phase A: route records into per-chunk spill files
    # ------------------------------------------------------------------ #

    def _route(
        self, path: str, tmp: str, num_chunks: int
    ) -> tuple[StringPool, dict[Any, int]]:
        """Spill every record to its chunk(s); return the label pool and the
        resident node directory (node id -> label id)."""
        labels = StringPool()
        node_labels: dict[Any, int] = {}
        nodes = edges = 0
        with obs.span("validation.stream.route", chunks=num_chunks):
            writers: list[IO[str]] = []
            try:
                writers = [
                    open(os.path.join(tmp, f"chunk{index}.jsonl"), "w")
                    for index in range(num_chunks)
                ]
                with open(path, "r", encoding="utf-8") as fp:
                    for line, record in iter_graph_jsonl(fp, path):
                        if record["type"] == "node":
                            nodes += 1
                            node_id = record["id"]
                            label_id = labels.intern(record["label"])
                            if node_id not in node_labels:
                                node_labels[node_id] = label_id
                            chunk = stable_bucket(str(node_id), num_chunks)
                            writers[chunk].write(
                                json.dumps(
                                    [
                                        0,
                                        line,
                                        node_id,
                                        label_id,
                                        record.get("properties") or 0,
                                    ],
                                    separators=(",", ":"),
                                )
                                + "\n"
                            )
                        else:
                            edges += 1
                            edge_id = record["id"]
                            source = record["source"]
                            target = record["target"]
                            label = record["label"]
                            label_id = labels.intern(label)
                            destinations: dict[int, int] = {}
                            get = destinations.get
                            chunk = stable_bucket(str(edge_id), num_chunks)
                            destinations[chunk] = get(chunk, 0) | ROLE_ELEMENT
                            chunk = stable_bucket(
                                f"s\x00{source}\x00{label}", num_chunks
                            )
                            destinations[chunk] = get(chunk, 0) | ROLE_SOURCE_GROUP
                            chunk = stable_bucket(
                                f"t\x00{target}\x00{label}", num_chunks
                            )
                            destinations[chunk] = get(chunk, 0) | ROLE_TARGET_GROUP
                            chunk = stable_bucket(str(source), num_chunks)
                            destinations[chunk] = get(chunk, 0) | ROLE_OUT_DEGREE
                            chunk = stable_bucket(str(target), num_chunks)
                            destinations[chunk] = get(chunk, 0) | ROLE_IN_DEGREE
                            for chunk, roles in destinations.items():
                                row: list[Any] = [
                                    1,
                                    line,
                                    roles,
                                    edge_id,
                                    source,
                                    target,
                                    label_id,
                                ]
                                if roles & ROLE_ELEMENT:
                                    row.append(record.get("properties") or 0)
                                writers[chunk].write(
                                    json.dumps(row, separators=(",", ":")) + "\n"
                                )
            finally:
                for writer in writers:
                    writer.close()
        obs.count("stream.nodes", nodes)
        obs.count("stream.edges", edges)
        return labels, node_labels

    # ------------------------------------------------------------------ #
    # phase B: rebuild one chunk and run the fused kernel over it
    # ------------------------------------------------------------------ #

    def _validate_chunk(
        self,
        spill_path: str,
        index: int,
        source_name: str,
        labels: StringPool,
        node_labels: "dict[Any, int]",
        rules: tuple[str, ...],
        budget: "Budget | None",
    ) -> ShardResult:
        graph = PropertyGraph()
        shard = GraphShard(index)
        by_source: dict[tuple, list] = {}
        by_target: dict[tuple, list] = {}

        def ensure_endpoint(endpoint: Any, end: str, line: int) -> str:
            """Materialise a (possibly ghost) endpoint node; return its label."""
            label_id = node_labels.get(endpoint)
            if label_id is None:
                raise GraphLoadError(
                    f"edge {end} is not a node: {endpoint!r}",
                    source=source_name,
                    line=line,
                    column=1,
                )
            label = labels[label_id]
            if endpoint not in graph:
                graph.add_node(endpoint, label)
            return label

        with open(spill_path, "r", encoding="utf-8") as fp:
            for text in fp:
                row = json.loads(text)
                line = row[1]
                try:
                    if row[0] == 0:
                        _tag, _line, node_id, label_id, props = row
                        label = labels[label_id]
                        graph.add_node(node_id, label, props or None)
                        shard.nodes.append((node_id, label))
                        continue
                    roles = row[2]
                    edge_id, edge_source, edge_target = row[3], row[4], row[5]
                    label = labels[row[6]]
                    props = row[7] if roles & ROLE_ELEMENT else 0
                    source_label = ensure_endpoint(edge_source, "source", line)
                    target_label = ensure_endpoint(edge_target, "target", line)
                    graph.add_edge(
                        edge_id, edge_source, edge_target, label, props or None
                    )
                except GraphLoadError:
                    raise
                except (GraphError, TypeError, ValueError) as bad:
                    raise GraphLoadError(
                        f"malformed graph element: {bad}",
                        source=source_name,
                        line=line,
                        column=1,
                    ) from bad
                record = (
                    edge_id,
                    edge_source,
                    edge_target,
                    label,
                    source_label,
                    target_label,
                )
                if roles & ROLE_ELEMENT:
                    shard.edges.append(record)
                if roles & ROLE_SOURCE_GROUP:
                    by_source.setdefault((edge_source, label), []).append(record)
                if roles & ROLE_TARGET_GROUP:
                    by_target.setdefault((edge_target, label), []).append(record)
        for (group_source, label), group in by_source.items():
            if len(group) >= 2:
                shard.source_groups.append((group_source, label, group))
        for (group_target, label), group in by_target.items():
            if len(group) >= 2:
                shard.target_groups.append((group_target, label, group))
        resident = len(graph)
        if resident > self.peak_resident:
            self.peak_resident = resident
        if budget is not None:
            budget.charge_nodes(
                len(shard.nodes) + len(shard.edges), site="validation.stream"
            )
        with obs.span(
            "validation.stream.chunk", chunk=index, elements=resident
        ):
            return validate_shard(self.plan, graph, shard, rules, budget)


def validate_jsonl(
    schema: "GraphQLSchema",
    path: "str | os.PathLike[str]",
    mode: str = "strong",
    chunk_elements: int = 65536,
    budget: "Budget | None" = None,
    on_budget: str = "unknown",
) -> ValidationReport:
    """One-shot convenience wrapper around :class:`StreamValidator`."""
    return StreamValidator(
        schema,
        chunk_elements=chunk_elements,
        budget=budget,
        on_budget=on_budget,
    ).validate(path, mode=mode)
