"""Deterministic fault injection at named sites (chaos testing).

Production code calls :func:`fault_point` at a handful of *named sites*
(worker entry, tableau expansion, graph loading, ...).  When no fault plan
is installed the call is a single global load and a ``None`` check -- the
zero-overhead contract that ``bench_e12`` asserts.  When a plan is active,
matching rules fire deterministically: no randomness, no wall-clock
dependence, so every chaos test reproduces exactly.

A plan is a ``;``-separated list of rules::

    PGSCHEMA_FAULTS="crash@parallel.worker:shard=1,attempt=0,mode=exit;delay@dl.tableau:seconds=0.05,times=1"

Each rule is ``KIND@SITE[:key=value,...]`` where KIND is one of

* ``crash`` -- die at the site.  ``mode=exit`` hard-kills the process via
  ``os._exit`` *when running inside a registered pool worker* (simulating a
  segfault/OOM-kill, which surfaces as ``BrokenProcessPool`` in the parent);
  anywhere else -- and with the default ``mode=raise`` -- it raises
  :class:`InjectedCrashError` instead, so a stray plan can never kill the
  main process.
* ``delay`` -- sleep for ``seconds=...`` (simulating a stuck worker or a
  slow disk; pairs with deadline budgets and shard timeouts).
* ``spike`` -- transiently allocate ``bytes=...`` (simulating an
  allocation spike; pairs with memory-estimate budgets).

Reserved parameter keys: ``seconds``, ``bytes``, ``times`` (fire at most N
times per process), ``mode``.  Every *other* ``key=value`` pair is a context
matcher compared (as strings) against the keyword arguments the site passes
to :func:`fault_point` -- unmatched context means the rule does not fire.
Matching on ``attempt=0`` is the recommended way to make a fault fire on the
first try and vanish on retry: it is deterministic across process
boundaries, where per-process ``times`` counters reset.

The environment variable is parsed once, lazily at first use, so a
malformed spec raises a catchable :class:`~repro.errors.FaultConfigError`
(the CLI reports it as ``error[E_FAULTS]``) instead of crashing at import.
Tests install plans programmatically (:func:`install` / :func:`uninstall`,
which restores the environment-derived plan).  The parallel validator
re-installs the active spec inside pool workers, so plans survive any
multiprocessing start method.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from .. import obs
from ..errors import FaultConfigError

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "InjectedCrashError",
    "active_plan",
    "active_spec",
    "enabled",
    "fault_point",
    "install",
    "load_env_plan",
    "mark_worker_process",
    "parse_spec",
    "uninstall",
]

ENV_VAR = "PGSCHEMA_FAULTS"

_KINDS = ("crash", "delay", "spike")
_PARAM_KEYS = frozenset({"seconds", "bytes", "times", "mode"})


class InjectedCrashError(RuntimeError):
    """An injected worker crash.  Deliberately *not* a ReproError: it
    simulates arbitrary worker death, which recovery must survive without
    recognising it."""


@dataclass
class FaultRule:
    """One fault: fire ``kind`` at ``site`` when the context matches."""

    kind: str
    site: str
    match: dict[str, str] = field(default_factory=dict)
    seconds: float = 0.0
    bytes: int = 0
    times: int | None = None
    mode: str = "raise"
    fired: int = 0

    def matches(self, context: dict) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        for key, expected in self.match.items():
            if key not in context or str(context[key]) != expected:
                return False
        return True


class FaultPlan:
    """A parsed set of fault rules plus the spec they came from."""

    def __init__(self, rules: list[FaultRule], spec: str) -> None:
        self.rules = rules
        self.spec = spec
        self._sites = frozenset(rule.site for rule in rules)

    def apply(self, site: str, context: dict) -> None:
        if site not in self._sites:
            return
        for rule in self.rules:
            if rule.site == site and rule.matches(context):
                rule.fired += 1
                # record before triggering, so raise-mode crashes still
                # leave their mark on the trace (an exit-mode worker kill
                # takes its buffered events with it -- the parent-side
                # ladder.recovery event is the surviving evidence)
                obs.count(f"faults.fired.{rule.kind}")
                obs.instant(f"fault.{rule.kind}", **{"site": site, **context})
                _trigger(rule, site, context)

    def fired_count(self, site: str | None = None) -> int:
        """Total firings (for tests asserting a fault actually tripped)."""
        return sum(
            rule.fired for rule in self.rules if site is None or rule.site == site
        )


def _trigger(rule: FaultRule, site: str, context: dict) -> None:
    if rule.kind == "delay":
        time.sleep(rule.seconds)
    elif rule.kind == "spike":
        # allocate and immediately release: enough to register on a
        # cooperative memory budget or an RSS watcher, without leaking
        ballast = bytearray(rule.bytes)
        del ballast
    elif rule.kind == "crash":
        if rule.mode == "exit" and _in_worker_process:
            os._exit(70)
        raise InjectedCrashError(
            f"injected crash at {site} (context {context!r})"
        )


# --------------------------------------------------------------------------- #
# spec parsing
# --------------------------------------------------------------------------- #


def parse_spec(spec: str) -> FaultPlan:
    """Parse a ``PGSCHEMA_FAULTS`` specification string."""
    rules: list[FaultRule] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        head, _, tail = chunk.partition(":")
        kind, at, site = head.partition("@")
        kind = kind.strip()
        site = site.strip()
        if not at or kind not in _KINDS or not site:
            raise FaultConfigError(
                f"bad fault rule {chunk!r}: expected KIND@SITE[:k=v,...] "
                f"with KIND in {_KINDS}"
            )
        rule = FaultRule(kind=kind, site=site)
        for pair in filter(None, (p.strip() for p in tail.split(","))):
            key, eq, value = pair.partition("=")
            key = key.strip()
            value = value.strip()
            if not eq or not key:
                raise FaultConfigError(f"bad fault parameter {pair!r} in {chunk!r}")
            try:
                if key == "seconds":
                    rule.seconds = float(value)
                elif key == "bytes":
                    rule.bytes = int(value)
                elif key == "times":
                    rule.times = int(value)
                elif key == "mode":
                    if value not in ("raise", "exit"):
                        raise FaultConfigError(
                            f"bad crash mode {value!r} (expected raise|exit)"
                        )
                    rule.mode = value
                else:
                    rule.match[key] = value
            except ValueError as bad:
                raise FaultConfigError(
                    f"bad fault parameter {pair!r} in {chunk!r}: {bad}"
                ) from None
        rules.append(rule)
    return FaultPlan(rules, spec)


# --------------------------------------------------------------------------- #
# module state: the active plan
# --------------------------------------------------------------------------- #

_in_worker_process = False

#: Sentinel: the environment variable has not been parsed yet.  Parsing is
#: deferred so a malformed ``PGSCHEMA_FAULTS`` surfaces as a catchable
#: :class:`~repro.errors.FaultConfigError` at first use (the CLI renders it
#: as ``error[E_FAULTS]``) instead of a raw traceback at import time.
_UNSET = object()


def _plan_from_env() -> FaultPlan | None:
    spec = os.environ.get(ENV_VAR)
    return parse_spec(spec) if spec else None


_env_plan: "FaultPlan | None | object" = _UNSET
_plan: "FaultPlan | None | object" = _UNSET


def _current_plan() -> FaultPlan | None:
    """The active plan, parsing the environment spec on first use."""
    global _env_plan, _plan
    if _plan is _UNSET:
        if _env_plan is _UNSET:
            _env_plan = _plan_from_env()
        _plan = _env_plan
    return _plan  # type: ignore[return-value]


def load_env_plan() -> FaultPlan | None:
    """Force-parse ``PGSCHEMA_FAULTS`` now (raising FaultConfigError on a
    bad spec).  The CLI calls this inside its error-handled path so operator
    typos fail fast and uniformly."""
    return _current_plan()


def install(spec: "str | FaultPlan | None") -> FaultPlan | None:
    """Install a fault plan (overriding any environment-derived one).

    Returns the installed plan so tests can inspect ``fired_count``.
    Passing None disables injection entirely until :func:`uninstall`.
    """
    global _plan
    if isinstance(spec, str):
        spec = parse_spec(spec)
    _plan = spec
    return spec


def uninstall() -> None:
    """Remove a programmatically installed plan, restoring the env-derived one."""
    global _env_plan, _plan
    if _env_plan is _UNSET:
        _env_plan = _plan_from_env()
    _plan = _env_plan


def enabled() -> bool:
    """Is any fault plan currently active?"""
    return _current_plan() is not None


def active_spec() -> str | None:
    """The active plan's spec string (for shipping to pool workers)."""
    plan = _current_plan()
    return plan.spec if plan is not None else None


def active_plan() -> FaultPlan | None:
    """The active plan object, if any."""
    return _current_plan()


def mark_worker_process() -> None:
    """Register the current process as a pool worker.

    Only registered workers honour ``crash ... mode=exit`` with a hard
    ``os._exit``; everywhere else the crash degrades to a raised
    :class:`InjectedCrashError`, so no plan can kill the main process.
    """
    global _in_worker_process
    _in_worker_process = True


def fault_point(site: str, **context) -> None:
    """Give the active fault plan (if any) a chance to fire at *site*.

    The disabled path is one global load and a None check; sites may be
    called from hot loops.  (The first-ever call may additionally parse
    ``PGSCHEMA_FAULTS``; after that ``_plan`` is always resolved.)
    """
    plan = _plan
    if plan is None:
        return
    if plan is _UNSET:
        plan = _current_plan()
        if plan is None:
            return
    plan.apply(site, context)
