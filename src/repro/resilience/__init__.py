"""Resilient execution: budgets, typed failure reasons, fault injection.

Under the project's production north star a single pathological schema, a
killed worker, or a malformed upload must degrade gracefully -- a typed
UNKNOWN/partial verdict or a recovered retry -- instead of hanging or
tracebacking the service.  This package holds the shared machinery:

* :class:`Budget` (:mod:`repro.resilience.budget`) -- cooperative
  deadline / node-count / expansion-count / memory-estimate limits threaded
  through the tableau, bounded model search, the SAT solver and the
  validation engines;
* :class:`ExecutorLadder` (:mod:`repro.resilience.ladder`) -- the shared
  retry / backoff / executor-fallback scheduler behind every fan-out
  engine (sharded validation, portfolio satisfiability): positional
  results for deterministic merges, stuck-worker timeouts, and a
  recovery log chaos tests can assert on;
* :mod:`repro.resilience.faults` -- deterministic fault injection
  (``PGSCHEMA_FAULTS``) used by the chaos tests to prove every recovery
  path: injected worker crashes, delays and allocation spikes at named
  sites.

The structured failure types (:class:`~repro.errors.BudgetReason`,
:class:`~repro.errors.BudgetExhaustedError`,
:class:`~repro.errors.WorkerFailureError`) live in :mod:`repro.errors` with
the rest of the taxonomy; they are re-exported here for convenience.
"""

from ..errors import BudgetExhaustedError, BudgetReason, WorkerFailureError
from . import faults
from .budget import UNLIMITED, Budget
from .ladder import ExecutorLadder

__all__ = [
    "UNLIMITED",
    "Budget",
    "BudgetExhaustedError",
    "BudgetReason",
    "ExecutorLadder",
    "WorkerFailureError",
    "faults",
]
