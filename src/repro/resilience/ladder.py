"""The executor ladder: retries, backoff, and executor fallback for task fans.

:class:`ExecutorLadder` is the worker-recovery machinery PR 3 built into
:class:`~repro.validation.parallel.ParallelValidator`, extracted so every
fan-out engine (sharded validation, portfolio satisfiability) shares one
implementation of the recovery contract:

* a batch of indexed tasks is attempted on one executor rung (``serial``,
  ``thread`` or ``process``); results land *positionally* in a
  caller-provided array, so merging stays deterministic no matter which
  rung finally produced each result;
* a task attempt can fail three ways -- the worker process dies
  (``BrokenExecutor``), the worker raises, or the attempt exceeds
  ``task_timeout`` (a stuck worker).  Failed tasks are retried with
  exponential backoff (``retry_base_delay * 2**attempt``); once
  ``max_retries`` same-rung retries are spent, the *failing tasks* fall
  down the ladder process → thread → serial while completed results are
  kept;
* a worker that trips a :class:`~repro.resilience.Budget` re-raises
  :class:`~repro.errors.BudgetExhaustedError` in the caller -- that is an
  answer, not a crash -- and when even the serial rung fails the last cause
  is re-raised wrapped in :class:`~repro.errors.WorkerFailureError`;
* every failed attempt is recorded in :attr:`ExecutorLadder.recovery_log`
  (keys: the configured ``log_key``, ``executor``, ``attempt``, ``error``)
  so chaos tests can assert a fault actually fired and was survived.

The ladder owns scheduling only; *what* a task does on each rung is
supplied per :meth:`run` call as callables, keeping the worker plumbing
(fault-injection sites, pool initializers, pickling strategy) with the
engine that knows its own data.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, Future, ThreadPoolExecutor
from typing import Callable, Sequence

from .. import obs
from ..errors import BudgetExhaustedError, WorkerFailureError

__all__ = ["EXECUTORS", "FALLBACK", "ExecutorLadder"]

#: Executor rungs a ladder run may start on.
EXECUTORS = ("serial", "thread", "process")

#: The fallback ladder for failing tasks.
FALLBACK = {"process": "thread", "thread": "serial"}


class ExecutorLadder:
    """Retry/backoff/fallback scheduling of indexed tasks over executors.

    Args:
        jobs: Maximum pool workers for the thread/process rungs.
        max_retries: Same-rung retries per ladder rung before falling back.
        retry_base_delay: Base of the exponential backoff sleep.
        task_timeout: Wall seconds one task attempt may take before it is
            treated as a stuck worker and recovered.
        fallback: When False, exhausted retries raise instead of falling
            down the ladder.
        site: Budget site string used for deadline checks between attempts.
        log_key: Name of the task-index key in ``recovery_log`` entries and
            failure messages (``"shard"`` for validation, ``"unit"`` for
            portfolio satisfiability).
        timeout_label: Name of the timeout knob in stuck-worker messages
            (kept configurable so existing logs stay grep-stable).
    """

    def __init__(
        self,
        jobs: int,
        max_retries: int = 2,
        retry_base_delay: float = 0.05,
        task_timeout: float | None = None,
        fallback: bool = True,
        site: str = "resilience.ladder",
        log_key: str = "task",
        timeout_label: str = "task_timeout",
    ) -> None:
        self.jobs = max(1, jobs)
        self.max_retries = max(0, max_retries)
        self.retry_base_delay = retry_base_delay
        self.task_timeout = task_timeout
        self.fallback = fallback
        self.site = site
        self.log_key = log_key
        self.timeout_label = timeout_label
        #: recovery events of the last run: one dict per failed attempt.
        self.recovery_log: list[dict] = []

    # ------------------------------------------------------------------ #
    # the retry / fallback loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        mode: str,
        indices: Sequence[int],
        results: list,
        serial: Callable[[int, int], object],
        thread_submit: "Callable[[ThreadPoolExecutor, int, int], Future] | None" = None,
        process_submit: "Callable[[object, int, int], Future] | None" = None,
        make_thread_pool: "Callable[[int], ThreadPoolExecutor] | None" = None,
        make_process_pool: "Callable[[int], object] | None" = None,
        budget=None,
    ) -> None:
        """Fill ``results[index]`` for every index, starting on rung *mode*.

        ``serial(index, attempt)`` runs a task inline;
        ``thread_submit(pool, index, attempt)`` /
        ``process_submit(pool, index, attempt)`` submit one task to a pool
        built by ``make_thread_pool(n)`` / ``make_process_pool(n)``.  Rungs
        without a submit callable degrade to the next rung down.
        """
        if mode not in EXECUTORS:
            raise ValueError(f"unknown executor {mode!r}; expected one of {EXECUTORS}")
        if mode == "process" and process_submit is None:
            mode = "thread"
        if mode == "thread" and thread_submit is None:
            mode = "serial"
        pending = list(indices)
        attempt = 0
        retries_left = self.max_retries
        self.recovery_log.clear()
        while pending:
            if budget is not None:
                budget.check_deadline(site=self.site)
            failures = self._attempt_once(
                mode,
                pending,
                results,
                attempt,
                budget,
                serial,
                thread_submit,
                process_submit,
                make_thread_pool,
                make_process_pool,
            )
            if not failures:
                return
            for index, error in failures:
                # ``site``/``at`` let chaos tests (and exported traces)
                # reconstruct the observed fault → recovery sequence:
                # ``at`` is monotonic, comparable with span timestamps and
                # ordered across entries of one run
                entry = {
                    self.log_key: index,
                    "executor": mode,
                    "attempt": attempt,
                    "error": repr(error),
                    "site": self.site,
                    "at": time.monotonic(),
                }
                self.recovery_log.append(entry)
                obs.count("ladder.failures")
                obs.instant(
                    "ladder.recovery",
                    **{
                        "task": index,
                        "executor": mode,
                        "attempt": attempt,
                        "site": self.site,
                        "error": repr(error),
                    },
                )
            pending = [index for index, _error in failures]
            attempt += 1
            if retries_left > 0:
                retries_left -= 1
                obs.count("ladder.retries")
                self._backoff(attempt, budget)
            elif self.fallback and mode in FALLBACK:
                mode = FALLBACK[mode]
                retries_left = self.max_retries
                obs.count("ladder.fallbacks")
            else:
                index, error = failures[0]
                raise WorkerFailureError(
                    f"{self.log_key} {index} failed after {attempt} attempt(s) "
                    f"(final executor {mode!r}): {error}",
                    shard=index,
                    attempts=attempt,
                ) from error

    def _backoff(self, attempt: int, budget) -> None:
        delay = self.retry_base_delay * (2 ** (attempt - 1))
        if budget is not None:
            remaining = budget.remaining_seconds()
            if remaining is not None:
                delay = min(delay, remaining)
        if delay > 0:
            time.sleep(delay)

    # ------------------------------------------------------------------ #
    # one attempt on one rung
    # ------------------------------------------------------------------ #

    def _attempt_once(
        self,
        mode: str,
        pending: list[int],
        results: list,
        attempt: int,
        budget,
        serial,
        thread_submit,
        process_submit,
        make_thread_pool,
        make_process_pool,
    ) -> list[tuple[int, BaseException]]:
        """One attempt at the pending tasks; returns the tasks that failed
        (with their causes).  Budget exhaustion is not a failure -- it
        propagates."""
        if mode == "serial":
            failures: list[tuple[int, BaseException]] = []
            for index in pending:
                if budget is not None:
                    budget.check_deadline(site=self.site)
                try:
                    results[index] = serial(index, attempt)
                except BudgetExhaustedError:
                    raise
                except Exception as error:
                    failures.append((index, error))
            return failures
        workers = min(self.jobs, len(pending))
        if mode == "thread":
            pool = (
                make_thread_pool(workers)
                if make_thread_pool is not None
                else ThreadPoolExecutor(max_workers=workers)
            )
            submit = thread_submit
        else:
            assert make_process_pool is not None
            pool = make_process_pool(workers)
            submit = process_submit
        hard_shutdown = False
        try:
            futures: dict[int, Future] = {
                index: submit(pool, index, attempt) for index in pending
            }
            failures = self._collect(futures, results, budget)
            hard_shutdown = bool(failures)
            return failures
        except BaseException:
            hard_shutdown = True
            raise
        finally:
            self._shutdown_pool(pool, hard_shutdown)

    def _collect(
        self,
        futures: "dict[int, Future]",
        results: list,
        budget,
    ) -> list[tuple[int, BaseException]]:
        """Harvest futures into ``results``; classify what went wrong.

        A worker that *tripped the budget* re-raises here (that is an
        answer, not a crash); a worker that died, raised, or exceeded
        ``task_timeout`` marks its task failed for retry/fallback.
        """
        deadline_at = (
            time.monotonic() + self.task_timeout
            if self.task_timeout is not None
            else None
        )
        failures: list[tuple[int, BaseException]] = []
        for index, future in futures.items():
            timeout = None
            if deadline_at is not None:
                timeout = max(0.0, deadline_at - time.monotonic())
            if budget is not None:
                remaining = budget.remaining_seconds()
                if remaining is not None:
                    timeout = remaining if timeout is None else min(timeout, remaining)
            try:
                results[index] = future.result(timeout=timeout)
            except BudgetExhaustedError:
                raise
            except TimeoutError:
                if budget is not None:
                    # raises when the run deadline (not the task ceiling) expired
                    budget.check_deadline(site=self.site)
                future.cancel()
                obs.count("ladder.stuck_workers")
                failures.append(
                    (
                        index,
                        WorkerFailureError(
                            f"{self.log_key} {index} attempt exceeded "
                            f"{self.timeout_label}={self.task_timeout}s",
                            shard=index,
                        ),
                    )
                )
            except BrokenExecutor as error:
                obs.count("ladder.worker_crashes")
                failures.append((index, error))
            except Exception as error:
                obs.count("ladder.worker_errors")
                failures.append((index, error))
        return failures

    @staticmethod
    def _shutdown_pool(pool, hard: bool) -> None:
        if not hard:
            pool.shutdown(wait=True)
            return
        # a crashed/stuck attempt: do not wait for wedged workers, and
        # terminate any process still chewing on a cancelled task
        pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(pool, "_processes", None)
        if processes:
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - already-dead worker
                    pass
