"""Cooperative execution budgets: deadlines, work counts, memory estimates.

A :class:`Budget` bounds a decision procedure along up to four dimensions:

* **deadline** -- wall-clock seconds from the budget's start;
* **nodes** -- elements materialised or visited (tableau completion-tree
  nodes, graph elements scanned by a validator);
* **expansions** -- rule applications / search steps (tableau saturation
  iterations, bounded-search label assignments, DPLL decisions);
* **memory** -- a crude, cooperative *estimate* of bytes allocated by the
  search (completion-tree labels, cloned branch states).  This is not an
  allocator hook; it exists so runaway branching trips a limit long before
  the process OOMs.

Budgets are *cooperative*: the instrumented engines call :meth:`charge` /
:meth:`check_deadline` at their own cadence and a trip raises
:class:`~repro.errors.BudgetExhaustedError` carrying a structured
:class:`~repro.errors.BudgetReason`.  Facades catch that error and turn it
into a typed UNKNOWN/partial verdict when configured with
``on_budget="unknown"``.

A budget instance is single-use state (its counters only grow); use
:meth:`renew` to stamp out a fresh copy with the same limits -- the
satisfiability checker does this per ``check_type`` call so one slow type
cannot starve the next.  Budgets are picklable and fork-safe: the deadline
is an absolute ``time.monotonic`` instant, comparable across processes of
one host.
"""

from __future__ import annotations

import time
from typing import Any

from ..errors import BudgetExhaustedError, BudgetReason

__all__ = ["Budget", "UNLIMITED"]


class Budget:
    """A bundle of cooperative execution limits.

    Args:
        deadline: Wall-clock seconds allowed, measured from construction
            (or the last :meth:`renew`).  ``None`` = unlimited.
        max_nodes: Ceiling on charged node/element counts.
        max_expansions: Ceiling on charged search-step counts.
        max_memory: Ceiling on the cooperative byte estimate.
    """

    __slots__ = (
        "deadline",
        "max_nodes",
        "max_expansions",
        "max_memory",
        "started_at",
        "nodes",
        "expansions",
        "memory",
        "cancelled",
    )

    def __init__(
        self,
        deadline: float | None = None,
        max_nodes: int | None = None,
        max_expansions: int | None = None,
        max_memory: int | None = None,
    ) -> None:
        self.deadline = deadline
        self.max_nodes = max_nodes
        self.max_expansions = max_expansions
        self.max_memory = max_memory
        self.started_at = time.monotonic()
        self.nodes = 0
        self.expansions = 0
        self.memory = 0
        self.cancelled = False

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def unlimited(self) -> bool:
        """True when no dimension is bounded (every check is a no-op)."""
        return (
            self.deadline is None
            and self.max_nodes is None
            and self.max_expansions is None
            and self.max_memory is None
        )

    def elapsed(self) -> float:
        """Wall-clock seconds since the budget started."""
        return time.monotonic() - self.started_at

    def remaining_seconds(self) -> float | None:
        """Seconds left before the deadline; None when no deadline is set.

        Never negative: an expired deadline reports 0.0 (callers use this
        as a ``future.result`` timeout, where a negative value would raise
        ``ValueError`` instead of timing out immediately).
        """
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    def renew(self) -> "Budget":
        """A fresh budget with the same limits and zeroed consumption."""
        return Budget(
            deadline=self.deadline,
            max_nodes=self.max_nodes,
            max_expansions=self.max_expansions,
            max_memory=self.max_memory,
        )

    # ------------------------------------------------------------------ #
    # charging
    # ------------------------------------------------------------------ #

    def cancel(self) -> None:
        """Cancel the budget: every subsequent check/charge raises.

        This is how a portfolio race stops the losing engine: each racer
        runs under its own budget, and the first decisive verdict cancels
        the other racer's budget.  The loser trips at its next cooperative
        check point and unwinds as an ordinary
        :class:`~repro.errors.BudgetExhaustedError` (``dimension ==
        "cancelled"``) -- never a wrong verdict.  ``renew()`` copies are
        born un-cancelled.
        """
        self.cancelled = True

    def _check_cancelled(self, site: str) -> None:
        if self.cancelled:
            raise BudgetExhaustedError(BudgetReason("cancelled", 0, 0, site))

    def check_deadline(self, site: str = "") -> None:
        """Raise when the wall-clock deadline has passed (or on cancel)."""
        if self.cancelled:
            self._check_cancelled(site)
        if self.deadline is not None:
            used = self.elapsed()
            if used > self.deadline:
                raise BudgetExhaustedError(
                    BudgetReason("deadline", self.deadline, used, site)
                )

    def charge_nodes(self, count: int = 1, site: str = "") -> None:
        """Record *count* created/visited elements; raise past ``max_nodes``."""
        if self.cancelled:
            self._check_cancelled(site)
        self.nodes += count
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            raise BudgetExhaustedError(
                BudgetReason("nodes", self.max_nodes, self.nodes, site)
            )

    def charge_expansions(self, count: int = 1, site: str = "") -> None:
        """Record *count* search steps; raise past ``max_expansions``."""
        if self.cancelled:
            self._check_cancelled(site)
        self.expansions += count
        if self.max_expansions is not None and self.expansions > self.max_expansions:
            raise BudgetExhaustedError(
                BudgetReason("expansions", self.max_expansions, self.expansions, site)
            )

    def charge_memory(self, estimate: int, site: str = "") -> None:
        """Record an *estimate* of bytes allocated; raise past ``max_memory``."""
        self.memory += estimate
        if self.max_memory is not None and self.memory > self.max_memory:
            raise BudgetExhaustedError(
                BudgetReason("memory", self.max_memory, self.memory, site)
            )

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        limits = ", ".join(
            f"{name}={value!r}"
            for name, value in (
                ("deadline", self.deadline),
                ("max_nodes", self.max_nodes),
                ("max_expansions", self.max_expansions),
                ("max_memory", self.max_memory),
            )
            if value is not None
        )
        return f"Budget({limits or 'unlimited'})"

    def __getstate__(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for name, value in state.items():
            setattr(self, name, value)


#: A shared no-limit budget for call sites that want to avoid None checks.
UNLIMITED = Budget()
