"""ALCQI concept and role syntax.

The description logic of the Theorem-3 proof: ALC (⊤, ⊥, concept names,
¬C, C ⊓ D, C ⊔ D, ∃R.C, ∀R.C) plus qualified number restrictions (≥n R.C,
≤n R.C) and inverse roles (R⁻ usable wherever a role is expected).

All nodes are immutable dataclasses; n-ary ⊓/⊔ keep their operands as
tuples.  Use :func:`repro.dl.nnf.nnf` to push negations inward before
handing concepts to the tableau.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class Role:
    """A role name or its inverse."""

    name: str
    inverse: bool = False

    def inv(self) -> "Role":
        """The inverse role: inv(R) = R⁻ and inv(R⁻) = R."""
        return Role(self.name, not self.inverse)

    def __str__(self) -> str:
        return f"{self.name}⁻" if self.inverse else self.name


class Concept:
    """Base class for ALCQI concepts."""

    __slots__ = ()

    def __and__(self, other: "Concept") -> "Concept":
        return And((self, other))

    def __or__(self, other: "Concept") -> "Concept":
        return Or((self, other))

    def __invert__(self) -> "Concept":
        return Not(self)


@dataclass(frozen=True)
class Top(Concept):
    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class Bottom(Concept):
    def __str__(self) -> str:
        return "⊥"


@dataclass(frozen=True)
class Name(Concept):
    """An atomic concept name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Concept):
    body: Concept

    def __str__(self) -> str:
        return f"¬{self.body}"


@dataclass(frozen=True)
class And(Concept):
    parts: tuple[Concept, ...]

    def __str__(self) -> str:
        return "(" + " ⊓ ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True)
class Or(Concept):
    parts: tuple[Concept, ...]

    def __str__(self) -> str:
        return "(" + " ⊔ ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True)
class Exists(Concept):
    """∃R.C -- equivalent to ≥1 R.C."""

    role: Role
    body: Concept

    def __str__(self) -> str:
        return f"∃{self.role}.{self.body}"


@dataclass(frozen=True)
class Forall(Concept):
    """∀R.C -- equivalent to ≤0 R.¬C."""

    role: Role
    body: Concept

    def __str__(self) -> str:
        return f"∀{self.role}.{self.body}"


@dataclass(frozen=True)
class AtLeast(Concept):
    """≥n R.C"""

    n: int
    role: Role
    body: Concept

    def __str__(self) -> str:
        return f"≥{self.n} {self.role}.{self.body}"


@dataclass(frozen=True)
class AtMost(Concept):
    """≤n R.C"""

    n: int
    role: Role
    body: Concept

    def __str__(self) -> str:
        return f"≤{self.n} {self.role}.{self.body}"


def conj(parts: Iterable[Concept]) -> Concept:
    """n-ary ⊓ with flattening; the empty conjunction is ⊤."""
    flat: list[Concept] = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.parts)
        elif isinstance(part, Top):
            continue
        else:
            flat.append(part)
    if not flat:
        return Top()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(parts: Iterable[Concept]) -> Concept:
    """n-ary ⊔ with flattening; the empty disjunction is ⊥."""
    flat: list[Concept] = []
    for part in parts:
        if isinstance(part, Or):
            flat.extend(part.parts)
        elif isinstance(part, Bottom):
            continue
        else:
            flat.append(part)
    if not flat:
        return Bottom()
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))
