"""Negation normal form for ALCQI concepts.

Negations are pushed down to concept names using the dualities:

    ¬(C ⊓ D) = ¬C ⊔ ¬D          ¬∃R.C = ∀R.¬C
    ¬(C ⊔ D) = ¬C ⊓ ¬D          ¬∀R.C = ∃R.¬C
    ¬≥n R.C  = ≤(n-1) R.C  (n ≥ 1);   ¬≥0 R.C = ⊥
    ¬≤n R.C  = ≥(n+1) R.C

The tableau's clash and choose rules assume their inputs are in NNF.
"""

from __future__ import annotations

from .concepts import (
    And,
    AtLeast,
    AtMost,
    Bottom,
    Concept,
    Exists,
    Forall,
    Name,
    Not,
    Or,
    Top,
)


def nnf(concept: Concept) -> Concept:
    """The negation normal form of *concept*."""
    if isinstance(concept, (Top, Bottom, Name)):
        return concept
    if isinstance(concept, And):
        return And(tuple(nnf(part) for part in concept.parts))
    if isinstance(concept, Or):
        return Or(tuple(nnf(part) for part in concept.parts))
    if isinstance(concept, Exists):
        return Exists(concept.role, nnf(concept.body))
    if isinstance(concept, Forall):
        return Forall(concept.role, nnf(concept.body))
    if isinstance(concept, AtLeast):
        return AtLeast(concept.n, concept.role, nnf(concept.body))
    if isinstance(concept, AtMost):
        return AtMost(concept.n, concept.role, nnf(concept.body))
    if isinstance(concept, Not):
        return _nnf_negated(concept.body)
    raise TypeError(f"not a concept: {concept!r}")


def _nnf_negated(concept: Concept) -> Concept:
    if isinstance(concept, Top):
        return Bottom()
    if isinstance(concept, Bottom):
        return Top()
    if isinstance(concept, Name):
        return Not(concept)
    if isinstance(concept, Not):
        return nnf(concept.body)
    if isinstance(concept, And):
        return Or(tuple(_nnf_negated(part) for part in concept.parts))
    if isinstance(concept, Or):
        return And(tuple(_nnf_negated(part) for part in concept.parts))
    if isinstance(concept, Exists):
        return Forall(concept.role, _nnf_negated(concept.body))
    if isinstance(concept, Forall):
        return Exists(concept.role, _nnf_negated(concept.body))
    if isinstance(concept, AtLeast):
        if concept.n == 0:
            return Bottom()  # ≥0 R.C is ⊤
        return AtMost(concept.n - 1, concept.role, nnf(concept.body))
    if isinstance(concept, AtMost):
        return AtLeast(concept.n + 1, concept.role, nnf(concept.body))
    raise TypeError(f"not a concept: {concept!r}")


def complement(concept: Concept) -> Concept:
    """The NNF of ¬concept (for clash detection and the choose rule)."""
    return _nnf_negated(nnf(concept))
