"""Translation of Property Graph schemas into ALCQI TBoxes (Theorem 3).

Following the proof of Theorem 3, the translation first *restricts* the
schema: ``@key``, ``@noLoops``, ``@distinct`` and all scalar-valued fields
and arguments are dropped, because none of them affects object-type
satisfiability (keys can always be satisfied by picking fresh values, loops
can be unfolded into a doubled model, @distinct constraints disappear once
edges are identified by their endpoints, and scalar values can always be
chosen well-typed).

The remaining schema becomes a TBox over one concept name per object /
interface / union type and one role per relationship field name:

* ``ut ≡ t1 ⊔ … ⊔ tn`` for every union type and every interface type
  (with its member / implementing object types; an interface nobody
  implements becomes ``≡ ⊥``);
* ``∃f⁻.t ⊑ tt`` for every relationship declaration (t, f) with basetype
  tt -- targets of justified f-edges have the declared type (WS3 + SS4);
* ``t ⊑ ≤1 f.⊤`` when an *object* type t declares f at a non-list type
  (WS4; only object types label nodes, so only their declarations bound
  edge counts);
* ``t ⊑ ∃f.tt`` for ``@required`` on a relationship (DS6 + WS3) -- here t
  may be an interface, matching the rule's λ(v) ⊑ t quantification;
* ``tt ⊑ ∃f⁻.t`` for ``@requiredForTarget`` (DS4);
* ``tt ⊑ ≤1 f⁻.t`` for ``@uniqueForTarget`` (DS3);
* ``ot ⊑ ≤0 f.⊤`` for every object type that does *not* declare the
  relationship field f -- edges must be justified (SS4), so a model may
  not invent f-edges out of undeclared types;
* exactly-one-label: ``ot1 ⊓ ot2 ⊑ ⊥`` for distinct object types and
  ``⊤ ⊑ ot1 ⊔ … ⊔ otn`` (SS1 plus λ being a function).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..schema.directives import REQUIRED, REQUIRED_FOR_TARGET, UNIQUE_FOR_TARGET
from .concepts import AtMost, Bottom, Exists, Forall, Name, Role, Top, disj
from .tbox import TBox

if TYPE_CHECKING:  # pragma: no cover
    from ..schema.model import GraphQLSchema


def schema_to_tbox(schema: "GraphQLSchema") -> TBox:
    """Translate *schema* into the ALCQI TBox of the Theorem-3 proof."""
    tbox = TBox()
    object_types = sorted(schema.object_types)

    # union and interface types are *defined* concepts over their object
    # types; registered as definitions so the tableau lazily unfolds them
    for union_name in sorted(schema.union_types):
        tbox.define(
            union_name,
            disj(Name(member) for member in sorted(schema.union(union_name))),
        )
    for interface_name in sorted(schema.interface_types):
        implementors = sorted(schema.implementation(interface_name))
        tbox.define(
            interface_name,
            disj(Name(member) for member in implementors) if implementors else Bottom(),
        )

    relationship_roles = sorted(
        {
            field_name
            for _type, field_name, field_def in schema.field_declarations()
            if field_def.is_relationship
        }
    )

    for type_name, field_name, field_def in schema.field_declarations():
        if not field_def.is_relationship:
            continue  # scalar fields never affect satisfiability
        declaring = Name(type_name)
        target = Name(field_def.type.base)
        role = Role(field_name)
        # WS3 + SS4: targets of f-edges out of this type have the field's
        # type.  (Stated in the paper as ∃f⁻.t ⊑ tt; the equivalent
        # name-guarded form t ⊑ ∀f.tt lets the tableau apply it lazily.)
        tbox.include(declaring, Forall(role, target))
        # WS4: object types with a non-list declaration allow at most one edge
        if type_name in schema.object_types and not field_def.type.is_list:
            tbox.include(declaring, AtMost(1, role, Top()))
        if field_def.has_directive(REQUIRED):
            tbox.include(declaring, Exists(role, target))
        if field_def.has_directive(REQUIRED_FOR_TARGET):
            tbox.include(target, Exists(role.inv(), declaring))
        if field_def.has_directive(UNIQUE_FOR_TARGET):
            tbox.include(target, AtMost(1, role.inv(), declaring))

    # SS4: object types may only emit relationship edges they declare
    for object_name, object_type in sorted(schema.object_types.items()):
        declared = {
            field_def.name
            for field_def in object_type.fields
            if field_def.is_relationship
        }
        for field_name in relationship_roles:
            if field_name not in declared:
                tbox.include(Name(object_name), AtMost(0, Role(field_name), Top()))

    # λ assigns one label: object types are pairwise disjoint.  (Declared as
    # a native disjointness group rather than O(|OT|²) axioms; the tableau
    # checks it directly.)  An exhaustiveness axiom ⊤ ⊑ ⊔OT is deliberately
    # omitted: every individual a tableau run ever creates is typed (the
    # root carries the queried type and every generated successor carries a
    # type concept from its ∃/≥ trigger), so untyped "junk" individuals
    # cannot arise, and omitting the axiom does not change any
    # satisfiability verdict while removing the single biggest disjunction.
    tbox.declare_disjoint(object_types)
    return tbox
