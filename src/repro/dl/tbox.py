"""TBoxes: finite sets of general concept inclusions (GCIs).

A TBox is a list of axioms ``C ⊑ D``; equivalences ``C ≡ D`` are sugar for
two inclusions.  For the tableau the TBox is *internalised*: every axiom
``C ⊑ D`` contributes the universal constraint ``nnf(¬C ⊔ D)``, which is
added to the label of every node of the completion graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .concepts import Concept, Not, Or
from .nnf import nnf


@dataclass(frozen=True)
class Axiom:
    """A general concept inclusion C ⊑ D."""

    sub: Concept
    sup: Concept

    def __str__(self) -> str:
        return f"{self.sub} ⊑ {self.sup}"


@dataclass
class TBox:
    """A terminology: a finite list of GCIs plus disjointness groups.

    A disjointness group is a set of concept *names* declared mutually
    disjoint.  Semantically it abbreviates the O(k²) axioms
    ``A ⊓ B ⊑ ⊥``; the tableau checks it natively (a clash as soon as a
    node's label contains two names of one group), which keeps the many
    pairwise-disjoint object types of a schema translation from exploding
    the axiom set.
    """

    axioms: list[Axiom] = field(default_factory=list)
    disjoint_groups: list[frozenset[str]] = field(default_factory=list)
    definitions: dict[str, Concept] = field(default_factory=dict)

    def include(self, sub: Concept, sup: Concept) -> None:
        """Add C ⊑ D."""
        self.axioms.append(Axiom(sub, sup))

    def declare_disjoint(self, names: "list[str] | tuple[str, ...]") -> None:
        """Declare the named concepts pairwise disjoint."""
        if len(names) >= 2:
            self.disjoint_groups.append(frozenset(names))

    def define(self, name: str, concept: Concept) -> None:
        """Add the *definition* ``name ≡ concept``.

        Definitions must be acyclic and each name defined once; the tableau
        then applies them by lazy unfolding (adding the definiens only to
        nodes that actually carry the name or its negation) instead of
        internalising two global disjunction axioms -- semantically
        identical, massively cheaper on schemas with many union/interface
        types.
        """
        if name in self.definitions:
            raise ValueError(f"concept {name} defined twice")
        self.definitions[name] = concept

    def equate(self, left: Concept, right: Concept) -> None:
        """Add C ≡ D (as two inclusions)."""
        self.include(left, right)
        self.include(right, left)

    def internalised(self) -> tuple[Concept, ...]:
        """The universal constraints nnf(¬C ⊔ D), one per axiom, deduplicated."""
        seen: list[Concept] = []
        for axiom in self.axioms:
            constraint = nnf(Or((Not(axiom.sub), axiom.sup)))
            if constraint not in seen:
                seen.append(constraint)
        return tuple(seen)

    def __len__(self) -> int:
        return len(self.axioms)

    def __str__(self) -> str:
        return "\n".join(str(axiom) for axiom in self.axioms)
