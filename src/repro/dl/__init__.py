"""Description-logic substrate: ALCQI with a tableau decision procedure."""

from .concepts import (
    And,
    AtLeast,
    AtMost,
    Bottom,
    Concept,
    Exists,
    Forall,
    Name,
    Not,
    Or,
    Role,
    Top,
    conj,
    disj,
)
from .nnf import complement, nnf
from .tableau import Tableau, TableauLimitError, TableauStats
from .tbox import Axiom, TBox
from .translate import schema_to_tbox

__all__ = [
    "And",
    "AtLeast",
    "AtMost",
    "Axiom",
    "Bottom",
    "Concept",
    "Exists",
    "Forall",
    "Name",
    "Not",
    "Or",
    "Role",
    "TBox",
    "Tableau",
    "TableauLimitError",
    "TableauStats",
    "Top",
    "complement",
    "conj",
    "disj",
    "nnf",
    "schema_to_tbox",
]
