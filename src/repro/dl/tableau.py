"""A tableau decision procedure for ALCQI concept satisfiability w.r.t. a TBox.

This is the machinery behind Theorem 3: the paper translates (a restriction
of) Property Graph schemas into ALCQI and appeals to the known decidability
of concept satisfiability.  The algorithm here is the standard
completion-tree tableau for a DL with inverse roles and qualified number
restrictions (Horrocks & Sattler style):

* the TBox is internalised -- every node of the completion tree carries
  ``nnf(¬C ⊔ D)`` for every axiom ``C ⊑ D``; the TBox's disjointness
  groups are checked natively instead;
* deterministic rules: ⊓-rule, ∀-rule (propagating through inverse roles),
  and boolean constraint propagation on disjunctions (forcing the last
  open disjunct -- a pure optimisation of the ⊔-rule);
* nondeterministic rules (explored by depth-first search over an explicit
  stack): ⊔-rule, the choose-rule for ``≤n R.C``, and the ≤-rule that
  merges two not-provably-distinct neighbours when a number restriction is
  exceeded;
* generating rules: ∃-rule and ≥-rule, the latter creating pairwise-distinct
  fresh successors; both are subject to **pairwise blocking**, which is what
  guarantees termination in the presence of inverse roles and number
  restrictions;
* clash conditions: ``⊥`` in a label, ``{A, ¬A}`` in a label, two concepts
  of one disjointness group in a label, and an exceeded ``≤n R.C`` whose
  witnesses are all pairwise distinct.

Internally every concept is *interned* to a small integer id
(:class:`_ConceptTable`), so node labels are integer sets and all the hot
membership/label-equality operations avoid re-hashing nested concept
structures; complements are computed once per id.

Satisfiability w.r.t. a TBox is PSPACE-complete (the paper's Theorem 3
territory), so a pathological schema can make this search run essentially
forever.  Two cooperative limits turn runaway growth into *typed*, structured
failures instead:

* the ``max_nodes`` safety cap raises :class:`TableauLimitError` when one
  completion tree grows too large (the historical behaviour, now carrying a
  structured :class:`~repro.errors.BudgetReason`);
* an optional :class:`~repro.resilience.Budget` bounds the whole search --
  wall-clock deadline, expansion count, and a cooperative memory estimate
  covering branch clones -- raising
  :class:`~repro.errors.BudgetExhaustedError`.

Both exceptions share the ``BudgetExhaustedError`` base, so callers (the
satisfiability checker, the CLI) catch one type and report a typed UNKNOWN
verdict; a budget trip never yields a wrong SAT/UNSAT answer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .. import obs
from ..errors import BudgetExhaustedError, BudgetReason
from ..resilience import faults
from .concepts import (
    And,
    AtLeast,
    AtMost,
    Bottom,
    Concept,
    Exists,
    Forall,
    Name,
    Not,
    Or,
    Role,
    Top,
)
from .nnf import complement, nnf
from .tbox import TBox

if TYPE_CHECKING:  # pragma: no cover
    from ..resilience import Budget

#: Cooperative memory estimate: bytes charged per completion-tree node
#: (label set + parent/role/children bookkeeping, order-of-magnitude).
_NODE_MEMORY_ESTIMATE = 512


class TableauLimitError(BudgetExhaustedError):
    """The completion tree exceeded the configured node limit.

    A specialisation of :class:`~repro.errors.BudgetExhaustedError` kept for
    its long-standing name; ``reason.dimension`` is ``"nodes"``.
    """


@dataclass
class TableauStats:
    """Search statistics of one satisfiability check."""

    nodes_created: int = 0
    branches: int = 0
    merges: int = 0
    max_tree_size: int = 0
    expansions: int = 0
    clashes: int = 0
    max_branch_depth: int = 0


class _ConceptTable:
    """Interning table: NNF concepts <-> integer ids, with cached structure.

    ``kind`` is one of "top", "bottom", "name", "not", "and", "or",
    "exists", "forall", "atleast", "atmost".  ``parts`` holds child ids for
    and/or; ``body`` the child id for the quantified kinds; ``role``/``n``
    the role and cardinality.  Complements are memoised per id.
    """

    def __init__(self) -> None:
        self._ids: dict[Concept, int] = {}
        self._concepts: list[Concept] = []
        self.kind: list[str] = []
        self.parts: list[tuple[int, ...]] = []
        self.body: list[int] = []
        self.role: list[Role | None] = []
        self.n: list[int] = []
        self._complement: dict[int, int] = {}

    def intern(self, concept: Concept) -> int:
        """Intern an NNF concept, returning its id."""
        found = self._ids.get(concept)
        if found is not None:
            return found
        if isinstance(concept, Top):
            kind, parts, body, role, n = "top", (), -1, None, 0
        elif isinstance(concept, Bottom):
            kind, parts, body, role, n = "bottom", (), -1, None, 0
        elif isinstance(concept, Name):
            kind, parts, body, role, n = "name", (), -1, None, 0
        elif isinstance(concept, Not):
            # NNF: negation only in front of names
            kind, parts, body, role, n = "not", (), self.intern(concept.body), None, 0
        elif isinstance(concept, And):
            kind = "and"
            parts = tuple(self.intern(part) for part in concept.parts)
            body, role, n = -1, None, 0
        elif isinstance(concept, Or):
            kind = "or"
            parts = tuple(self.intern(part) for part in concept.parts)
            body, role, n = -1, None, 0
        elif isinstance(concept, Exists):
            kind, parts, body, role, n = (
                "exists",
                (),
                self.intern(concept.body),
                concept.role,
                1,
            )
        elif isinstance(concept, Forall):
            kind, parts, body, role, n = (
                "forall",
                (),
                self.intern(concept.body),
                concept.role,
                0,
            )
        elif isinstance(concept, AtLeast):
            kind, parts, body, role, n = (
                "atleast",
                (),
                self.intern(concept.body),
                concept.role,
                concept.n,
            )
        elif isinstance(concept, AtMost):
            kind, parts, body, role, n = (
                "atmost",
                (),
                self.intern(concept.body),
                concept.role,
                concept.n,
            )
        else:
            raise TypeError(f"not a concept: {concept!r}")
        new_id = len(self._concepts)
        self._ids[concept] = new_id
        self._concepts.append(concept)
        self.kind.append(kind)
        self.parts.append(parts)
        self.body.append(body)
        self.role.append(role)
        self.n.append(n)
        return new_id

    def concept(self, cid: int) -> Concept:
        return self._concepts[cid]

    def complement_of(self, cid: int) -> int:
        found = self._complement.get(cid)
        if found is None:
            found = self.intern(complement(self._concepts[cid]))
            self._complement[cid] = found
            self._complement[found] = cid
        return found

    def is_top(self, cid: int) -> bool:
        return self.kind[cid] == "top"


class Tableau:
    """Concept satisfiability w.r.t. a fixed TBox."""

    def __init__(
        self,
        tbox: TBox | None = None,
        max_nodes: int = 5000,
        *,
        budget: "Budget | None" = None,
        bcp: bool = True,
        guarded_axioms: bool = True,
        lazy_definitions: bool = True,
        disjointness_propagation: bool = True,
    ) -> None:
        """``budget`` bounds the whole search (deadline / expansions /
        memory estimate); ``max_nodes`` additionally caps one completion
        tree.  The keyword flags disable individual optimisations (all purely
        performance-affecting; every configuration decides the same
        satisfiability relation).  They exist for the ablation benchmark:

        * ``bcp`` -- boolean constraint propagation on disjunctions;
        * ``guarded_axioms`` -- lazy application of Name-guarded GCIs
          (off: every axiom is internalised into every label);
        * ``lazy_definitions`` -- lazy unfolding of union/interface
          definitions (off: definitions become two internalised GCIs);
        * ``disjointness_propagation`` -- deterministic ¬-propagation
          within disjointness groups.
        """
        # note: `tbox or TBox()` would discard an axiom-less TBox that still
        # carries definitions/disjointness (TBox.__len__ counts axioms only)
        self.tbox = tbox if tbox is not None else TBox()
        self.max_nodes = max_nodes
        self.budget = budget
        #: Optional cross-check verdict cache for root label sets (duck-typed:
        #: ``lookup(frozenset[Concept]) -> bool | None`` and ``store(initial,
        #: verdict, completed_root)``).  Attached by the satisfiability
        #: checker so tableaux over the same TBox share proved label sets;
        #: see :class:`repro.satisfiability.cache.LabelSetCache` for why the
        #: subset/superset rules are only sound at the root.
        self.label_cache = None
        self._run_budget: "Budget | None" = None
        self._bcp = bcp
        self.stats = TableauStats()
        self._table = _ConceptTable()
        # Axioms whose left-hand side is a concept name are applied *lazily*
        # (guarded on the name appearing in a node's label) instead of being
        # internalised into every label.  This is sound because the model
        # read off a completed tree interprets a primitive name as exactly
        # the nodes labelled with it -- provided membership in *defined*
        # names (unions/interfaces) is propagated from their members, which
        # the definition handling below arranges.  Axioms with a complex
        # left-hand side keep the classic internalised treatment.
        self._guarded: dict[int, tuple[int, ...]] = {}
        universal: list[int] = []
        axioms = list(self.tbox.axioms)
        if not lazy_definitions:
            # ablation path: definitions degrade to two plain GCIs
            from .tbox import Axiom

            for defined_name, definiens in self.tbox.definitions.items():
                axioms.append(Axiom(Name(defined_name), definiens))
                axioms.append(Axiom(definiens, Name(defined_name)))
        for axiom in axioms:
            sup_id = self._table.intern(nnf(axiom.sup))
            if guarded_axioms and isinstance(axiom.sub, Name):
                guard_id = self._table.intern(axiom.sub)
                self._guarded[guard_id] = self._guarded.get(guard_id, ()) + (sup_id,)
            else:
                constraint = self._table.intern(
                    nnf(Or((Not(axiom.sub), axiom.sup)))
                )
                universal.append(constraint)
        self._disjoint_groups = [
            frozenset(self._table.intern(Name(member)) for member in group)
            for group in self.tbox.disjoint_groups
        ]
        # lazy unfolding of definitions (name ≡ definiens):
        #  * name in label        -> add the definiens,
        #  * ¬name in label       -> add the negated definiens,
        #  * member name in label -> add the defined name (needed so that
        #    guarded axioms on union/interface names fire on their members).
        self._unfold: dict[int, tuple[int, ...]] = {}
        self._definition_closures: list[tuple[int, tuple[int, ...]]] = []
        definitions = self.tbox.definitions if lazy_definitions else {}
        for defined_name, definiens in definitions.items():
            name_id = self._table.intern(Name(defined_name))
            normalised = nnf(definiens)
            definiens_id = self._table.intern(normalised)
            self._add_unfold(name_id, definiens_id)
            self._add_unfold(
                self._table.complement_of(name_id),
                self._table.complement_of(definiens_id),
            )
            members: tuple[Concept, ...]
            if isinstance(normalised, Or):
                members = normalised.parts
            elif isinstance(normalised, (Name, Bottom)):
                members = (normalised,)
            else:
                members = ()
            for member in members:
                if isinstance(member, Name):
                    self._add_unfold(self._table.intern(member), name_id)
            # closure: ¬m for every member m entails ¬name (keeps the
            # choose-rule from branching on provably-negative memberships)
            if members and all(isinstance(member, Name) for member in members):
                self._definition_closures.append(
                    (
                        self._table.complement_of(name_id),
                        tuple(
                            self._table.complement_of(self._table.intern(member))
                            for member in members
                        ),
                    )
                )
        self._universal = tuple(universal)
        # disjointness propagation: member id -> complements of its group mates
        self._disjoint_complements: dict[int, tuple[int, ...]] = {}
        groups_to_propagate = self._disjoint_groups if disjointness_propagation else []
        for group in groups_to_propagate:
            for member in group:
                others = tuple(
                    self._table.complement_of(other)
                    for other in group
                    if other != member
                )
                existing = self._disjoint_complements.get(member, ())
                self._disjoint_complements[member] = existing + others

    def _add_unfold(self, trigger: int, consequence: int) -> None:
        existing = self._unfold.get(trigger, ())
        if consequence not in existing:
            self._unfold[trigger] = existing + (consequence,)

    def is_satisfiable(
        self, concept: Concept, budget: "Budget | None" = None
    ) -> bool:
        """Is *concept* satisfiable w.r.t. the TBox?

        ``budget`` (default: the instance budget) bounds this one check;
        exhaustion raises :class:`~repro.errors.BudgetExhaustedError` --
        never a wrong verdict.
        """
        self.stats = TableauStats()
        table = self._table
        initial = (table.intern(nnf(concept)),) + self._universal
        cache = self.label_cache
        key = None
        if cache is not None:
            key = frozenset(table.concept(cid) for cid in initial)
            hit = cache.lookup(key)
            if hit is not None:
                obs.count("tableau.label_cache.hits")
                return hit
            obs.count("tableau.label_cache.misses")
        self._run_budget = budget if budget is not None else self.budget
        state = _State()
        root = state.create_node(parent=None, roles=frozenset())
        self.stats.nodes_created += 1
        self._charge_nodes(1)
        state.add(root, initial)
        span = obs.span("tableau.search")
        try:
            with span:
                completed = self._expand(state)
                span.set(sat=completed is not None, expansions=self.stats.expansions)
        finally:
            self._run_budget = None
            self._record_stats()
        if cache is not None:
            # only *decided* verdicts are stored: a budget trip raised above
            completed_root = (
                frozenset(table.concept(cid) for cid in completed.label(root))
                if completed is not None
                else None
            )
            cache.store(key, completed is not None, completed_root)
        return completed is not None

    def _charge_nodes(self, count: int) -> None:
        budget = self._run_budget
        if budget is not None:
            budget.charge_nodes(count, site="dl.tableau")
            budget.charge_memory(count * _NODE_MEMORY_ESTIMATE, site="dl.tableau")

    def _record_stats(self) -> None:
        """Fold the finished search's :class:`TableauStats` into the active
        metrics registry (one aggregate write per search -- the expansion
        loop itself stays uninstrumented)."""
        observation = obs.active()
        if observation is None or observation.registry is None:
            return
        registry = observation.registry
        stats = self.stats
        registry.count("tableau.searches")
        registry.count("tableau.expansions", stats.expansions)
        registry.count("tableau.nodes_created", stats.nodes_created)
        registry.count("tableau.branches", stats.branches)
        registry.count("tableau.merges", stats.merges)
        registry.count("tableau.clashes", stats.clashes)
        registry.observe("tableau.tree_size", stats.max_tree_size)
        registry.observe("tableau.branch_depth", stats.max_branch_depth)

    # ------------------------------------------------------------------ #
    # the expansion loop (explicit DFS stack)
    # ------------------------------------------------------------------ #

    def _expand(self, initial: "_State") -> "_State | None":
        """DFS over the branch stack; returns the completed clash-free state
        (its root label feeds the label-set cache), or None for UNSAT."""
        stack = [initial]
        while stack:
            if len(stack) > self.stats.max_branch_depth:
                self.stats.max_branch_depth = len(stack)
            state = stack.pop()
            if self._saturate(state, stack):
                return state
        return None

    def _saturate(self, state: "_State", stack: list["_State"]) -> bool:
        """Saturate one state; True when complete and clash-free.  On a
        nondeterministic choice, push one branch per alternative (first
        alternative on top) and return False."""
        budget = self._run_budget
        while True:
            self.stats.expansions += 1
            if budget is not None:
                budget.charge_expansions(1, site="dl.tableau")
                if not self.stats.expansions % 32:
                    budget.check_deadline(site="dl.tableau")
            faults.fault_point("dl.tableau", expansions=self.stats.expansions)
            if state.size() > self.max_nodes:
                raise TableauLimitError(
                    BudgetReason("nodes", self.max_nodes, state.size(), "dl.tableau")
                )
            if state.size() > self.stats.max_tree_size:
                self.stats.max_tree_size = state.size()
            if self._has_clash(state):
                self.stats.clashes += 1
                return False
            if self._apply_deterministic(state):
                continue
            alternatives = self._find_choice(state)
            if alternatives is not None:
                self.stats.branches += 1
                if budget is not None:
                    # each pushed branch clones the whole tree
                    budget.charge_memory(
                        len(alternatives) * state.size() * _NODE_MEMORY_ESTIMATE,
                        site="dl.tableau",
                    )
                for mutate in reversed(alternatives):
                    branch = state.clone()
                    mutate(branch)
                    stack.append(branch)
                return False
            if self._apply_generating(state):
                continue
            return True

    # ------------------------------------------------------------------ #
    # clash detection
    # ------------------------------------------------------------------ #

    def _has_clash(self, state: "_State") -> bool:
        table = self._table
        for node in state.alive_nodes():
            label = state.label(node)
            for group in self._disjoint_groups:
                if len(label & group) >= 2:
                    return True
            for cid in label:
                kind = table.kind[cid]
                if kind == "bottom":
                    return True
                if kind == "not" and table.body[cid] in label:
                    return True
                if kind == "atmost":
                    witnesses = self._witnesses(state, node, cid)
                    if len(witnesses) > table.n[cid] and all(
                        state.are_distinct(a, b)
                        for a, b in itertools.combinations(witnesses, 2)
                    ):
                        return True
        return False

    def _witnesses(self, state: "_State", node: int, cid: int) -> list[int]:
        """R-neighbours of *node* witnessing the body of a ≥/≤ concept."""
        table = self._table
        body = table.body[cid]
        body_is_top = table.is_top(body)
        return [
            neighbour
            for neighbour in state.r_neighbours(node, table.role[cid])
            if body_is_top or body in state.label(neighbour)
        ]

    # ------------------------------------------------------------------ #
    # deterministic rules
    # ------------------------------------------------------------------ #

    def _apply_deterministic(self, state: "_State") -> bool:
        table = self._table
        changed = False
        # only nodes whose labels or incident edges changed need re-saturating;
        # cross-node effects (∀-propagation) re-dirty their targets via add()
        todo = [node for node in state.dirty if node in state._labels]
        state.dirty.clear()
        for node in todo:
            label_now = state.label(node)
            for neg_name, neg_members in self._definition_closures:
                if neg_name not in label_now and all(
                    member in label_now for member in neg_members
                ):
                    state.add(node, (neg_name,))
                    changed = True
            for cid in list(state.label(node)):
                unfolded = self._unfold.get(cid)
                if unfolded is not None and state.add(node, unfolded):
                    changed = True
                guarded = self._guarded.get(cid)
                if guarded is not None and state.add(node, guarded):
                    changed = True
                mates = self._disjoint_complements.get(cid)
                if mates is not None and state.add(node, mates):
                    changed = True
                kind = table.kind[cid]
                if kind == "and":
                    if state.add(node, table.parts[cid]):
                        changed = True
                elif kind == "or" and self._bcp:
                    label = state.label(node)
                    if any(part in label for part in table.parts[cid]):
                        continue
                    open_parts = [
                        part
                        for part in table.parts[cid]
                        if table.complement_of(part) not in label
                    ]
                    if len(open_parts) == 1:
                        if state.add(node, (open_parts[0],)):
                            changed = True
                    elif not open_parts:
                        state.add(node, (table.intern(Bottom()),))
                        changed = True
                elif kind == "forall":
                    body = table.body[cid]
                    for neighbour in state.r_neighbours(node, table.role[cid]):
                        if state.add(neighbour, (body,)):
                            changed = True
        return changed

    # ------------------------------------------------------------------ #
    # nondeterministic rules
    # ------------------------------------------------------------------ #

    def _find_choice(self, state: "_State"):
        table = self._table
        # ⊔-rule (BCP has already handled the 0/1-open cases)
        for node in state.alive_nodes():
            label = state.label(node)
            for cid in label:
                if table.kind[cid] != "or":
                    continue
                if any(part in label for part in table.parts[cid]):
                    continue
                if self._bcp:
                    open_parts = [
                        part
                        for part in table.parts[cid]
                        if table.complement_of(part) not in label
                    ]
                else:
                    open_parts = list(table.parts[cid])
                if len(open_parts) >= (2 if self._bcp else 1):
                    return [_add_mutator(node, part) for part in open_parts]
        # choose-rule for ≤n R.C
        for node in state.alive_nodes():
            for cid in state.label(node):
                if table.kind[cid] != "atmost" or table.is_top(table.body[cid]):
                    continue
                body = table.body[cid]
                negated = table.complement_of(body)
                for neighbour in state.r_neighbours(node, table.role[cid]):
                    neighbour_label = state.label(neighbour)
                    if body not in neighbour_label and negated not in neighbour_label:
                        return [
                            _add_mutator(neighbour, body),
                            _add_mutator(neighbour, negated),
                        ]
        # ≤-rule (merge) when a number restriction is exceeded
        for node in state.alive_nodes():
            for cid in state.label(node):
                if table.kind[cid] != "atmost":
                    continue
                witnesses = self._witnesses(state, node, cid)
                if len(witnesses) <= table.n[cid]:
                    continue
                mergeable = [
                    (a, b)
                    for a, b in itertools.combinations(witnesses, 2)
                    if not state.are_distinct(a, b)
                ]
                if not mergeable:
                    continue  # all-distinct case is a clash, reported above
                self.stats.merges += 1
                return [_merge_mutator(node, a, b, state) for a, b in mergeable]
        return None

    # ------------------------------------------------------------------ #
    # generating rules (subject to pairwise blocking)
    # ------------------------------------------------------------------ #

    def _apply_generating(self, state: "_State") -> bool:
        table = self._table
        for node in state.alive_nodes():
            if state.is_blocked(node):
                continue
            for cid in state.label(node):
                kind = table.kind[cid]
                if kind == "exists":
                    if not self._witnesses(state, node, cid):
                        self._create_successors(state, node, cid, 1)
                        return True
                elif kind == "atleast" and table.n[cid] >= 1:
                    witnesses = self._witnesses(state, node, cid)
                    if not _has_distinct_subset(state, witnesses, table.n[cid]):
                        self._create_successors(state, node, cid, table.n[cid])
                        return True
        return False

    def _create_successors(self, state: "_State", node: int, cid: int, count: int) -> None:
        table = self._table
        role = table.role[cid]
        body = table.body[cid]
        created = []
        self._charge_nodes(count)
        for _ in range(count):
            child = state.create_node(parent=node, roles=frozenset({role}))
            self.stats.nodes_created += 1
            concepts = () if table.is_top(body) else (body,)
            state.add(child, concepts + self._universal)
            created.append(child)
        for a, b in itertools.combinations(created, 2):
            state.set_distinct(a, b)


def _add_mutator(node: int, cid: int):
    def apply(state: "_State") -> None:
        state.add(node, (cid,))

    return apply


def _merge_mutator(anchor: int, a: int, b: int, current: "_State"):
    """Merge b into a (or a into b when b is on the anchor's ancestor side)."""
    if current.is_ancestor_of(b, anchor):
        keep, drop = b, a
    else:
        keep, drop = a, b

    def apply(state: "_State") -> None:
        state.merge(anchor, keep, drop)

    return apply


def _has_distinct_subset(state: "_State", witnesses: list[int], n: int) -> bool:
    """Do *witnesses* contain n pairwise-distinct members?"""
    if len(witnesses) < n:
        return False
    if n == 1:
        return True
    for subset in itertools.combinations(witnesses, n):
        if all(state.are_distinct(a, b) for a, b in itertools.combinations(subset, 2)):
            return True
    return False


class _State:
    """A completion tree over interned concept ids: labelled nodes,
    role-labelled tree edges, and an inequality relation."""

    __slots__ = (
        "_labels",
        "_parent",
        "_roles",
        "_children",
        "_distinct",
        "_next_id",
        "_version",
        "_neighbour_cache",
        "_alive_cache",
        "dirty",
    )

    def __init__(self) -> None:
        self._labels: dict[int, set[int]] = {}
        self._parent: dict[int, int | None] = {}
        self._roles: dict[int, frozenset[Role]] = {}  # roles on edge parent -> node
        self._children: dict[int, list[int]] = {}
        self._distinct: set[frozenset[int]] = set()
        self._next_id = 0
        #: nodes whose labels/edges changed since they were last saturated
        self.dirty: set[int] = set()
        # structure caches, invalidated whenever the tree shape changes
        self._version = 0
        self._neighbour_cache: dict[tuple[int, Role], list[int]] = {}
        self._alive_cache: list[int] | None = None

    def _structure_changed(self) -> None:
        self._version += 1
        self._neighbour_cache.clear()
        self._alive_cache = None

    # -- construction ---------------------------------------------------- #

    def create_node(self, parent: int | None, roles: frozenset[Role]) -> int:
        node = self._next_id
        self._next_id += 1
        self._labels[node] = set()
        self._parent[node] = parent
        self._roles[node] = roles
        self._children[node] = []
        if parent is not None:
            self._children[parent].append(node)
            self.dirty.add(parent)
        self.dirty.add(node)
        self._structure_changed()
        return node

    def add(self, node: int, cids: tuple[int, ...]) -> bool:
        label = self._labels[node]
        before = len(label)
        label.update(cids)
        if len(label) != before:
            self.dirty.add(node)
            return True
        return False

    def set_distinct(self, a: int, b: int) -> None:
        self._distinct.add(frozenset({a, b}))

    # -- queries ----------------------------------------------------------- #

    def alive_nodes(self) -> list[int]:
        if self._alive_cache is None:
            self._alive_cache = sorted(self._labels)
        return self._alive_cache

    def size(self) -> int:
        return len(self._labels)

    def label(self, node: int) -> set[int]:
        return self._labels[node]

    def are_distinct(self, a: int, b: int) -> bool:
        return frozenset({a, b}) in self._distinct

    def is_ancestor_of(self, candidate: int, node: int) -> bool:
        current = self._parent.get(node)
        while current is not None:
            if current == candidate:
                return True
            current = self._parent[current]
        return False

    def r_neighbours(self, node: int, role: Role) -> list[int]:
        """All y that are R-neighbours of *node*: children whose edge carries
        the role, plus the parent when the node's own edge carries its inverse."""
        key = (node, role)
        cached = self._neighbour_cache.get(key)
        if cached is not None:
            return cached
        found = [child for child in self._children[node] if role in self._roles[child]]
        parent = self._parent[node]
        if parent is not None and role.inv() in self._roles[node]:
            found.append(parent)
        self._neighbour_cache[key] = found
        return found

    # -- pairwise blocking --------------------------------------------------- #

    def is_blocked(self, node: int) -> bool:
        current: int | None = node
        while current is not None:
            if self._directly_blocked(current):
                return True
            current = self._parent[current]
        return False

    def _directly_blocked(self, node: int) -> bool:
        parent = self._parent[node]
        if parent is None:
            return False
        blocker = parent
        while blocker is not None and self._parent[blocker] is not None:
            if (
                self._labels[node] == self._labels[blocker]
                and self._labels[parent] == self._labels[self._parent[blocker]]
                and self._roles[node] == self._roles[blocker]
            ):
                return True
            blocker = self._parent[blocker]
        return False

    # -- merging --------------------------------------------------------------- #

    def merge(self, anchor: int, keep: int, drop: int) -> None:
        """Merge *drop* into *keep*; both are R-neighbours of *anchor*."""
        self._labels[keep].update(self._labels[drop])
        self.dirty.update({anchor, keep})
        parent_of_anchor = self._parent.get(anchor)
        if parent_of_anchor is not None:
            self.dirty.add(parent_of_anchor)
        if self._parent.get(drop) == anchor:
            if self._parent.get(keep) == anchor:
                self._roles[keep] = self._roles[keep] | self._roles[drop]
            else:
                # keep is on the ancestor side: redirect drop's connection as
                # inverse roles on the edge parent(anchor) -> anchor
                inverse_roles = frozenset(role.inv() for role in self._roles[drop])
                self._roles[anchor] = self._roles[anchor] | inverse_roles
        for pair in [pair for pair in self._distinct if drop in pair]:
            other = next(iter(pair - {drop}), keep)
            self._distinct.discard(pair)
            if other != keep:
                self._distinct.add(frozenset({keep, other}))
        self._remove_subtree(drop)
        self._structure_changed()

    def _remove_subtree(self, node: int) -> None:
        for child in list(self._children[node]):
            self._remove_subtree(child)
        parent = self._parent[node]
        if parent is not None and node in self._children[parent]:
            self._children[parent].remove(node)
        del self._labels[node]
        del self._parent[node]
        del self._roles[node]
        del self._children[node]
        self.dirty.discard(node)

    # -- cloning ------------------------------------------------------------------ #

    def clone(self) -> "_State":
        other = _State.__new__(_State)
        other._labels = {node: set(label) for node, label in self._labels.items()}
        other._parent = dict(self._parent)
        other._roles = dict(self._roles)
        other._children = {
            node: list(children) for node, children in self._children.items()
        }
        other._distinct = set(self._distinct)
        other._next_id = self._next_id
        other.dirty = set(self.dirty)
        other._version = 0
        other._neighbour_cache = {}
        other._alive_cache = None
        return other
