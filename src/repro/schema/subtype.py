"""The subtype relation ``⊑_S`` (Section 4.3 of the paper).

``⊑_S`` is the smallest relation over ``T ∪ W_T`` closed under:

    (1) t ⊑ t
    (2) t ∈ implementation(s)  ⟹  t ⊑ s
    (3) t ∈ union(s)           ⟹  t ⊑ s
    (4) t ⊑ s                  ⟹  [t] ⊑ [s]
    (5) t ⊑ s                  ⟹  t ⊑ [s]
    (6) t ⊑ s                  ⟹  t! ⊑ s
    (7) t ⊑ s                  ⟹  t! ⊑ s!

:func:`is_subtype` implements the relation exactly as stated, on both named
types and :class:`~repro.schema.typerefs.TypeRef` wrappings.

Note one consequence the validation rules must work around: no rule derives
``t ⊑ s!`` for unwrapped ``t``, so a node label is never a subtype of a
non-null-wrapped field type.  Rules DS3/DS4 of the paper compare node labels
against ``type_S(t, f)`` directly, which would render them vacuous for
non-null field types; following the paper's examples, the validators compare
labels against ``basetype(type_S(t, f))`` instead (see
:mod:`repro.validation.rules_directives`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from .typerefs import TypeRef

if TYPE_CHECKING:  # pragma: no cover
    from .model import GraphQLSchema

TypeOrRef = Union[str, TypeRef]

# internal structural form: ("named", n) | ("list", inner) | ("nonnull", inner)
_Struct = tuple


def _structure(type_or_ref: TypeOrRef) -> _Struct:
    if isinstance(type_or_ref, str):
        return ("named", type_or_ref)
    ref = type_or_ref
    node: _Struct = ("named", ref.base)
    if ref.is_list:
        if ref.inner_non_null:
            node = ("nonnull", node)
        node = ("list", node)
    if ref.non_null:
        node = ("nonnull", node)
    return node


def is_named_subtype(schema: "GraphQLSchema", sub: str, sup: str) -> bool:
    """``sub ⊑_S sup`` for two named types (rules 1-3)."""
    if sub == sup:
        return True
    if schema.is_interface_type(sup):
        return sub in schema.implementation(sup)
    if schema.is_union_type(sup):
        return sub in schema.union(sup)
    return False


def is_subtype(schema: "GraphQLSchema", sub: TypeOrRef, sup: TypeOrRef) -> bool:
    """``sub ⊑_S sup`` over ``T ∪ W_T`` (rules 1-7), faithfully."""
    return _subtype(schema, _structure(sub), _structure(sup))


def _subtype(schema: "GraphQLSchema", sub: _Struct, sup: _Struct) -> bool:
    if sub == sup:  # rule 1 (extended to identical wrapped shapes)
        return True
    sub_kind, sub_inner = sub
    sup_kind, sup_inner = sup
    if sub_kind == "named" and sup_kind == "named":  # rules 2, 3
        return is_named_subtype(schema, sub_inner, sup_inner)
    if sub_kind == "nonnull":
        if _subtype(schema, sub_inner, sup):  # rule 6
            return True
        if sup_kind == "nonnull" and _subtype(schema, sub_inner, sup_inner):  # rule 7
            return True
        # fall through: rule 5 may still wrap the non-null sub into a list
    if sup_kind == "list":
        if sub_kind == "list" and _subtype(schema, sub_inner, sup_inner):  # rule 4
            return True
        return _subtype(schema, sub, sup_inner)  # rule 5
    return False


def label_conforms(schema: "GraphQLSchema", label: str, declared: TypeOrRef) -> bool:
    """Does a node label conform to a declared edge-target type?

    This is the comparison rules WS3/DS3/DS4 need: the label (an object type
    name) against the *base type* of the field's declared type.  WS3 already
    phrases it that way; DS3/DS4 are phrased against the wrapped type, which
    the module docstring explains would make them vacuous for non-null
    shapes, so all three use the base type here.
    """
    base = declared if isinstance(declared, str) else declared.base
    return is_named_subtype(schema, label, base)
