"""Type references: named types and the paper's admissible wrapping types.

Section 4.1 of the paper allows exactly these shapes over a named type ``t``:

    t     t!     [t]     [t!]     [t]!     [t!]!

(the four wrapped shapes of §3.4.1 plus the unwrapped name and the
non-null-wrapped list of §3.12.1).  :class:`TypeRef` encodes precisely this
six-shape family; deeper nesting such as ``[[t]]`` is representable in the
SDL grammar but rejected when building a formal schema.

``basetype`` (the paper's recursively-defined function) is simply the
``base`` attribute here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchemaError
from ..sdl import ast


@dataclass(frozen=True)
class TypeRef:
    """A named type with the paper's admissible wrappings.

    Attributes:
        base: The underlying named type -- the value of ``basetype``.
        non_null: Whether the outermost type is non-null (``...!``).
        is_list: Whether the type is a list type.
        inner_non_null: For list types, whether the wrapped element type is
            non-null (``[t!]``); always False for non-list types.
    """

    base: str
    non_null: bool = False
    is_list: bool = False
    inner_non_null: bool = False

    def __post_init__(self) -> None:
        if self.inner_non_null and not self.is_list:
            raise SchemaError("inner_non_null requires a list type")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def named(base: str) -> "TypeRef":
        """The unwrapped named type ``t``."""
        return TypeRef(base)

    @staticmethod
    def non_null_of(base: str) -> "TypeRef":
        """``t!``."""
        return TypeRef(base, non_null=True)

    @staticmethod
    def list_of(base: str, inner_non_null: bool = False, non_null: bool = False) -> "TypeRef":
        """``[t]`` / ``[t!]`` / ``[t]!`` / ``[t!]!``."""
        return TypeRef(base, non_null=non_null, is_list=True, inner_non_null=inner_non_null)

    @staticmethod
    def from_ast(node: ast.TypeNode) -> "TypeRef":
        """Convert an SDL type node, rejecting shapes outside the paper's six.

        Raises :class:`SchemaError` for nested lists (``[[t]]``) or other
        inadmissible nesting.
        """
        non_null = False
        if isinstance(node, ast.NonNullTypeNode):
            non_null = True
            node = node.of_type
        if isinstance(node, ast.NamedTypeNode):
            return TypeRef(node.name, non_null=non_null)
        if isinstance(node, ast.ListTypeNode):
            inner = node.of_type
            inner_non_null = False
            if isinstance(inner, ast.NonNullTypeNode):
                inner_non_null = True
                inner = inner.of_type
            if not isinstance(inner, ast.NamedTypeNode):
                raise SchemaError(
                    "nested list types are outside the paper's admissible wrappings"
                )
            return TypeRef(
                inner.name,
                non_null=non_null,
                is_list=True,
                inner_non_null=inner_non_null,
            )
        raise SchemaError(f"cannot interpret type node: {node!r}")

    @staticmethod
    def parse(source: str) -> "TypeRef":
        """Parse a type reference from SDL text, e.g. ``TypeRef.parse("[ID!]!")``."""
        from ..sdl.parser import parse_type

        return TypeRef.from_ast(parse_type(source))

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def to_ast(self) -> ast.TypeNode:
        """The SDL AST node for this reference."""
        node: ast.TypeNode = ast.NamedTypeNode(self.base)
        if self.is_list:
            if self.inner_non_null:
                node = ast.NonNullTypeNode(node)
            node = ast.ListTypeNode(node)
        if self.non_null:
            node = ast.NonNullTypeNode(node)
        return node

    @property
    def basetype(self) -> str:
        """The paper's ``basetype`` function."""
        return self.base

    @property
    def is_wrapped(self) -> bool:
        """True unless this is a bare named type."""
        return self.non_null or self.is_list

    def unwrap_non_null(self) -> "TypeRef":
        """Drop an outer non-null wrapper (identity if there is none)."""
        if not self.non_null:
            return self
        return TypeRef(self.base, False, self.is_list, self.inner_non_null)

    def __str__(self) -> str:
        inner = self.base + ("!" if self.is_list and self.inner_non_null else "")
        text = f"[{inner}]" if self.is_list else inner
        return text + ("!" if self.non_null else "")


#: All six admissible wrapping shapes of one named type, for enumeration in
#: tests and in the satisfiability engine (the W_X of the paper).
def all_wrappings(base: str) -> tuple[TypeRef, ...]:
    return (
        TypeRef(base),
        TypeRef(base, non_null=True),
        TypeRef(base, is_list=True),
        TypeRef(base, is_list=True, inner_non_null=True),
        TypeRef(base, is_list=True, non_null=True),
        TypeRef(base, is_list=True, inner_non_null=True, non_null=True),
    )
