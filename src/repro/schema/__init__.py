"""The formal GraphQL schema model and its Property Graph interpretation."""

from .build import build_schema, parse_schema, value_to_python
from .consistency import (
    check_consistency,
    consistency_errors,
    directives_consistency_errors,
    interface_consistency_errors,
    is_consistent,
)
from .directives import (
    DISTINCT,
    KEY,
    NO_LOOPS,
    REQUIRED,
    REQUIRED_FOR_TARGET,
    STANDARD_DIRECTIVES,
    UNIQUE_FOR_TARGET,
    canonical_directive_name,
)
from .model import (
    AppliedDirective,
    ArgumentDefinition,
    DirectiveDefinition,
    FieldDefinition,
    FieldKind,
    GraphQLSchema,
    InterfaceType,
    ObjectType,
    UnionType,
)
from .printer import print_schema, schema_to_document
from .scalars import BUILTIN_SCALARS, ScalarRegistry
from .subtype import is_named_subtype, is_subtype, label_conforms
from .typerefs import TypeRef, all_wrappings

__all__ = [
    "AppliedDirective",
    "ArgumentDefinition",
    "BUILTIN_SCALARS",
    "DISTINCT",
    "DirectiveDefinition",
    "FieldDefinition",
    "FieldKind",
    "GraphQLSchema",
    "InterfaceType",
    "KEY",
    "NO_LOOPS",
    "ObjectType",
    "REQUIRED",
    "REQUIRED_FOR_TARGET",
    "STANDARD_DIRECTIVES",
    "ScalarRegistry",
    "TypeRef",
    "UNIQUE_FOR_TARGET",
    "UnionType",
    "all_wrappings",
    "build_schema",
    "canonical_directive_name",
    "check_consistency",
    "consistency_errors",
    "directives_consistency_errors",
    "interface_consistency_errors",
    "is_consistent",
    "is_named_subtype",
    "is_subtype",
    "label_conforms",
    "parse_schema",
    "print_schema",
    "schema_to_document",
    "value_to_python",
]
