"""The six constraint directives the paper introduces (Sections 3 and 4.3).

Definition 4.5's closing assumption: ``D`` contains ``@distinct``,
``@noLoops``, ``@required``, ``@requiredForTarget``, ``@uniqueForTarget``
and ``@key``; all take no arguments except ``@key``, whose ``fields``
argument has type ``[String!]!``.

Section 3 spells the no-loops directive ``@noloops`` while Definition 5.2
spells it ``@noLoops``; both spellings are accepted on input and canonicalised
to ``noLoops``.
"""

from __future__ import annotations

from .typerefs import TypeRef

REQUIRED = "required"
KEY = "key"
DISTINCT = "distinct"
NO_LOOPS = "noLoops"
UNIQUE_FOR_TARGET = "uniqueForTarget"
REQUIRED_FOR_TARGET = "requiredForTarget"

#: Canonical names of the paper's standard directives.
STANDARD_DIRECTIVES = (
    REQUIRED,
    KEY,
    DISTINCT,
    NO_LOOPS,
    UNIQUE_FOR_TARGET,
    REQUIRED_FOR_TARGET,
)

#: Alternative spellings accepted on input, mapped to canonical names.
DIRECTIVE_ALIASES = {
    "noloops": NO_LOOPS,
    "noLoops": NO_LOOPS,
}

#: Argument signatures: directive name -> {argument name: type}.
STANDARD_DIRECTIVE_ARGS: dict[str, dict[str, TypeRef]] = {
    REQUIRED: {},
    KEY: {"fields": TypeRef.list_of("String", inner_non_null=True, non_null=True)},
    DISTINCT: {},
    NO_LOOPS: {},
    UNIQUE_FOR_TARGET: {},
    REQUIRED_FOR_TARGET: {},
}

#: Where each standard directive may legally appear.
OBJECT_LEVEL_DIRECTIVES = frozenset({KEY})
FIELD_LEVEL_DIRECTIVES = frozenset(
    {REQUIRED, DISTINCT, NO_LOOPS, UNIQUE_FOR_TARGET, REQUIRED_FOR_TARGET}
)


def canonical_directive_name(name: str) -> str:
    """Map alias spellings (``noloops``) to the canonical directive name."""
    return DIRECTIVE_ALIASES.get(name, name)
