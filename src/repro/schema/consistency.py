"""Schema consistency (Definitions 4.3-4.5 of the paper).

A schema is *consistent* when it is both interface consistent and directives
consistent; the paper assumes all schemas are consistent, so the builder
rejects inconsistent ones by default.

Interface consistency (Definition 4.3): every object type implementing an
interface must (1) contain every interface field with a subtype-compatible
type, (2) repeat every interface-field argument at the identical type, and
(3) add extra arguments only at nullable types.

Directives consistency (Definition 4.4): every applied directive must supply
every non-null-typed argument of its directive definition, and every supplied
argument value must lie in ``values_W`` of its declared type.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ConsistencyError
from .subtype import is_subtype

if TYPE_CHECKING:  # pragma: no cover
    from .model import AppliedDirective, GraphQLSchema


def _at(node: object) -> str:
    """`` (at line L, column C)`` when the node carries a source span.

    Model objects assembled programmatically have no span (line 0) and
    contribute nothing, so messages stay clean for in-memory schemas.
    """
    line = getattr(node, "line", 0)
    column = getattr(node, "column", 0)
    return f" (at line {line}, column {column})" if line else ""


def interface_consistency_errors(schema: "GraphQLSchema") -> list[str]:
    """All violations of Definition 4.3, as human-readable messages."""
    errors: list[str] = []
    for interface_name, interface_type in schema.interface_types.items():
        for object_name in schema.implementation(interface_name):
            object_type = schema.object_types[object_name]
            for interface_field in interface_type.fields:
                object_field = object_type.field(interface_field.name)
                where = f"{object_name} (implements {interface_name})"
                if object_field is None:
                    errors.append(
                        f"{where} lacks interface field {interface_field.name}"
                        f"{_at(object_type)}"
                    )
                    continue
                if not is_subtype(schema, object_field.type, interface_field.type):
                    errors.append(
                        f"{where}: field {interface_field.name} has type "
                        f"{object_field.type}, not a subtype of "
                        f"{interface_field.type}{_at(object_field)}"
                    )
                for interface_arg in interface_field.arguments:
                    object_arg = object_field.argument(interface_arg.name)
                    if object_arg is None:
                        errors.append(
                            f"{where}: field {interface_field.name} lacks argument "
                            f"{interface_arg.name}{_at(object_field)}"
                        )
                    elif object_arg.type != interface_arg.type:
                        errors.append(
                            f"{where}: argument {interface_field.name}"
                            f"({interface_arg.name}) has type {object_arg.type}, "
                            f"expected exactly {interface_arg.type}"
                            f"{_at(object_arg)}"
                        )
                interface_arg_names = {
                    arg.name for arg in interface_field.arguments
                }
                for object_arg in object_field.arguments:
                    if (
                        object_arg.name not in interface_arg_names
                        and object_arg.type.non_null
                    ):
                        errors.append(
                            f"{where}: extra argument {interface_field.name}"
                            f"({object_arg.name}) beyond interface "
                            f"{interface_name} must have a nullable type, not "
                            f"{object_arg.type} (Definition 4.3(3))"
                            f"{_at(object_arg)}"
                        )
    return errors


def directives_consistency_errors(schema: "GraphQLSchema") -> list[str]:
    """All violations of Definition 4.4, as human-readable messages."""
    errors: list[str] = []
    for where, directive in _all_applied_directives(schema):
        definition = schema.directive_definitions.get(directive.name)
        if definition is None:
            errors.append(
                f"{where}: directive @{directive.name} is not defined{_at(directive)}"
            )
            continue
        supplied = dict(directive.arguments)
        for arg_name, arg_type in definition.arguments.items():
            if arg_type.non_null and arg_name not in supplied:
                errors.append(
                    f"{where}: @{directive.name} lacks required argument "
                    f"{arg_name}{_at(directive)}"
                )
        for arg_name, value in supplied.items():
            arg_type = definition.arguments.get(arg_name)
            if arg_type is None:
                errors.append(
                    f"{where}: @{directive.name} has undefined argument "
                    f"{arg_name}{_at(directive)}"
                )
                continue
            if not schema.scalars.in_values_w(value, arg_type):
                errors.append(
                    f"{where}: @{directive.name}({arg_name}: {value!r}) is not a "
                    f"value of type {arg_type}{_at(directive)}"
                )
    return errors


def consistency_errors(schema: "GraphQLSchema") -> list[str]:
    """All violations of Definition 4.5 (interface + directives consistency)."""
    return interface_consistency_errors(schema) + directives_consistency_errors(schema)


def is_consistent(schema: "GraphQLSchema") -> bool:
    """Definition 4.5: interface consistent and directives consistent."""
    return not consistency_errors(schema)


def check_consistency(schema: "GraphQLSchema") -> None:
    """Raise :class:`ConsistencyError` listing all violations, if any."""
    errors = consistency_errors(schema)
    if errors:
        raise ConsistencyError(
            "schema is not consistent (Definition 4.5):\n  " + "\n  ".join(errors)
        )


def _all_applied_directives(
    schema: "GraphQLSchema",
) -> list[tuple[str, "AppliedDirective"]]:
    """Every (location description, applied directive) pair in the schema."""
    found: list[tuple[str, "AppliedDirective"]] = []
    for type_name in (
        *schema.object_types,
        *schema.interface_types,
        *schema.union_types,
    ):
        for directive in schema.directives_t(type_name):
            found.append((f"type {type_name}", directive))
    for type_name, field_name, field_def in schema.field_declarations():
        for directive in field_def.directives:
            found.append((f"field {type_name}.{field_name}", directive))
        for argument in field_def.arguments:
            for directive in argument.directives:
                found.append(
                    (f"argument {type_name}.{field_name}({argument.name})", directive)
                )
    return found
