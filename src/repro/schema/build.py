"""Build a formal :class:`GraphQLSchema` from a parsed SDL document.

This module realises the interpretation rules of Section 3 plus the
"ignored features" policy of Section 3.6:

* object types define node types, interface/union types define edge-target
  families, scalar and enum declarations extend ``S``;
* root operation types (named in a ``schema { ... }`` block, or the
  conventionally-named ``Query``/``Mutation``/``Subscription`` when there is
  no block) are dropped, together with fields referencing them;
* field arguments on attribute definitions are ignored;
* field arguments whose type is not scalar/enum-based are ignored;
* applications of unknown directives are ignored;
* ``input`` type definitions are ignored.

Every ignored feature produces an entry in ``schema.warnings``.  Anything
that cannot be interpreted *and* cannot be ignored (unknown referenced types,
inadmissible type wrappings, duplicate definitions) raises
:class:`~repro.errors.SchemaError`.  After assembly the schema is checked for
interface and directives consistency (Definitions 4.3/4.4) because the paper
assumes all schemas are consistent.
"""

from __future__ import annotations

from typing import Callable, Mapping

from .. import obs
from ..errors import SchemaError
from ..sdl import ast
from ..sdl.parser import parse_document
from .consistency import check_consistency
from .directives import (
    FIELD_LEVEL_DIRECTIVES,
    OBJECT_LEVEL_DIRECTIVES,
    STANDARD_DIRECTIVE_ARGS,
    canonical_directive_name,
)
from .model import (
    AppliedDirective,
    ArgumentDefinition,
    DirectiveDefinition,
    FieldDefinition,
    FieldKind,
    GraphQLSchema,
    InterfaceType,
    ObjectType,
    UnionType,
)
from .scalars import ScalarRegistry
from .typerefs import TypeRef

_ROOT_OPERATION_NAMES = ("Query", "Mutation", "Subscription")


def parse_schema(
    source: str,
    check: bool = True,
    scalar_predicates: Mapping[str, Callable[[object], bool]] | None = None,
) -> GraphQLSchema:
    """Parse SDL text and build the formal schema in one step."""
    with obs.span("sdl.parse", bytes=len(source)):
        document = parse_document(source)
    return build_schema(document, check=check, scalar_predicates=scalar_predicates)


def build_schema(
    document: ast.Document,
    check: bool = True,
    scalar_predicates: Mapping[str, Callable[[object], bool]] | None = None,
) -> GraphQLSchema:
    """Interpret an SDL document as a Property Graph schema.

    Args:
        document: The parsed SDL document.
        check: Run the consistency checks of Definitions 4.3/4.4 (on by
            default; the paper assumes consistent schemas).
        scalar_predicates: Optional value-domain predicates for custom
            scalars declared in the document (by default a custom scalar
            accepts every atomic value).

    Raises:
        SchemaError: On uninterpretable input.
        ConsistencyError: When *check* is set and the schema is inconsistent.
    """
    span = obs.span("schema.build", definitions=len(document.definitions))
    with span:
        builder = _SchemaBuilder(document, scalar_predicates or {})
        schema = builder.build()
        if check:
            check_consistency(schema)
        span.set(
            types=len(schema.object_types),
            warnings=len(schema.warnings),
        )
    return schema


def value_to_python(node: ast.ValueNode) -> object:
    """Convert a constant SDL value literal into a plain Python value.

    Enum values become their name strings, lists become tuples, input
    objects become tuples of (name, value) pairs, ``null`` becomes None.
    """
    if isinstance(node, ast.IntValue):
        return node.value
    if isinstance(node, ast.FloatValue):
        return node.value
    if isinstance(node, ast.StringValue):
        return node.value
    if isinstance(node, ast.BooleanValue):
        return node.value
    if isinstance(node, ast.NullValue):
        return None
    if isinstance(node, ast.EnumValue):
        return node.name
    if isinstance(node, ast.ListValue):
        return tuple(value_to_python(item) for item in node.values)
    if isinstance(node, ast.ObjectValue):
        return tuple((name, value_to_python(value)) for name, value in node.fields)
    raise SchemaError(f"not a constant value: {node!r}")


class _SchemaBuilder:
    def __init__(
        self,
        document: ast.Document,
        scalar_predicates: Mapping[str, Callable[[object], bool]],
    ) -> None:
        self._document = document
        self._scalar_predicates = scalar_predicates
        self._warnings: list[str] = []
        self._scalars = ScalarRegistry()
        self._directive_defs: dict[str, DirectiveDefinition] = {}
        self._object_defs: dict[str, ast.ObjectTypeDefinition] = {}
        self._interface_defs: dict[str, ast.InterfaceTypeDefinition] = {}
        self._union_defs: dict[str, ast.UnionTypeDefinition] = {}
        self._input_names: set[str] = set()
        self._root_types: set[str] = set()

    # ------------------------------------------------------------------ #

    def build(self) -> GraphQLSchema:
        self._collect_definitions()
        self._determine_root_types()
        object_types = {
            name: self._build_object_type(defn)
            for name, defn in self._object_defs.items()
            if name not in self._root_types
        }
        interface_types = {
            name: self._build_interface_type(defn)
            for name, defn in self._interface_defs.items()
        }
        union_types = {
            name: self._build_union_type(defn) for name, defn in self._union_defs.items()
        }
        return GraphQLSchema(
            object_types=object_types,
            interface_types=interface_types,
            union_types=union_types,
            scalars=self._scalars,
            directive_definitions=self._directive_defs,
            warnings=tuple(self._warnings),
        )

    # ------------------------------------------------------------------ #
    # pass 1: names
    # ------------------------------------------------------------------ #

    def _collect_definitions(self) -> None:
        seen: set[str] = set()

        def claim(name: str, what: str) -> None:
            if name in seen:
                raise SchemaError(f"duplicate type definition: {what} {name}")
            seen.add(name)

        for definition in self._document.definitions:
            if isinstance(definition, ast.ScalarTypeDefinition):
                claim(definition.name, "scalar")
                self._scalars.register_scalar(
                    definition.name, self._scalar_predicates.get(definition.name)
                )
            elif isinstance(definition, ast.EnumTypeDefinition):
                claim(definition.name, "enum")
                if not definition.values:
                    raise SchemaError(f"enum type {definition.name} has no values")
                self._scalars.register_enum(
                    definition.name, (value.name for value in definition.values)
                )
            elif isinstance(definition, ast.ObjectTypeDefinition):
                claim(definition.name, "type")
                self._object_defs[definition.name] = definition
            elif isinstance(definition, ast.InterfaceTypeDefinition):
                claim(definition.name, "interface")
                self._interface_defs[definition.name] = definition
            elif isinstance(definition, ast.UnionTypeDefinition):
                claim(definition.name, "union")
                self._union_defs[definition.name] = definition
            elif isinstance(definition, ast.InputObjectTypeDefinition):
                claim(definition.name, "input")
                self._input_names.add(definition.name)
                self._warnings.append(
                    f"input type {definition.name} is ignored "
                    "(input types play no role in Property Graph schemas)"
                )
            elif isinstance(definition, ast.DirectiveDefinition):
                self._register_directive_definition(definition)
            elif isinstance(definition, ast.SchemaDefinition):
                pass  # handled in _determine_root_types
            else:  # pragma: no cover - parser produces no other kinds
                raise SchemaError(f"unsupported definition: {definition!r}")
        for name, args in STANDARD_DIRECTIVE_ARGS.items():
            self._directive_defs.setdefault(
                name,
                DirectiveDefinition(name, dict(args), ("OBJECT", "FIELD_DEFINITION")),
            )

    def _register_directive_definition(self, definition: ast.DirectiveDefinition) -> None:
        name = canonical_directive_name(definition.name)
        if name in STANDARD_DIRECTIVE_ARGS:
            # Definition 4.5 fixes the standard directives' signatures
            raise SchemaError(
                f"duplicate directive definition: @{name} is a standard directive"
            )
        if name in self._directive_defs:
            raise SchemaError(f"duplicate directive definition: @{name}")
        arguments: dict[str, TypeRef] = {}
        for arg in definition.arguments:
            ref = TypeRef.from_ast(arg.type)
            arguments[arg.name] = ref
        self._directive_defs[name] = DirectiveDefinition(
            name, arguments, definition.locations
        )

    def _determine_root_types(self) -> None:
        schema_blocks = self._document.definitions_of(ast.SchemaDefinition)
        if schema_blocks:
            for block in schema_blocks:
                for operation, type_name in block.operation_types:
                    self._root_types.add(type_name)
                    self._warnings.append(
                        f"root operation type {type_name} ({operation}) is ignored "
                        "(Section 3.6: root types play no role in Property Graph schemas)"
                    )
        else:
            for conventional in _ROOT_OPERATION_NAMES:
                if conventional in self._object_defs:
                    self._root_types.add(conventional)
                    self._warnings.append(
                        f"conventionally-named root type {conventional} is ignored "
                        "(Section 3.6)"
                    )

    # ------------------------------------------------------------------ #
    # pass 2: types
    # ------------------------------------------------------------------ #

    def _kind_of_basetype(self, base: str) -> str | None:
        if self._scalars.is_scalar(base):
            return "scalar"
        if base in self._object_defs and base not in self._root_types:
            return "object"
        if base in self._interface_defs:
            return "interface"
        if base in self._union_defs:
            return "union"
        if base in self._input_names:
            return "input"
        if base in self._root_types:
            return "root"
        return None

    def _build_object_type(self, definition: ast.ObjectTypeDefinition) -> ObjectType:
        for interface_name in definition.interfaces:
            if interface_name not in self._interface_defs:
                raise SchemaError(
                    f"type {definition.name} implements unknown interface {interface_name}"
                )
        return ObjectType(
            name=definition.name,
            fields=self._build_fields(definition.name, definition.fields),
            interfaces=definition.interfaces,
            directives=self._build_directives(
                definition.directives, f"type {definition.name}", location="OBJECT"
            ),
            description=definition.description,
            line=definition.line,
            column=definition.column,
        )

    def _build_interface_type(
        self, definition: ast.InterfaceTypeDefinition
    ) -> InterfaceType:
        return InterfaceType(
            name=definition.name,
            fields=self._build_fields(definition.name, definition.fields),
            directives=self._build_directives(
                definition.directives, f"interface {definition.name}", location="OBJECT"
            ),
            description=definition.description,
            line=definition.line,
            column=definition.column,
        )

    def _build_union_type(self, definition: ast.UnionTypeDefinition) -> UnionType:
        members: set[str] = set()
        for member in definition.types:
            if member in self._root_types:
                self._warnings.append(
                    f"union {definition.name} member {member} is a root type; ignored"
                )
                continue
            if member not in self._object_defs:
                raise SchemaError(
                    f"union {definition.name} member {member} is not an object type"
                )
            members.add(member)
        if not members:
            raise SchemaError(f"union {definition.name} has no (usable) member types")
        return UnionType(
            name=definition.name,
            members=frozenset(members),
            directives=self._build_directives(
                definition.directives, f"union {definition.name}", location="UNION"
            ),
            description=definition.description,
            line=definition.line,
            column=definition.column,
        )

    def _build_fields(
        self, owner: str, field_defs: tuple[ast.FieldDefinition, ...]
    ) -> tuple[FieldDefinition, ...]:
        fields: list[FieldDefinition] = []
        seen: set[str] = set()
        for field_def in field_defs:
            if field_def.name in seen:
                raise SchemaError(f"duplicate field {owner}.{field_def.name}")
            seen.add(field_def.name)
            built = self._build_field(owner, field_def)
            if built is not None:
                fields.append(built)
        return tuple(fields)

    def _build_field(
        self, owner: str, field_def: ast.FieldDefinition
    ) -> FieldDefinition | None:
        where = f"{owner}.{field_def.name}"
        ref = TypeRef.from_ast(field_def.type)
        kind_name = self._kind_of_basetype(ref.base)
        if kind_name is None:
            raise SchemaError(f"field {where} references unknown type {ref.base}")
        if kind_name == "root":
            self._warnings.append(
                f"field {where} references a root operation type and is ignored"
            )
            return None
        if kind_name == "input":
            raise SchemaError(f"field {where} has an input type as its value type")
        kind = FieldKind.ATTRIBUTE if kind_name == "scalar" else FieldKind.RELATIONSHIP
        arguments = self._build_arguments(where, kind, field_def.arguments)
        directives = self._build_directives(
            field_def.directives, f"field {where}", location="FIELD_DEFINITION"
        )
        return FieldDefinition(
            name=field_def.name,
            type=ref,
            kind=kind,
            arguments=arguments,
            directives=directives,
            description=field_def.description,
            line=field_def.line,
            column=field_def.column,
        )

    def _build_arguments(
        self,
        where: str,
        kind: FieldKind,
        argument_defs: tuple[ast.InputValueDefinition, ...],
    ) -> tuple[ArgumentDefinition, ...]:
        if kind is FieldKind.ATTRIBUTE and argument_defs:
            # Section 3.6: arguments of attribute definitions carry no meaning.
            self._warnings.append(
                f"arguments of attribute definition {where} are ignored (Section 3.6)"
            )
            return ()
        arguments: list[ArgumentDefinition] = []
        seen: set[str] = set()
        for arg_def in argument_defs:
            if arg_def.name in seen:
                raise SchemaError(f"duplicate argument {where}({arg_def.name})")
            seen.add(arg_def.name)
            ref = TypeRef.from_ast(arg_def.type)
            if not self._scalars.is_scalar(ref.base):
                # Section 3.6: non-scalar argument types cannot describe edge
                # properties and are ignored.
                self._warnings.append(
                    f"argument {where}({arg_def.name}) has non-scalar type "
                    f"{ref} and is ignored (Section 3.6)"
                )
                continue
            default: object = None
            has_default = arg_def.default_value is not None
            if has_default:
                default = value_to_python(arg_def.default_value)
            arguments.append(
                ArgumentDefinition(
                    name=arg_def.name,
                    type=ref,
                    default=default,
                    has_default=has_default,
                    directives=self._build_directives(
                        arg_def.directives,
                        f"argument {where}({arg_def.name})",
                        location="ARGUMENT_DEFINITION",
                    ),
                    line=arg_def.line,
                    column=arg_def.column,
                )
            )
        return tuple(arguments)

    def _build_directives(
        self,
        directive_nodes: tuple[ast.DirectiveNode, ...],
        where: str,
        location: str,
    ) -> tuple[AppliedDirective, ...]:
        applied: list[AppliedDirective] = []
        for node in directive_nodes:
            name = canonical_directive_name(node.name)
            if name not in self._directive_defs:
                self._warnings.append(
                    f"unknown directive @{node.name} on {where} is ignored (Section 3.6)"
                )
                continue
            if location == "OBJECT" and name in FIELD_LEVEL_DIRECTIVES:
                self._warnings.append(
                    f"directive @{name} applies to field definitions, "
                    f"not to {where}; ignored"
                )
                continue
            if location == "FIELD_DEFINITION" and name in OBJECT_LEVEL_DIRECTIVES:
                self._warnings.append(
                    f"directive @{name} applies to object types, not to {where}; ignored"
                )
                continue
            arguments = tuple(
                sorted((arg.name, value_to_python(arg.value)) for arg in node.arguments)
            )
            applied.append(
                AppliedDirective(name, arguments, line=node.line, column=node.column)
            )
        return tuple(applied)
