"""The formal GraphQL schema model (Definition 4.1 of the paper).

A schema S over ``(F, A, T, S, D)`` consists of

* ``type_F  : (OT ∪ IT) × F ⇀ T ∪ W_T``   -- field types,
* ``type_AF : dom(type_F) × A ⇀ S ∪ W_S`` -- field-argument types,
* ``type_AD : D × A ⇀ S ∪ W_S``           -- directive-argument types,
* ``union   : UT → 2^OT``                  -- union membership,
* ``implementation : IT → 2^OT``           -- interface implementation,
* ``directives_T/F/AF``                    -- applied directives.

:class:`GraphQLSchema` stores these as dictionaries and exposes accessors
named after the paper's functions (``type_f``, ``args``, ``fields``, ...).
It also pre-classifies each field as an *attribute definition* (scalar/enum
base type -- specifies a node property, §3.2) or a *relationship definition*
(object/interface/union base type -- specifies outgoing edges, §3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import SchemaError
from .directives import KEY
from .scalars import ScalarRegistry
from .typerefs import TypeRef


def _span_field() -> int:
    """Source line/column carried over from the SDL document (0 when the
    schema was assembled programmatically); excluded from equality."""
    return field(default=0, compare=False)  # type: ignore[return-value]


class FieldKind(enum.Enum):
    """The paper's two-way classification of field definitions (§3.1)."""

    ATTRIBUTE = "attribute"
    RELATIONSHIP = "relationship"


@dataclass(frozen=True)
class AppliedDirective:
    """A pair ``(d, argvals)`` from ``D × AV`` (Definition 4.1).

    ``arguments`` is the partial function *argvals* as a sorted tuple of
    (name, value) pairs; values are plain Python values (lists as tuples).
    """

    name: str
    arguments: tuple[tuple[str, object], ...] = ()
    line: int = _span_field()
    column: int = _span_field()

    @staticmethod
    def of(name: str, **arguments: object) -> "AppliedDirective":
        normalised = tuple(
            sorted(
                (arg, tuple(value) if isinstance(value, list) else value)
                for arg, value in arguments.items()
            )
        )
        return AppliedDirective(name, normalised)

    def argument(self, name: str, default: object = None) -> object:
        for arg_name, value in self.arguments:
            if arg_name == name:
                return value
        return default

    @property
    def argument_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.arguments)


@dataclass(frozen=True)
class ArgumentDefinition:
    """A field-argument definition: a point of ``type_AF`` plus extras."""

    name: str
    type: TypeRef
    default: object = None
    has_default: bool = False
    directives: tuple[AppliedDirective, ...] = ()
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class FieldDefinition:
    """A field definition: a point of ``type_F`` with its arguments and directives."""

    name: str
    type: TypeRef
    kind: FieldKind
    arguments: tuple[ArgumentDefinition, ...] = ()
    directives: tuple[AppliedDirective, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()

    def argument(self, name: str) -> ArgumentDefinition | None:
        for arg in self.arguments:
            if arg.name == name:
                return arg
        return None

    def has_directive(self, directive_name: str) -> bool:
        return any(d.name == directive_name for d in self.directives)

    @property
    def is_attribute(self) -> bool:
        return self.kind is FieldKind.ATTRIBUTE

    @property
    def is_relationship(self) -> bool:
        return self.kind is FieldKind.RELATIONSHIP


@dataclass(frozen=True)
class ObjectType:
    """An object type ``ot ∈ OT``: node type whose name labels nodes (§3.1)."""

    name: str
    fields: tuple[FieldDefinition, ...] = ()
    interfaces: tuple[str, ...] = ()
    directives: tuple[AppliedDirective, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()

    def field(self, field_name: str) -> FieldDefinition | None:
        for field_def in self.fields:
            if field_def.name == field_name:
                return field_def
        return None

    @property
    def keys(self) -> tuple[tuple[str, ...], ...]:
        """The field-name lists of the @key directives on this type."""
        return tuple(
            tuple(directive.argument("fields", ()))  # type: ignore[arg-type]
            for directive in self.directives
            if directive.name == KEY
        )


@dataclass(frozen=True)
class InterfaceType:
    """An interface type ``it ∈ IT`` (used for edge targets, §3.4)."""

    name: str
    fields: tuple[FieldDefinition, ...] = ()
    directives: tuple[AppliedDirective, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()

    def field(self, field_name: str) -> FieldDefinition | None:
        for field_def in self.fields:
            if field_def.name == field_name:
                return field_def
        return None


@dataclass(frozen=True)
class UnionType:
    """A union type ``ut ∈ UT`` with its member object types."""

    name: str
    members: frozenset[str] = frozenset()
    directives: tuple[AppliedDirective, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class DirectiveDefinition:
    """A directive type: a row of ``type_AD`` (the directive's argument types)."""

    name: str
    arguments: dict[str, TypeRef] = field(default_factory=dict)
    locations: tuple[str, ...] = ()


class GraphQLSchema:
    """A consistent GraphQL schema interpreted as a Property Graph schema.

    Instances are produced by :func:`repro.schema.build.build_schema` (from a
    parsed SDL document) or assembled programmatically; after assembly they
    should be treated as immutable.
    """

    def __init__(
        self,
        object_types: dict[str, ObjectType] | None = None,
        interface_types: dict[str, InterfaceType] | None = None,
        union_types: dict[str, UnionType] | None = None,
        scalars: ScalarRegistry | None = None,
        directive_definitions: dict[str, DirectiveDefinition] | None = None,
        warnings: tuple[str, ...] = (),
    ) -> None:
        self.object_types: dict[str, ObjectType] = object_types or {}
        self.interface_types: dict[str, InterfaceType] = interface_types or {}
        self.union_types: dict[str, UnionType] = union_types or {}
        self.scalars: ScalarRegistry = scalars or ScalarRegistry()
        self.directive_definitions: dict[str, DirectiveDefinition] = (
            directive_definitions or {}
        )
        #: Non-fatal notes from schema building (ignored SDL features, §3.6).
        self.warnings: tuple[str, ...] = warnings
        self._implementations: dict[str, frozenset[str]] = {}
        self._rebuild_indexes()

    def _rebuild_indexes(self) -> None:
        implementations: dict[str, set[str]] = {
            name: set() for name in self.interface_types
        }
        for object_type in self.object_types.values():
            for interface_name in object_type.interfaces:
                if interface_name not in implementations:
                    raise SchemaError(
                        f"type {object_type.name} implements unknown interface "
                        f"{interface_name}"
                    )
                implementations[interface_name].add(object_type.name)
        self._implementations = {
            name: frozenset(members) for name, members in implementations.items()
        }

    # ------------------------------------------------------------------ #
    # the sets (F, A, T, S, D)
    # ------------------------------------------------------------------ #

    @property
    def type_names(self) -> frozenset[str]:
        """T = OT ∪ IT ∪ UT ∪ S."""
        return (
            frozenset(self.object_types)
            | frozenset(self.interface_types)
            | frozenset(self.union_types)
            | self.scalars.names
        )

    @property
    def field_names(self) -> frozenset[str]:
        """F: every field name used in some object or interface type."""
        names: set[str] = set()
        for composite in (*self.object_types.values(), *self.interface_types.values()):
            names.update(field_def.name for field_def in composite.fields)
        return frozenset(names)

    def is_object_type(self, name: str) -> bool:
        return name in self.object_types

    def is_interface_type(self, name: str) -> bool:
        return name in self.interface_types

    def is_union_type(self, name: str) -> bool:
        return name in self.union_types

    def is_scalar_type(self, name: str) -> bool:
        """True when name ∈ S (enums included, per the paper's convention)."""
        return self.scalars.is_scalar(name)

    def is_composite_type(self, name: str) -> bool:
        """True for object and interface types (the domain of type_F)."""
        return name in self.object_types or name in self.interface_types

    # ------------------------------------------------------------------ #
    # the paper's accessor functions
    # ------------------------------------------------------------------ #

    def composite(self, type_name: str) -> ObjectType | InterfaceType:
        """The object or interface type of this name."""
        found = self.object_types.get(type_name) or self.interface_types.get(type_name)
        if found is None:
            raise SchemaError(f"no object or interface type named {type_name}")
        return found

    def fields(self, type_name: str) -> tuple[str, ...]:
        """``fields_S(t)``: names of the fields defined for a composite type."""
        return tuple(field_def.name for field_def in self.composite(type_name).fields)

    def field(self, type_name: str, field_name: str) -> FieldDefinition | None:
        """The field definition, or None when (t, f) ∉ dom(type_F)."""
        if not self.is_composite_type(type_name):
            return None
        return self.composite(type_name).field(field_name)

    def type_f(self, type_name: str, field_name: str) -> TypeRef | None:
        """``type_F(t, f)``, or None when undefined."""
        field_def = self.field(type_name, field_name)
        return field_def.type if field_def else None

    def args(self, type_name: str, field_name: str) -> tuple[str, ...]:
        """``args_S(t, f)``: the argument names of a field."""
        field_def = self.field(type_name, field_name)
        if field_def is None:
            return ()
        return tuple(arg.name for arg in field_def.arguments)

    def type_af(self, type_name: str, field_name: str, arg_name: str) -> TypeRef | None:
        """``type_AF((t, f), a)``, or None when undefined."""
        field_def = self.field(type_name, field_name)
        if field_def is None:
            return None
        arg = field_def.argument(arg_name)
        return arg.type if arg else None

    def type_ad(self, directive_name: str, arg_name: str) -> TypeRef | None:
        """``type_AD(d, a)``, or None when undefined."""
        definition = self.directive_definitions.get(directive_name)
        if definition is None:
            return None
        return definition.arguments.get(arg_name)

    def union(self, union_name: str) -> frozenset[str]:
        """``union_S(ut)``: the member object types of a union."""
        union_type = self.union_types.get(union_name)
        if union_type is None:
            raise SchemaError(f"no union type named {union_name}")
        return union_type.members

    def implementation(self, interface_name: str) -> frozenset[str]:
        """``implementation_S(it)``: the object types implementing an interface."""
        try:
            return self._implementations[interface_name]
        except KeyError:
            raise SchemaError(f"no interface type named {interface_name}") from None

    def directives_t(self, type_name: str) -> tuple[AppliedDirective, ...]:
        """``directives_T(t)`` for composite and union types."""
        if self.is_composite_type(type_name):
            return self.composite(type_name).directives
        union_type = self.union_types.get(type_name)
        if union_type is not None:
            return union_type.directives
        return ()

    def directives_f(self, type_name: str, field_name: str) -> tuple[AppliedDirective, ...]:
        """``directives_F(t, f)``."""
        field_def = self.field(type_name, field_name)
        return field_def.directives if field_def else ()

    def has_field_directive(
        self, type_name: str, field_name: str, directive_name: str
    ) -> bool:
        """``(d, ∅) ∈ directives_F(t, f)`` for argument-less directives."""
        return any(
            directive.name == directive_name
            for directive in self.directives_f(type_name, field_name)
        )

    # ------------------------------------------------------------------ #
    # derived views used throughout the library
    # ------------------------------------------------------------------ #

    def field_declarations(self) -> list[tuple[str, str, FieldDefinition]]:
        """dom(type_F) as a list of (type name, field name, definition)."""
        return [
            (composite.name, field_def.name, field_def)
            for composite in (*self.object_types.values(), *self.interface_types.values())
            for field_def in composite.fields
        ]

    def object_types_below(self, type_name: str) -> frozenset[str]:
        """All object types ot with ot ⊑_S type_name (the "node types of" a
        declared type): the type itself if an object type, its implementors
        if an interface, its members if a union."""
        if type_name in self.object_types:
            return frozenset({type_name})
        if type_name in self.interface_types:
            return self.implementation(type_name)
        if type_name in self.union_types:
            return self.union(type_name)
        return frozenset()

    def __repr__(self) -> str:
        return (
            f"GraphQLSchema(objects={len(self.object_types)}, "
            f"interfaces={len(self.interface_types)}, "
            f"unions={len(self.union_types)}, "
            f"scalars={len(self.scalars.custom_names)}+builtin)"
        )
