"""Scalar and enum value domains, and the ``values_W`` membership test.

Section 4.1 of the paper assumes a function ``values : Scalars → 2^Vals``
assigning a value set to each scalar type (with enum types folded into
``Scalars``), and extends it to wrapped types via ``values_W``:

1. ``values_W(t) = values(t) ∪ {null}`` for ``t ∈ Scalars``;
2. ``values_W(t!) = values_W(t) \\ {null}``;
3. ``values_W([t]) = L(values_W(t)) ∪ {null}``.

The sets are infinite, so :class:`ScalarRegistry` realises ``values`` as a
membership *predicate* per scalar type.  ``null`` is represented as Python
``None`` -- which in a Property Graph only ever arises as the *absence* of a
property, since ``σ`` is partial and ``None`` is not a property value.

Built-in scalar domains follow the GraphQL June 2018 spec:

* ``Int`` -- signed 32-bit integers (§3.5.1);
* ``Float`` -- finite IEEE-754 doubles, ints accepted by coercion (§3.5.2);
* ``String`` -- strings (§3.5.3);
* ``Boolean`` -- ``True``/``False`` (§3.5.4);
* ``ID`` -- strings or ints (§3.5.5: serialised as a string, but integer
  input is accepted).

Custom scalars (like the paper's ``scalar Time``) accept any atomic value by
default; a caller may register a narrower predicate.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, Iterable, Mapping

from ..errors import SchemaError
from ..pg.values import is_atomic_value
from .typerefs import TypeRef

INT_MIN = -(2**31)
INT_MAX = 2**31 - 1

ScalarPredicate = Callable[[object], bool]

# Compiled-checker observability: every registry memoizes the closures
# :meth:`ScalarRegistry.checker_w` compiles (TypeRef is frozen/hashable, and
# predicates for a given name can never be redefined, so a memoized checker
# stays valid for the registry's lifetime).  The counters aggregate across
# registries; the WeakSet lets :func:`scalar_checker_info` report live
# occupancy without keeping registries alive.
_checker_lock = threading.Lock()
_checker_hits = 0
_checker_misses = 0
_registries: "weakref.WeakSet[ScalarRegistry]" = weakref.WeakSet()


def scalar_checker_info() -> dict[str, int]:
    """Aggregate compiled-checker statistics across live registries.

    ``hits``/``misses`` count :meth:`ScalarRegistry.checker_w` memo lookups
    (misses == closures compiled); ``size`` is the number of compiled
    checkers currently held, ``registries`` how many live registries hold
    them.  Reported by ``pgschema stats --json`` and the service's
    ``/v1/stats`` endpoint.
    """
    with _checker_lock:
        live = list(_registries)
        return {
            "hits": _checker_hits,
            "misses": _checker_misses,
            "size": sum(len(registry._checkers) for registry in live),
            "registries": len(live),
        }


def scalar_checker_clear() -> None:
    """Reset the aggregate counters and drop memoized checkers."""
    global _checker_hits, _checker_misses
    with _checker_lock:
        for registry in list(_registries):
            registry._checkers.clear()
        _checker_hits = 0
        _checker_misses = 0


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and INT_MIN <= value <= INT_MAX


def _is_float(value: object) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, float):
        return value == value and value not in (float("inf"), float("-inf"))
    return isinstance(value, int)


def _is_string(value: object) -> bool:
    return isinstance(value, str)


def _is_boolean(value: object) -> bool:
    return isinstance(value, bool)


def _is_id(value: object) -> bool:
    return isinstance(value, str) or (isinstance(value, int) and not isinstance(value, bool))


#: The five built-in scalar types of §3.5 and their membership predicates.
BUILTIN_SCALARS: Mapping[str, ScalarPredicate] = {
    "Int": _is_int,
    "Float": _is_float,
    "String": _is_string,
    "Boolean": _is_boolean,
    "ID": _is_id,
}


class ScalarRegistry:
    """The (finite) set ``S ⊂ Scalars`` of one schema, with value domains.

    Holds the built-in scalars, user-declared custom scalars, and enum types
    (which the paper folds into ``Scalars``); exposes membership in
    ``values(t)`` and in ``values_W(t)`` for wrapped ``t``.
    """

    def __init__(self) -> None:
        self._predicates: dict[str, ScalarPredicate] = dict(BUILTIN_SCALARS)
        self._enums: dict[str, frozenset[str]] = {}
        self._checkers: dict[TypeRef, ScalarPredicate] = {}
        _registries.add(self)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register_scalar(
        self, name: str, predicate: ScalarPredicate | None = None
    ) -> None:
        """Register a custom scalar; default domain is every atomic value."""
        if name in self._predicates or name in self._enums:
            raise SchemaError(f"scalar type already defined: {name}")
        self._predicates[name] = predicate or is_atomic_value

    def register_enum(self, name: str, values: Iterable[str]) -> None:
        """Register an enum type; its value set is the given names."""
        if name in self._predicates or name in self._enums:
            raise SchemaError(f"scalar/enum type already defined: {name}")
        value_set = frozenset(values)
        if not value_set:
            raise SchemaError(f"enum type {name} has no values")
        self._enums[name] = value_set

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def is_scalar(self, name: str) -> bool:
        """True when *name* ∈ S (including enums, per the paper's convention)."""
        return name in self._predicates or name in self._enums

    def is_enum(self, name: str) -> bool:
        return name in self._enums

    def is_builtin(self, name: str) -> bool:
        return name in BUILTIN_SCALARS

    def enum_values(self, name: str) -> frozenset[str]:
        try:
            return self._enums[name]
        except KeyError:
            raise SchemaError(f"not an enum type: {name}") from None

    @property
    def names(self) -> frozenset[str]:
        return frozenset(self._predicates) | frozenset(self._enums)

    @property
    def custom_names(self) -> frozenset[str]:
        return frozenset(
            name for name in self._predicates if name not in BUILTIN_SCALARS
        ) | frozenset(self._enums)

    # ------------------------------------------------------------------ #
    # values and values_W
    # ------------------------------------------------------------------ #

    def in_values(self, value: object, scalar_name: str) -> bool:
        """Membership in ``values(scalar_name)`` (never contains null)."""
        if value is None:
            return False
        if scalar_name in self._enums:
            return isinstance(value, str) and value in self._enums[scalar_name]
        predicate = self._predicates.get(scalar_name)
        if predicate is None:
            raise SchemaError(f"not a scalar type: {scalar_name}")
        return predicate(value)

    def in_values_w(self, value: object, type_ref: TypeRef) -> bool:
        """Membership in ``values_W(type_ref)``.

        ``None`` plays the role of the special value ``null``.  Array values
        are Python tuples; their items are checked against the wrapped type
        (``None`` items are legal exactly when the element type is nullable,
        although Property Graph arrays never actually contain them).
        """
        if not self.is_scalar(type_ref.base):
            raise SchemaError(f"values_W is defined on scalar types only, got {type_ref}")
        if value is None:
            return not type_ref.non_null
        if type_ref.is_list:
            if not isinstance(value, tuple):
                return False
            if type_ref.inner_non_null:
                return all(self.in_values(item, type_ref.base) for item in value)
            return all(
                item is None or self.in_values(item, type_ref.base) for item in value
            )
        return self.in_values(value, type_ref.base)

    def accepts_kind(
        self, base: str, kind: str, *, int32: bool = False, finite: bool = False
    ) -> bool:
        """Whether *every* value of a uniform runtime kind is in
        ``values(base)`` -- the wholesale-acceptance test behind the
        columnar validator's column-at-a-time WS1/WS2 passes.

        *kind* is a column kind tag (``"str"``/``"bool"``/``"int"``/
        ``"float"``); *int32* asserts the column's ints all fit GraphQL's
        32-bit Int range, *finite* that its floats are all finite.  Only
        predicates this registry can introspect (the builtins and the
        default custom-scalar domain) admit wholesale acceptance; enums
        and caller-registered predicates conservatively return False, so
        the per-value path stays the semantics of record.
        """
        if base in self._enums:
            return False
        predicate = self._predicates.get(base)
        if predicate is _is_string:
            return kind == "str"
        if predicate is _is_boolean:
            return kind == "bool"
        if predicate is _is_int:
            return kind == "int" and int32
        if predicate is _is_float:
            return kind == "int" or (kind == "float" and finite)
        if predicate is _is_id:
            return kind in ("str", "int")
        if predicate is is_atomic_value:
            return kind in ("str", "bool", "int", "float")
        return False

    def checker_w(self, type_ref: TypeRef) -> ScalarPredicate:
        """A compiled membership predicate for ``values_W(type_ref)``.

        Returns a closure equivalent to ``lambda v: in_values_w(v, type_ref)``
        with the wrapping shape resolved once instead of per value -- the
        form the compiled validation plans feed to their hot loops.  Compiled
        closures are memoized per registry (safe under concurrent access:
        dict reads/writes are atomic, a lost race costs one redundant
        compile of an interchangeable closure, never a wrong predicate).
        """
        global _checker_hits, _checker_misses
        memoized = self._checkers.get(type_ref)
        if memoized is not None:
            with _checker_lock:
                _checker_hits += 1
            return memoized
        with _checker_lock:
            _checker_misses += 1
        base = type_ref.base
        if base in self._enums:
            allowed = self._enums[base]

            def atom(value: object, _allowed=allowed) -> bool:
                return isinstance(value, str) and value in _allowed

        else:
            atom = self._predicates.get(base)  # type: ignore[assignment]
            if atom is None:
                raise SchemaError(
                    f"values_W is defined on scalar types only, got {type_ref}"
                )
        nullable = not type_ref.non_null
        if type_ref.is_list:
            if type_ref.inner_non_null:

                def check(value: object) -> bool:
                    if value is None:
                        return nullable
                    return isinstance(value, tuple) and all(
                        atom(item) for item in value
                    )

            else:

                def check(value: object) -> bool:
                    if value is None:
                        return nullable
                    return isinstance(value, tuple) and all(
                        item is None or atom(item) for item in value
                    )

        else:

            def check(value: object) -> bool:
                if value is None:
                    return nullable
                return atom(value)

        self._checkers[type_ref] = check
        return check

    def copy(self) -> "ScalarRegistry":
        clone = ScalarRegistry()
        clone._predicates = dict(self._predicates)
        clone._enums = dict(self._enums)
        return clone
