"""Print a formal :class:`GraphQLSchema` back to SDL source text.

``parse_schema(print_schema(schema))`` reproduces the schema (up to ordering
and the features the builder ignores), which the round-trip tests verify.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sdl import ast
from ..sdl.printer import print_document
from .directives import STANDARD_DIRECTIVE_ARGS

if TYPE_CHECKING:  # pragma: no cover
    from .model import (
        AppliedDirective,
        ArgumentDefinition,
        FieldDefinition,
        GraphQLSchema,
    )


def schema_to_document(schema: "GraphQLSchema") -> ast.Document:
    """Render the schema as an SDL AST document."""
    definitions: list[ast.Definition] = []
    for name, arguments in sorted(schema.directive_definitions.items()):
        if name in STANDARD_DIRECTIVE_ARGS:
            continue  # the paper's standard directives are implicit
        definitions.append(
            ast.DirectiveDefinition(
                name=name,
                arguments=tuple(
                    ast.InputValueDefinition(arg_name, ref.to_ast())
                    for arg_name, ref in arguments.arguments.items()
                ),
                locations=arguments.locations or ("FIELD_DEFINITION",),
            )
        )
    for name in sorted(schema.scalars.custom_names):
        if schema.scalars.is_enum(name):
            definitions.append(
                ast.EnumTypeDefinition(
                    name=name,
                    values=tuple(
                        ast.EnumValueDefinition(value)
                        for value in sorted(schema.scalars.enum_values(name))
                    ),
                )
            )
        else:
            definitions.append(ast.ScalarTypeDefinition(name))
    for interface in schema.interface_types.values():
        definitions.append(
            ast.InterfaceTypeDefinition(
                name=interface.name,
                fields=tuple(_field_to_ast(f) for f in interface.fields),
                directives=_directives_to_ast(interface.directives),
                description=interface.description,
            )
        )
    for union in schema.union_types.values():
        definitions.append(
            ast.UnionTypeDefinition(
                name=union.name,
                types=tuple(sorted(union.members)),
                directives=_directives_to_ast(union.directives),
                description=union.description,
            )
        )
    for object_type in schema.object_types.values():
        definitions.append(
            ast.ObjectTypeDefinition(
                name=object_type.name,
                fields=tuple(_field_to_ast(f) for f in object_type.fields),
                interfaces=object_type.interfaces,
                directives=_directives_to_ast(object_type.directives),
                description=object_type.description,
            )
        )
    return ast.Document(tuple(definitions))


def print_schema(schema: "GraphQLSchema") -> str:
    """Render the schema as SDL source text."""
    return print_document(schema_to_document(schema))


def _field_to_ast(field_def: "FieldDefinition") -> ast.FieldDefinition:
    return ast.FieldDefinition(
        name=field_def.name,
        type=field_def.type.to_ast(),
        arguments=tuple(_argument_to_ast(arg) for arg in field_def.arguments),
        directives=_directives_to_ast(field_def.directives),
        description=field_def.description,
    )


def _argument_to_ast(argument: "ArgumentDefinition") -> ast.InputValueDefinition:
    default = _value_to_ast(argument.default) if argument.has_default else None
    return ast.InputValueDefinition(
        name=argument.name,
        type=argument.type.to_ast(),
        default_value=default,
        directives=_directives_to_ast(argument.directives),
    )


def _directives_to_ast(
    directives: tuple["AppliedDirective", ...],
) -> tuple[ast.DirectiveNode, ...]:
    return tuple(
        ast.DirectiveNode(
            directive.name,
            tuple(
                ast.ArgumentNode(arg_name, _value_to_ast(value))
                for arg_name, value in directive.arguments
            ),
        )
        for directive in directives
    )


def _value_to_ast(value: object) -> ast.ValueNode:
    if value is None:
        return ast.NullValue()
    if isinstance(value, bool):
        return ast.BooleanValue(value)
    if isinstance(value, int):
        return ast.IntValue(value)
    if isinstance(value, float):
        return ast.FloatValue(value)
    if isinstance(value, str):
        return ast.StringValue(value)
    if isinstance(value, tuple):
        return ast.ListValue(tuple(_value_to_ast(item) for item in value))
    raise TypeError(f"cannot render value {value!r} as SDL")
