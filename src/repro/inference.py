"""Schema inference: induce a GraphQL-SDL schema from an example graph.

The paper maps schemas to graphs; this module walks the other way.  Given a
Property Graph assumed to be a representative instance, it produces the
tightest schema (in the paper's language) that the instance strongly
satisfies:

* every node label becomes an object type;
* every node property becomes an attribute field, typed by the least
  general built-in scalar covering the observed values (or a list type when
  all observed values are arrays), marked ``@required`` when every node of
  the label carries it;
* every edge label becomes a relationship field on its source types; the
  field type is the single target type, or a generated union when edges of
  one (source, label) pair reach several types; non-list when no source
  node ever has two such edges;
* edge properties become field arguments (non-null when present on every
  observed edge);
* ``@distinct`` / ``@noLoops`` / ``@uniqueForTarget`` / ``@requiredForTarget``
  are emitted when the instance satisfies the corresponding invariant
  non-vacuously;
* single properties whose values are unique across a label are offered as
  ``@key`` candidates (the lexicographically first one is emitted).

The guarantee, tested property-style: ``graph`` strongly satisfies
``infer_schema(graph)`` for every well-formed input graph whose labels and
property names are valid GraphQL names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .pg.values import is_property_value, value_signature
from .schema.build import parse_schema
from .schema.model import GraphQLSchema

if TYPE_CHECKING:  # pragma: no cover
    from .pg.model import PropertyGraph

_SCALAR_ORDER = ("Boolean", "Int", "Float", "String")


def _scalar_of(value: object) -> str:
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, int):
        return "Int" if -(2**31) <= value <= 2**31 - 1 else "Float"
    if isinstance(value, float):
        return "Float"
    return "String"


def _join_scalars(left: str | None, right: str) -> str:
    """Least general scalar covering both observed kinds.

    Int widens into Float (Float's GraphQL domain includes ints); any other
    mixture falls back to the permissive ``Any`` scalar the inferred schema
    declares (its value domain is every property value).
    """
    if left is None or left == right:
        return right
    if {left, right} <= {"Int", "Float"}:
        return "Float"
    return "Any"


@dataclass
class _AttributeFacts:
    scalar: str | None = None
    is_list: bool = True  # refuted by the first atomic value
    is_atom: bool = True  # refuted by the first array value
    count: int = 0
    signatures: set = field(default_factory=set)
    duplicated: bool = False

    def observe(self, value: object) -> None:
        self.count += 1
        signature = value_signature(value)
        if signature in self.signatures:
            self.duplicated = True
        self.signatures.add(signature)
        if isinstance(value, tuple):
            self.is_atom = False
            for item in value:
                self.scalar = _join_scalars(self.scalar, _scalar_of(item))
        else:
            self.is_list = False
            self.scalar = _join_scalars(self.scalar, _scalar_of(value))

    def render_type(self) -> str:
        scalar = self.scalar or "String"
        if not self.is_atom and not self.is_list:
            return "Any"  # both atoms and arrays observed
        if not self.is_atom:  # arrays only
            return f"[{scalar}]"
        return scalar


@dataclass
class _RelationshipFacts:
    targets: set[str] = field(default_factory=set)
    sources_with_edge: set = field(default_factory=set)
    max_out_degree: int = 0
    has_parallel: bool = False
    has_loop: bool = False
    target_in_degree: dict = field(default_factory=dict)
    argument_facts: dict[str, "_AttributeFacts"] = field(default_factory=dict)
    edge_count: int = 0
    arguments_seen_everywhere: dict[str, int] = field(default_factory=dict)


@dataclass
class InferenceResult:
    """An inferred schema: the SDL text plus the built formal schema."""

    sdl: str
    schema: GraphQLSchema
    key_candidates: dict[str, list[str]]


def infer_schema(graph: "PropertyGraph") -> InferenceResult:
    """Infer the tightest schema the instance strongly satisfies."""
    labels = sorted({graph.label(node) for node in graph.nodes})
    attributes: dict[str, dict[str, _AttributeFacts]] = {name: {} for name in labels}
    node_counts: dict[str, int] = {name: 0 for name in labels}
    relationships: dict[tuple[str, str], _RelationshipFacts] = {}

    for node in graph.nodes:
        label = graph.label(node)
        node_counts[label] += 1
        for name, value in graph.properties(node).items():
            attributes[label].setdefault(name, _AttributeFacts()).observe(value)

    for edge in graph.edges:
        source, target = graph.endpoints(edge)
        source_label, edge_label = graph.label(source), graph.label(edge)
        facts = relationships.setdefault(
            (source_label, edge_label), _RelationshipFacts()
        )
        facts.edge_count += 1
        facts.targets.add(graph.label(target))
        facts.sources_with_edge.add(source)
        if source == target:
            facts.has_loop = True
        out_here = [
            e for e in graph.out_edges(source, edge_label)
        ]
        facts.max_out_degree = max(facts.max_out_degree, len(out_here))
        parallel = [
            e for e in out_here if graph.endpoints(e)[1] == target
        ]
        if len(parallel) > 1:
            facts.has_parallel = True
        facts.target_in_degree[target] = facts.target_in_degree.get(target, 0) + 1
        for name, value in graph.properties(edge).items():
            facts.argument_facts.setdefault(name, _AttributeFacts()).observe(value)
            facts.arguments_seen_everywhere[name] = (
                facts.arguments_seen_everywhere.get(name, 0) + 1
            )

    unions: dict[frozenset, str] = {}
    lines: list[str] = []
    key_candidates: dict[str, list[str]] = {}

    def union_name_for(targets: frozenset) -> str:
        found = unions.get(targets)
        if found is None:
            found = "Or".join(sorted(targets))
            while found in labels or found in unions.values():
                found = "U" + found
            unions[targets] = found
        return found

    for label in labels:
        keys = sorted(
            name
            for name, facts in attributes[label].items()
            if facts.count == node_counts[label]
            and not facts.duplicated
            and facts.is_atom
        )
        key_candidates[label] = keys
        header = f"type {label}"
        if keys:
            header += f' @key(fields: ["{keys[0]}"])'
        body: list[str] = []
        for name in sorted(attributes[label]):
            facts = attributes[label][name]
            required = " @required" if facts.count == node_counts[label] else ""
            body.append(f"  {name}: {facts.render_type()}{required}")
        for (source_label, edge_label), facts in sorted(relationships.items()):
            if source_label != label:
                continue
            target = (
                next(iter(facts.targets))
                if len(facts.targets) == 1
                else union_name_for(frozenset(facts.targets))
            )
            is_list = facts.max_out_degree > 1
            rendered = f"[{target}]" if is_list else target
            arguments = ""
            if facts.argument_facts:
                rendered_args = []
                for name in sorted(facts.argument_facts):
                    arg_facts = facts.argument_facts[name]
                    bang = (
                        "!"
                        if facts.arguments_seen_everywhere[name] == facts.edge_count
                        and not arg_facts.render_type().startswith("[")
                        else ""
                    )
                    rendered_args.append(f"{name}: {arg_facts.render_type()}{bang}")
                arguments = "(" + " ".join(rendered_args) + ")"
            directives: list[str] = []
            if len(facts.sources_with_edge) == node_counts[label]:
                directives.append("@required")
            if is_list and not facts.has_parallel:
                directives.append("@distinct")
            if not facts.has_loop and label in facts.targets:
                directives.append("@noLoops")
            if facts.target_in_degree and max(facts.target_in_degree.values()) == 1:
                directives.append("@uniqueForTarget")
            suffix = (" " + " ".join(directives)) if directives else ""
            body.append(f"  {edge_label}{arguments}: {rendered}{suffix}")
        lines.append(header + " {")
        lines.extend(body)
        lines.append("}")
        lines.append("")

    for targets, name in sorted(unions.items(), key=lambda item: item[1]):
        lines.append(f"union {name} = " + " | ".join(sorted(targets)))
        lines.append("")

    sdl = "\n".join(lines) if lines else "type Empty {\n}\n"
    if "Any" in sdl.split() or ": Any" in sdl or "[Any]" in sdl:
        sdl = "scalar Any\n\n" + sdl
        schema = parse_schema(sdl, scalar_predicates={"Any": is_property_value})
    else:
        schema = parse_schema(sdl)
    return InferenceResult(sdl=sdl, schema=schema, key_candidates=key_candidates)
