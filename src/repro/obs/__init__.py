"""Unified observability: span tracing + metrics with a zero-cost off switch.

The layer has three pieces:

* :class:`repro.obs.metrics.MetricsRegistry` -- counters, gauges and
  bounded-reservoir histograms; one shared vocabulary for ``--metrics``
  snapshots, ``--profile`` summaries, ``pgschema stats`` and benchmark
  artifacts.
* :class:`repro.obs.trace.Tracer` -- nested spans on the monotonic clock,
  exported as Chrome trace events (``--trace``, open in Perfetto).
* this module -- the *runtime*: one process-global :class:`Observation`
  (a tracer and/or registry) that instrumented code consults through the
  helpers below.

Hot-path contract (mirrors :mod:`repro.resilience.faults`): when nothing is
installed the instrumentation helpers cost one module-global load and a
``None`` check -- no allocation, no locks, no branches beyond the check.
``bench_e12`` asserts the disabled path is indistinguishable from noise, so
every engine can stay instrumented unconditionally.

Process workers: the parent ships :func:`worker_config` through the pool
initializer (next to the fault spec); workers call :func:`install_worker`
to get a private capture observation, wrap each task's spans/metrics with
:func:`package`, and the parent folds them back with :func:`unwrap` at the
merge barrier -- before the deterministic report merge, which therefore
stays byte-identical with tracing on or off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from .metrics import Histogram, MetricsRegistry
from .trace import SpanEvent, TracedResult, Tracer

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Observation",
    "SpanEvent",
    "TracedResult",
    "Tracer",
    "active",
    "count",
    "gauge",
    "install",
    "install_worker",
    "instant",
    "observe",
    "observed",
    "package",
    "span",
    "uninstall",
    "unwrap",
    "worker_config",
]


class Observation:
    """The installed pair of sinks; either side may be None."""

    __slots__ = ("tracer", "registry")

    def __init__(
        self, tracer: Tracer | None = None, registry: MetricsRegistry | None = None
    ) -> None:
        self.tracer = tracer
        self.registry = registry


# The one global consulted by every instrumented hot path.  None == off.
_active: Observation | None = None


class _NullSpan:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


# --------------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------------- #


def install(
    tracer: Tracer | None = None, registry: MetricsRegistry | None = None
) -> Observation:
    """Turn instrumentation on for this process until :func:`uninstall`."""
    global _active
    _active = Observation(tracer, registry)
    return _active


def uninstall() -> None:
    global _active
    _active = None


def active() -> Observation | None:
    return _active


@contextmanager
def observed(
    *, trace: bool = False, metrics: bool = False
) -> Iterator[Observation]:
    """Scoped install: ``with obs.observed(trace=True) as ob: ...``."""
    observation = install(
        Tracer() if trace else None, MetricsRegistry() if metrics else None
    )
    try:
        yield observation
    finally:
        uninstall()


# --------------------------------------------------------------------------- #
# recording helpers (the instrumented-code API)
# --------------------------------------------------------------------------- #


def span(name: str, **attrs: Any):
    """A span on the active tracer, or a shared no-op guard when off."""
    observation = _active
    if observation is None or observation.tracer is None:
        return _NULL_SPAN
    return observation.tracer.span(name, **attrs)


def instant(name: str, **attrs: Any) -> None:
    """An instant (zero-duration) trace event, when tracing is on."""
    observation = _active
    if observation is not None and observation.tracer is not None:
        observation.tracer.instant(name, **attrs)


def count(name: str, value: float = 1) -> None:
    observation = _active
    if observation is not None and observation.registry is not None:
        observation.registry.count(name, value)


def gauge(name: str, value: float) -> None:
    observation = _active
    if observation is not None and observation.registry is not None:
        observation.registry.gauge(name, value)


def observe(name: str, value: float) -> None:
    observation = _active
    if observation is not None and observation.registry is not None:
        observation.registry.observe(name, value)


# --------------------------------------------------------------------------- #
# process-worker plumbing
# --------------------------------------------------------------------------- #


def worker_config() -> dict | None:
    """What a pool initializer should ship to workers (None == obs off)."""
    observation = _active
    if observation is None:
        return None
    return {
        "epoch": observation.tracer.epoch if observation.tracer else None,
        "trace": observation.tracer is not None,
        "metrics": observation.registry is not None,
    }


def install_worker(config: dict | None) -> None:
    """Install a capture observation inside a pool worker process."""
    if config is None:
        uninstall()
        return
    install(
        Tracer(epoch=config["epoch"]) if config.get("trace") else None,
        MetricsRegistry() if config.get("metrics") else None,
    )


def package(payload: Any) -> Any:
    """Wrap a worker task result with the spans/metrics recorded for it.

    Inside an observed worker this drains the capture buffers (so the next
    task on the same worker ships only its own events) and returns a
    :class:`TracedResult`; with observation off it returns *payload*
    untouched, keeping the disabled path allocation-free.
    """
    observation = _active
    if observation is None:
        return payload
    return TracedResult(
        payload=payload,
        events=observation.tracer.drain() if observation.tracer else [],
        metrics=observation.registry.drain() if observation.registry else None,
    )


def unwrap(result: Any) -> Any:
    """Undo :func:`package` at the merge barrier.

    Absorbs any shipped spans into the active tracer and merges the worker
    metrics snapshot into the active registry, then returns the bare
    payload.  Safe on bare results and on ``None`` slots (budget-partial
    runs), so merge loops can call it unconditionally.
    """
    if type(result) is not TracedResult:
        return result
    observation = _active
    if observation is not None:
        if observation.tracer is not None and result.events:
            observation.tracer.absorb(result.events)
        if observation.registry is not None and result.metrics:
            observation.registry.merge_snapshot(result.metrics)
    return result.payload
