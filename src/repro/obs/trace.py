"""Span tracer: nested spans with monotonic timing and worker merging.

Spans record wall-time intervals on the ``time.monotonic()`` clock.  Like
:class:`repro.resilience.Budget` deadlines, monotonic timestamps are
comparable across the processes of one host, so spans recorded inside
process-pool workers land on the same timeline as the parent's spans: the
tracer's ``epoch`` (captured at construction) is shipped to workers through
the pool initializer, workers record absolute monotonic times, and the
parent simply absorbs their events at the merge barrier -- no clock
re-basing.

Nesting is positional, exactly as Chrome's trace viewer infers it: two
spans on the same ``(pid, tid)`` lane nest when one's interval contains the
other's.  The tracer therefore needs no explicit parent pointers; the
``with tracer.span(...)`` discipline guarantees containment per thread.

Everything here is picklable where it needs to be: :class:`SpanEvent` and
:class:`TracedResult` cross process boundaries alongside shard/unit
results.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["SpanEvent", "TracedResult", "Tracer"]


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """One finished span (or instant event, when ``duration`` is None)."""

    name: str
    start: float  # time.monotonic() at entry
    duration: float | None  # seconds; None marks an instant event
    pid: int
    tid: int
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass(slots=True)
class TracedResult:
    """A worker task result with the spans/metrics recorded while computing it.

    Process workers return these instead of bare results when observability
    is enabled; the parent unwraps them at the merge barrier (absorbing the
    events into its tracer and the metrics snapshot into its registry)
    *before* the deterministic report merge, so reports stay byte-identical
    with and without tracing.
    """

    payload: Any
    events: list[SpanEvent]
    metrics: dict | None


class Tracer:
    """Thread-safe buffer of finished spans for one observed run."""

    def __init__(self, epoch: float | None = None) -> None:
        self.epoch = time.monotonic() if epoch is None else epoch
        self._lock = threading.Lock()
        self._events: list[SpanEvent] = []

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def span(self, name: str, **attrs: Any) -> "_SpanHandle":
        """Context manager recording a complete span on exit."""
        return _SpanHandle(self, name, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration marker (Chrome 'instant' event)."""
        self._record(
            SpanEvent(
                name=name,
                start=time.monotonic(),
                duration=None,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=attrs,
            )
        )

    def _record(self, event: SpanEvent) -> None:
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------ #
    # worker merging and export
    # ------------------------------------------------------------------ #

    def absorb(self, events: list[SpanEvent]) -> None:
        """Merge spans shipped back from a worker onto this timeline."""
        if not events:
            return
        with self._lock:
            self._events.extend(events)

    def drain(self) -> list[SpanEvent]:
        """Return and clear the buffered events (worker shipping path)."""
        with self._lock:
            events = self._events
            self._events = []
        return events

    def events(self) -> list[SpanEvent]:
        """All finished events, ordered by start time."""
        with self._lock:
            return sorted(self._events, key=lambda event: event.start)


class _SpanHandle:
    """The ``with tracer.span(...)`` guard.

    Mutable attrs: code inside the span may annotate outcomes via
    :meth:`set` (e.g. a verdict decided mid-span) before the span closes.
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_start")

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set(self, **attrs: Any) -> None:
        self._attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        end = time.monotonic()
        if exc_type is not None:
            self._attrs.setdefault("error", getattr(exc_type, "__name__", "error"))
        self._tracer._record(
            SpanEvent(
                name=self._name,
                start=self._start,
                duration=end - self._start,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=self._attrs,
            )
        )
