"""Exporters: metrics JSON snapshots and Chrome trace-event files.

Two artifact formats leave the obs layer:

* **metrics snapshot** (``--metrics out.json``) -- the registry rendered as
  ``{"format": "pgschema-metrics", "version": 1, "counters": ...,
  "gauges": ..., "histograms": ...}``.  ``pgschema stats`` and the
  benchmark collector emit the same shape, so every JSON artifact in the
  repo shares one metrics vocabulary.
* **Chrome trace** (``--trace out.json``) -- the standard trace-event JSON
  object format: open it at https://ui.perfetto.dev or ``chrome://tracing``.
  Spans become ``"ph": "X"`` complete events (``ts``/``dur`` in
  microseconds relative to the tracer epoch); instant events become
  ``"ph": "i"``.  Nesting is inferred by the viewer from interval
  containment per ``(pid, tid)`` lane, which the span discipline
  guarantees.

Both shapes are pinned by checked-in JSON schemas under ``docs/schemas/``;
:func:`check_schema` is a dependency-free validator for the subset of JSON
Schema those files use (``type``, ``required``, ``properties``, ``items``,
``enum``, ``minimum``), shared by the golden tests and the CI ``obs-smoke``
job (``python -m repro.obs check FILE SCHEMA``).
"""

from __future__ import annotations

import json
from typing import Any

from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = [
    "attach_cache_stats",
    "check_schema",
    "chrome_trace_payload",
    "metrics_payload",
    "write_json",
]

METRICS_FORMAT = "pgschema-metrics"
METRICS_VERSION = 1


def metrics_payload(registry: MetricsRegistry, **extra: Any) -> dict:
    """Render a registry as the canonical metrics-snapshot JSON object."""
    snapshot = registry.snapshot()
    payload = {
        "format": METRICS_FORMAT,
        "version": METRICS_VERSION,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": snapshot["histograms"],
    }
    payload.update(extra)
    return payload


def attach_cache_stats(registry: MetricsRegistry) -> None:
    """Record the process-wide cache statistics as gauges.

    Pulls the validation plan cache and the satisfiability verdict/label
    caches into the registry so every exported snapshot carries them.
    Imported lazily: the engine packages import :mod:`repro.obs`, not the
    other way around.
    """
    from repro.satisfiability.cache import sat_cache_info
    from repro.schema.scalars import scalar_checker_info
    from repro.validation.plan import plan_cache_info

    # gauge names get an ``_info`` suffix: the ``*_cache.hits`` *counters*
    # count events observed during this run, while these gauges mirror the
    # process-lifetime totals the cache registries report
    for key, value in plan_cache_info().items():
        registry.gauge(f"validation.plan_cache_info.{key}", value)
    for key, value in sat_cache_info().items():
        registry.gauge(f"sat.cache_info.{key}", value)
    for key, value in scalar_checker_info().items():
        registry.gauge(f"schema.scalar_checkers_info.{key}", value)


def chrome_trace_payload(tracer: Tracer, **metadata: Any) -> dict:
    """Render buffered spans as a Chrome trace-event JSON object."""
    events = []
    epoch = tracer.epoch
    for event in tracer.events():
        entry: dict[str, Any] = {
            "name": event.name,
            "cat": event.name.split(".", 1)[0],
            "pid": event.pid,
            "tid": event.tid,
            "ts": (event.start - epoch) * 1e6,
        }
        if event.duration is None:
            entry["ph"] = "i"
            entry["s"] = "t"  # thread-scoped instant
        else:
            entry["ph"] = "X"
            entry["dur"] = event.duration * 1e6
        if event.attrs:
            entry["args"] = {key: _jsonable(value) for key, value in event.attrs.items()}
        events.append(entry)
    payload: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": "pgschema-trace", "version": 1},
    }
    payload["otherData"].update({k: _jsonable(v) for k, v in metadata.items()})
    return payload


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")


# --------------------------------------------------------------------------- #
# dependency-free JSON-schema subset checker
# --------------------------------------------------------------------------- #

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def check_schema(payload: Any, schema: dict, path: str = "$") -> list[str]:
    """Validate *payload* against a JSON-Schema subset; return problems.

    Supports ``type`` (string or list), ``required``, ``properties``,
    ``additionalProperties`` (schema form), ``items``, ``enum`` and
    ``minimum`` -- everything the checked-in trace/metrics schemas use.
    An empty return value means the payload conforms.
    """
    problems: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        names = [expected] if isinstance(expected, str) else list(expected)
        ok = False
        for name in names:
            python_type = _TYPES[name]
            if isinstance(payload, python_type) and not (
                name in ("number", "integer") and isinstance(payload, bool)
            ):
                ok = True
                break
        if not ok:
            problems.append(
                f"{path}: expected {' or '.join(names)}, "
                f"got {type(payload).__name__}"
            )
            return problems
    if "enum" in schema and payload not in schema["enum"]:
        problems.append(f"{path}: {payload!r} not in {schema['enum']!r}")
    if "minimum" in schema and isinstance(payload, (int, float)):
        if payload < schema["minimum"]:
            problems.append(f"{path}: {payload!r} below minimum {schema['minimum']!r}")
    if isinstance(payload, dict):
        for key in schema.get("required", ()):
            if key not in payload:
                problems.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in payload:
                problems.extend(check_schema(payload[key], sub, f"{path}.{key}"))
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, value in payload.items():
                if key not in properties:
                    problems.extend(check_schema(value, extra, f"{path}.{key}"))
    if isinstance(payload, list) and "items" in schema:
        for index, item in enumerate(payload):
            problems.extend(check_schema(item, schema["items"], f"{path}[{index}]"))
    return problems
