"""Metrics registry: counters, gauges, histograms with bounded reservoirs.

One :class:`MetricsRegistry` holds every metric recorded during a run.  The
registry is the single vocabulary shared by all exported run artifacts:
``--metrics`` snapshots, ``--profile`` summaries, ``pgschema stats`` output
and the per-benchmark payloads written by ``collect_results.py`` all render
registries through :func:`repro.obs.export.metrics_payload`.

Metric names are dotted paths (``validation.checks.WS1``,
``sat.cache.hits``); there is no label dimension -- encode variants in the
name.  All three instrument kinds are thread-safe: a registry may be shared
by the thread rungs of the executor ladder.  Process workers record into a
private registry whose :meth:`~MetricsRegistry.snapshot` ships back with the
task result and is folded into the parent via
:meth:`~MetricsRegistry.merge_snapshot` at the merge barrier.

Histograms keep exact ``count``/``sum``/``min``/``max`` plus a *bounded
reservoir* of observed values for quantile estimates.  The reservoir is
deterministic (no ``random``): it fills to capacity, then decimates itself
to every second element and doubles its sampling stride, so memory stays
O(capacity) while the kept sample remains spread over the whole stream.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Iterator

__all__ = ["Histogram", "MetricsRegistry"]

_RESERVOIR_CAPACITY = 512


class Histogram:
    """A streaming histogram with a deterministic bounded reservoir.

    Not thread-safe on its own; the owning registry serialises access.
    """

    __slots__ = (
        "count",
        "total",
        "minimum",
        "maximum",
        "_reservoir",
        "_stride",
        "_capacity",
    )

    def __init__(self, capacity: int = _RESERVOIR_CAPACITY) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._reservoir: list[float] = []
        self._stride = 1
        self._capacity = capacity

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if (self.count - 1) % self._stride == 0:
            self._reservoir.append(value)
            if len(self._reservoir) > self._capacity:
                # Deterministic decimation: keep every second sample and
                # double the stride.  The kept points stay evenly spread
                # over the stream seen so far.
                self._reservoir = self._reservoir[::2]
                self._stride *= 2

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 <= q <= 1) from the reservoir."""
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def to_json(self) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def merge(self, other: dict) -> None:
        """Fold a snapshot produced by another histogram into this one.

        Exact moments (count/sum/min/max) combine exactly; the reservoir
        absorbs the other side's sample points, so quantiles stay estimates
        over both streams.
        """
        count = other.get("count", 0)
        if not count:
            return
        self.count += count
        self.total += other.get("sum", 0.0)
        self.minimum = min(self.minimum, other.get("min", self.minimum))
        self.maximum = max(self.maximum, other.get("max", self.maximum))
        for value in other.get("reservoir", ()):
            if (len(self._reservoir)) < self._capacity:
                self._reservoir.append(value)
            else:
                self._reservoir = self._reservoir[::2]
                self._stride *= 2
                self._reservoir.append(value)

    def snapshot(self) -> dict:
        """Like :meth:`to_json` but carries the reservoir for merging."""
        payload = self.to_json()
        payload["reservoir"] = list(self._reservoir)
        return payload


class MetricsRegistry:
    """Thread-safe home for every counter, gauge and histogram of a run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def count(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    def timer(self, name: str) -> "_Timer":
        """Context manager observing elapsed seconds into histogram *name*."""
        return _Timer(self, name)

    def counter_value(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    # ------------------------------------------------------------------ #
    # snapshots and cross-process merging
    # ------------------------------------------------------------------ #

    def snapshot(self, *, reservoirs: bool = False) -> dict:
        """A plain-dict, picklable view of every metric.

        With ``reservoirs=True`` histogram entries carry their sample
        reservoirs so the snapshot can be merged into another registry
        (the process-worker shipping path); without, the snapshot is the
        export shape (quantiles only).
        """
        with self._lock:
            histograms = {
                name: (hist.snapshot() if reservoirs else hist.to_json())
                for name, hist in sorted(self._histograms.items())
            }
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": histograms,
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a worker snapshot (``reservoirs=True``) into this registry.

        Counters add, gauges last-write-wins, histograms merge moments and
        reservoirs.  Called at the shard/unit merge barrier with whatever
        the worker shipped alongside its result.
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = value
            for name, payload in snapshot.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram()
                histogram.merge(payload)

    def drain(self) -> dict:
        """Snapshot with reservoirs, then reset.  Used by process workers so
        each task ships only the metrics it recorded itself."""
        with self._lock:
            snapshot = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.snapshot() for name, hist in self._histograms.items()
                },
            }
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            return snapshot

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            names = sorted(
                set(self._counters) | set(self._gauges) | set(self._histograms)
            )
        return iter(names)


class _Timer:
    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._registry.observe(self._name, time.perf_counter() - self._start)
