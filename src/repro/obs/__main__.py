"""``python -m repro.obs check FILE SCHEMA`` -- validate an exported artifact.

Used by the CI ``obs-smoke`` job (and handy locally) to check a ``--trace``
or ``--metrics`` output file against the checked-in JSON schemas under
``docs/schemas/``.  Exit 0 when the file conforms, 1 with one problem per
line on stderr otherwise.
"""

from __future__ import annotations

import json
import sys

from .export import check_schema


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 3 or argv[0] != "check":
        print("usage: python -m repro.obs check FILE SCHEMA", file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as fp:
        payload = json.load(fp)
    with open(argv[2], encoding="utf-8") as fp:
        schema = json.load(fp)
    problems = check_schema(payload, schema)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"{argv[1]}: conforms to {argv[2]}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
