"""Schema evolution: diff two schemas and classify compatibility.

When a schema evolves from S_old to S_new, the operational question is
whether existing data survives: does every Property Graph that strongly
satisfies S_old still strongly satisfy S_new?  This module computes a
structural diff and classifies each change:

* **compatible** -- cannot invalidate any conforming instance (adding an
  optional field, widening a non-list field to a list, removing a
  constraint directive, adding a whole new type, …);
* **breaking** -- rejects some conforming instances (removing a type or
  field, adding ``@required``/``@key``/target-side directives, narrowing a
  field type, removing an enum value, …).

The classification is *sound for breakage in the checked direction*: every
change flagged compatible really preserves strong satisfaction, which the
property-based tests exercise by replaying conforming instances against
evolved schemas.  (Some breaking flags may be pessimistic -- e.g. adding
``@noLoops`` breaks only instances that actually contain loops.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .schema.directives import (
    DISTINCT,
    NO_LOOPS,
    REQUIRED,
    REQUIRED_FOR_TARGET,
    UNIQUE_FOR_TARGET,
)

if TYPE_CHECKING:  # pragma: no cover
    from .schema.model import FieldDefinition, GraphQLSchema

#: Directives whose *addition* constrains instances further.
_CONSTRAINING = (
    REQUIRED,
    DISTINCT,
    NO_LOOPS,
    UNIQUE_FOR_TARGET,
    REQUIRED_FOR_TARGET,
)


class Impact(enum.Enum):
    COMPATIBLE = "compatible"
    BREAKING = "breaking"


@dataclass(frozen=True)
class Change:
    """One classified schema change."""

    impact: Impact
    location: str
    description: str

    def __str__(self) -> str:
        return f"[{self.impact.value}] {self.location}: {self.description}"

    def to_json(self) -> dict[str, str]:
        return {
            "impact": self.impact.value,
            "location": self.location,
            "description": self.description,
        }


@dataclass
class SchemaDiff:
    """The classified difference between two schemas."""

    changes: list[Change] = field(default_factory=list)

    @property
    def breaking(self) -> list[Change]:
        return [change for change in self.changes if change.impact is Impact.BREAKING]

    @property
    def compatible(self) -> list[Change]:
        return [change for change in self.changes if change.impact is Impact.COMPATIBLE]

    @property
    def is_backward_compatible(self) -> bool:
        """True when every conforming old instance conforms to the new schema."""
        return not self.breaking

    def summary(self) -> str:
        if not self.changes:
            return "schemas are identical"
        return (
            f"{len(self.changes)} change(s): "
            f"{len(self.breaking)} breaking, {len(self.compatible)} compatible"
        )

    def to_json(self) -> dict[str, object]:
        return {
            "summary": self.summary(),
            "backward_compatible": self.is_backward_compatible,
            "changes": [change.to_json() for change in self.changes],
        }


def diff_schemas(old: "GraphQLSchema", new: "GraphQLSchema") -> SchemaDiff:
    """Diff *old* → *new* and classify every change."""
    diff = SchemaDiff()
    _diff_types(old, new, diff)
    _diff_scalars(old, new, diff)
    return diff


def _add(diff: SchemaDiff, impact: Impact, location: str, description: str) -> None:
    diff.changes.append(Change(impact, location, description))


def _diff_types(old: "GraphQLSchema", new: "GraphQLSchema", diff: SchemaDiff) -> None:
    old_objects, new_objects = set(old.object_types), set(new.object_types)
    for name in sorted(new_objects - old_objects):
        _add(diff, Impact.COMPATIBLE, f"type {name}", "object type added")
    for name in sorted(old_objects - new_objects):
        _add(
            diff,
            Impact.BREAKING,
            f"type {name}",
            "object type removed (existing nodes become unjustified, SS1)",
        )
    for name in sorted(old_objects & new_objects):
        _diff_object_type(old, new, name, diff)

    for union_name in sorted(set(old.union_types) & set(new.union_types)):
        removed = old.union(union_name) - new.union(union_name)
        added = new.union(union_name) - old.union(union_name)
        if removed:
            _add(
                diff,
                Impact.BREAKING,
                f"union {union_name}",
                f"members removed: {', '.join(sorted(removed))} "
                "(edges to them lose WS3 justification)",
            )
        if added:
            _add(
                diff,
                Impact.COMPATIBLE,
                f"union {union_name}",
                f"members added: {', '.join(sorted(added))}",
            )
    for interface_name in sorted(set(old.interface_types) & set(new.interface_types)):
        removed = old.implementation(interface_name) - new.implementation(interface_name)
        if removed & set(new.object_types):
            _add(
                diff,
                Impact.BREAKING,
                f"interface {interface_name}",
                f"implementations removed: {', '.join(sorted(removed))}",
            )


def _diff_object_type(
    old: "GraphQLSchema", new: "GraphQLSchema", type_name: str, diff: SchemaDiff
) -> None:
    old_type = old.object_types[type_name]
    new_type = new.object_types[type_name]
    old_fields = {field_def.name: field_def for field_def in old_type.fields}
    new_fields = {field_def.name: field_def for field_def in new_type.fields}

    for name in sorted(set(new_fields) - set(old_fields)):
        field_def = new_fields[name]
        if field_def.has_directive(REQUIRED):
            _add(
                diff,
                Impact.BREAKING,
                f"{type_name}.{name}",
                "field added with @required (existing elements lack it, DS5/DS6)",
            )
        else:
            _add(diff, Impact.COMPATIBLE, f"{type_name}.{name}", "optional field added")
    for name in sorted(set(old_fields) - set(new_fields)):
        _add(
            diff,
            Impact.BREAKING,
            f"{type_name}.{name}",
            "field removed (existing properties/edges become unjustified, SS2/SS4)",
        )
    for name in sorted(set(old_fields) & set(new_fields)):
        _diff_field(old, new, type_name, old_fields[name], new_fields[name], diff)

    # type-level @key directives
    old_keys = set(old_type.keys)
    new_keys = set(new_type.keys)
    for key in sorted(new_keys - old_keys):
        _add(
            diff,
            Impact.BREAKING,
            f"type {type_name}",
            f"@key(fields: {list(key)}) added (existing duplicates violate DS7)",
        )
    for key in sorted(old_keys - new_keys):
        _add(
            diff,
            Impact.COMPATIBLE,
            f"type {type_name}",
            f"@key(fields: {list(key)}) removed",
        )


def _diff_field(
    old: "GraphQLSchema",
    new: "GraphQLSchema",
    type_name: str,
    old_field: "FieldDefinition",
    new_field: "FieldDefinition",
    diff: SchemaDiff,
) -> None:
    where = f"{type_name}.{old_field.name}"
    if old_field.kind is not new_field.kind:
        _add(
            diff,
            Impact.BREAKING,
            where,
            f"field changed kind: {old_field.kind.value} → {new_field.kind.value}",
        )
        return
    if old_field.type != new_field.type:
        _classify_type_change(old, new, where, old_field, new_field, diff)

    old_directives = {d.name for d in old_field.directives}
    new_directives = {d.name for d in new_field.directives}
    for directive in _CONSTRAINING:
        if directive in new_directives and directive not in old_directives:
            _add(diff, Impact.BREAKING, where, f"@{directive} added")
        if directive in old_directives and directive not in new_directives:
            _add(diff, Impact.COMPATIBLE, where, f"@{directive} removed")

    old_args = {argument.name: argument for argument in old_field.arguments}
    new_args = {argument.name: argument for argument in new_field.arguments}
    for name in sorted(set(old_args) - set(new_args)):
        _add(
            diff,
            Impact.BREAKING,
            f"{where}({name})",
            "edge-property argument removed (existing properties unjustified, SS3)",
        )
    for name in sorted(set(new_args) - set(old_args)):
        _add(diff, Impact.COMPATIBLE, f"{where}({name})", "edge-property argument added")
    for name in sorted(set(old_args) & set(new_args)):
        if old_args[name].type != new_args[name].type:
            old_ref, new_ref = old_args[name].type, new_args[name].type
            widened = (
                old_ref.base == new_ref.base
                and old_ref.is_list == new_ref.is_list
                and not new_ref.non_null
                and (not new_ref.inner_non_null or old_ref.inner_non_null)
            )
            _add(
                diff,
                Impact.COMPATIBLE if widened else Impact.BREAKING,
                f"{where}({name})",
                f"argument type changed: {old_ref} → {new_ref}",
            )


def _classify_type_change(
    old: "GraphQLSchema",
    new: "GraphQLSchema",
    where: str,
    old_field: "FieldDefinition",
    new_field: "FieldDefinition",
    diff: SchemaDiff,
) -> None:
    old_ref, new_ref = old_field.type, new_field.type
    description = f"type changed: {old_ref} → {new_ref}"
    if old_field.is_attribute:
        # value sets must not shrink; dropping non-null or an Int→Float
        # widening keeps every old value legal
        same_shape = old_ref.is_list == new_ref.is_list
        base_widens = old_ref.base == new_ref.base or (
            old_ref.base == "Int" and new_ref.base == "Float"
        )
        nullability_relaxes = (not new_ref.non_null or old_ref.non_null) and (
            not new_ref.inner_non_null or old_ref.inner_non_null
        )
        compatible = same_shape and base_widens and nullability_relaxes
    else:
        # targets must not shrink; every object type below the old base must
        # stay below the new base, and list-ness must not shrink (a non-list
        # declaration adds the WS4 cardinality bound)
        old_targets = old.object_types_below(old_ref.base)
        new_targets = new.object_types_below(new_ref.base)
        compatible = old_targets <= new_targets and (
            new_ref.is_list or not old_ref.is_list
        )
    _add(
        diff,
        Impact.COMPATIBLE if compatible else Impact.BREAKING,
        where,
        description,
    )


def _diff_scalars(old: "GraphQLSchema", new: "GraphQLSchema", diff: SchemaDiff) -> None:
    for name in sorted(old.scalars.custom_names & new.scalars.custom_names):
        if old.scalars.is_enum(name) and new.scalars.is_enum(name):
            removed = old.scalars.enum_values(name) - new.scalars.enum_values(name)
            added = new.scalars.enum_values(name) - old.scalars.enum_values(name)
            if removed:
                _add(
                    diff,
                    Impact.BREAKING,
                    f"enum {name}",
                    f"values removed: {', '.join(sorted(removed))} (WS1)",
                )
            if added:
                _add(
                    diff,
                    Impact.COMPATIBLE,
                    f"enum {name}",
                    f"values added: {', '.join(sorted(added))}",
                )
    for name in sorted(old.scalars.custom_names - new.scalars.custom_names):
        _add(diff, Impact.BREAKING, f"scalar {name}", "scalar/enum type removed")
    for name in sorted(new.scalars.custom_names - old.scalars.custom_names):
        _add(diff, Impact.COMPATIBLE, f"scalar {name}", "scalar/enum type added")
