"""Command-line interface: the ``pgschema`` tool.

Subcommands:

* ``pgschema check SCHEMA.graphql`` -- parse, report warnings, and check
  consistency (Definitions 4.3/4.4).
* ``pgschema lint SCHEMA.graphql [--json]`` -- static analysis: stable rule
  codes with source spans, including the polynomial unsatisfiability
  pre-checks (Example 6.1's conflicting-cardinality class).
* ``pgschema analyze SCHEMA.graphql [--json]`` -- the dataflow analyzer:
  fixpoint passes over the type-dependency graph (cardinality intervals,
  constraint implication, key domains, reachability) with per-element
  pre-verdicts, findings, and per-pass timings.
* ``pgschema validate SCHEMA.graphql GRAPH.json`` -- decide the Schema
  Validation Problem (strong satisfaction) and list violations.
* ``pgschema sat SCHEMA.graphql [--type T]`` -- object-type satisfiability
  via the Theorem-3 tableau, with a bounded finite-witness search.  The
  whole-schema sweep runs the portfolio engine (``--jobs``, ``--engine
  portfolio|race|serial``); ``--profile`` reports per-engine win counts and
  verdict-cache statistics.
* ``pgschema translate SCHEMA.graphql`` -- show the ALCQI TBox of the
  Theorem-3 translation.
* ``pgschema api SCHEMA.graphql`` -- print the §3.6 GraphQL API schema.
* ``pgschema query SCHEMA.graphql GRAPH.json 'QUERY'`` -- run a GraphQL
  query against the graph through the generated API.
* ``pgschema infer GRAPH.json`` -- induce an SDL schema from an instance.
* ``pgschema diff OLD.graphql NEW.graphql`` -- classify schema evolution
  (backward compatible vs breaking).
* ``pgschema stats GRAPH.json`` -- profile an instance (labels, property
  coverage, degrees).
* ``pgschema export-cypher SCHEMA.graphql [GRAPH.json]`` -- Neo4j DDL (and
  optionally the data) with a report of the inexpressible constraints.
* ``pgschema serve`` -- the long-lived schema-registry service: a
  JSON-over-HTTP daemon with request batching, warm-cache reuse and
  backpressure (docs/SERVICE.md).  Startup failures (port in use, bad
  registry dir) report ``error[E_SERVICE]`` and exit 2.
* ``pgschema perf record|diff|trend|check`` -- continuous performance
  tracking over the ``.perf/`` profile store: record the deterministic
  scenario registry (including the adversarial workload families), diff
  two recorded runs through the degradation detector, render per-scenario
  trends, and gate CI -- ``perf check`` exits 1 on a confirmed
  ``Degradation`` (docs/PERF_TRACKING.md).

Exit status: 0 on success/conformance, 1 on violations or unsatisfiable
types, 2 on usage or input errors, 3 when an execution budget
(``--timeout`` / ``--max-nodes``) ran out before a decision -- the answer
is then UNKNOWN, not wrong.  Errors print one uniform line,
``error[E_CODE]: message`` (see :mod:`repro.errors`).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager

from . import obs
from .api import GraphQLExecutor, extend_to_api_schema
from .dl import schema_to_tbox
from .errors import GraphLoadError, ReproError, exit_code_for, render_error
from .pg import load_graph
from .resilience import Budget, faults
from .satisfiability import SatisfiabilityChecker
from .schema import consistency_errors, parse_schema
from .validation import validate


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        # fail fast (and uniformly) on a malformed PGSCHEMA_FAULTS spec
        # instead of surfacing it mid-run from some fault site
        faults.load_env_plan()
        with _observation(args):
            return args.handler(args)
    except (ReproError, OSError) as error:
        print(render_error(error), file=sys.stderr)
        return exit_code_for(error)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pgschema",
        description="Property Graph schemas via the GraphQL SDL "
        "(Hartig & Hidders, GRADES-NDA 2019)",
    )
    subparsers = parser.add_subparsers(required=True)

    check = subparsers.add_parser("check", help="parse a schema and check consistency")
    check.add_argument("schema")
    check.set_defaults(handler=_cmd_check)

    lint = subparsers.add_parser(
        "lint", help="run the static-analysis rules over a schema"
    )
    lint.add_argument("schema")
    lint.add_argument("--json", action="store_true", help="machine-readable output")
    lint.add_argument(
        "--select", action="append", metavar="RULE",
        help="run only these rules (code like PG001 or slug name); repeatable",
    )
    lint.add_argument(
        "--ignore", action="append", metavar="RULE",
        help="skip these rules; repeatable",
    )
    _add_obs_arguments(lint)
    lint.set_defaults(handler=_cmd_lint)

    analyze = subparsers.add_parser(
        "analyze", help="run the dataflow-analysis passes over a schema"
    )
    analyze.add_argument("schema")
    analyze.add_argument("--json", action="store_true", help="machine-readable output")
    analyze.add_argument(
        "--timings", action="store_true",
        help="print per-pass wall time to stderr",
    )
    _add_obs_arguments(analyze)
    analyze.set_defaults(handler=_cmd_analyze)

    validate_cmd = subparsers.add_parser(
        "validate", help="validate a graph against a schema"
    )
    validate_cmd.add_argument("schema")
    validate_cmd.add_argument("graph")
    validate_cmd.add_argument(
        "--mode",
        choices=("weak", "directives", "strong", "extended"),
        default="strong",
    )
    validate_cmd.add_argument(
        "--engine", choices=("indexed", "naive", "parallel"), default="indexed"
    )
    validate_cmd.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker count for --engine parallel (default: all usable cores)",
    )
    validate_cmd.add_argument(
        "--profile", action="store_true",
        help="print per-rule wall time to stderr (forces the indexed engine)",
    )
    jsonl_group = validate_cmd.add_argument_group("JSONL input")
    jsonl_group.add_argument(
        "--stream", action="store_true",
        help="validate a .jsonl graph out-of-core in bounded memory "
        "(chunked along scope boundaries; report byte-identical to in-memory)",
    )
    jsonl_group.add_argument(
        "--chunk-size", type=int, default=65536, metavar="N",
        help="elements per chunk for --stream (default 65536)",
    )
    jsonl_group.add_argument(
        "--backend", choices=("dict", "columnar"), default="dict",
        help="in-memory representation for .jsonl inputs without --stream",
    )
    _add_budget_arguments(validate_cmd)
    _add_obs_arguments(validate_cmd)
    validate_cmd.set_defaults(handler=_cmd_validate)

    cdc = subparsers.add_parser(
        "cdc",
        help="consume a mutation journal, keeping the violation set current",
    )
    cdc.add_argument("schema")
    cdc.add_argument("journal", help="JSONL mutation journal")
    cdc.add_argument(
        "--graph", default=None, metavar="FILE",
        help="base graph the journal applies to (default: empty graph)",
    )
    cdc.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write atomic checkpoints here (required for --resume)",
    )
    cdc.add_argument(
        "--checkpoint-every", type=int, default=16, metavar="N",
        help="commits between checkpoints (default 16)",
    )
    cdc.add_argument(
        "--resume", action="store_true",
        help="recover from the newest valid checkpoint (falling back to the "
        "previous one, then to cold replay) before consuming",
    )
    cdc.add_argument(
        "--events-json", default=None, metavar="FILE",
        help="append violation APPEARED/DISAPPEARED transitions here as JSONL",
    )
    _add_budget_arguments(cdc)
    _add_obs_arguments(cdc)
    cdc.set_defaults(handler=_cmd_cdc)

    sat = subparsers.add_parser("sat", help="check object-type satisfiability")
    sat.add_argument("schema")
    sat.add_argument("--type", dest="type_name", help="one object type (default: all)")
    sat.add_argument("--no-witness", action="store_true")
    sat.add_argument(
        "--max-witness-nodes", type=int, default=4, metavar="N",
        help="bound for the finite witness search (default 4)",
    )
    sat.add_argument(
        "--engine", choices=("serial", "portfolio", "race"), default="portfolio",
        help="whole-schema strategy: batched fan-out (default), tableau-vs-"
        "bounded racing, or the element-by-element serial sweep",
    )
    sat.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker count for the portfolio fan-out (default: all usable cores)",
    )
    sat.add_argument(
        "--profile", action="store_true",
        help="print engine win counts and verdict-cache statistics to stderr",
    )
    sat.add_argument(
        "--no-analysis", action="store_true",
        help="disable the dataflow-analysis pre-verdict feed (every element "
        "is decided by the lint pre-pass or a tableau/bounded search)",
    )
    _add_budget_arguments(sat)
    _add_obs_arguments(sat)
    sat.set_defaults(handler=_cmd_sat)

    translate = subparsers.add_parser(
        "translate", help="print the ALCQI translation (Theorem 3)"
    )
    translate.add_argument("schema")
    translate.set_defaults(handler=_cmd_translate)

    api = subparsers.add_parser("api", help="print the §3.6 GraphQL API schema")
    api.add_argument("schema")
    api.set_defaults(handler=_cmd_api)

    query = subparsers.add_parser("query", help="run a GraphQL query over a graph")
    query.add_argument("schema")
    query.add_argument("graph")
    query.add_argument("query_text")
    query.set_defaults(handler=_cmd_query)

    infer = subparsers.add_parser("infer", help="induce a schema from a graph")
    infer.add_argument("graph")
    infer.set_defaults(handler=_cmd_infer)

    diff = subparsers.add_parser(
        "diff", help="classify schema evolution old -> new"
    )
    diff.add_argument("old_schema")
    diff.add_argument("new_schema")
    diff.add_argument(
        "--json", action="store_true", help="machine-readable change list"
    )
    diff.set_defaults(handler=_cmd_diff)

    stats = subparsers.add_parser("stats", help="profile a graph instance")
    stats.add_argument("graph")
    stats.add_argument(
        "--json", action="store_true",
        help="emit the profile as a metrics-snapshot JSON object "
        "(same shape as --metrics run snapshots), including occupancy/"
        "hit/miss/eviction gauges for the plan cache, the sat caches and "
        "the compiled-scalar registry, plus a perf block summarising the "
        "profile store (scenario count, last commit, newest verdicts)",
    )
    stats.add_argument(
        "--perf-store", default=".perf", metavar="DIR",
        help="profile store summarised in the --json perf block (default .perf)",
    )
    stats.set_defaults(handler=_cmd_stats)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived schema-registry service "
        "(JSON-over-HTTP; see docs/SERVICE.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8351,
        help="TCP port to bind (default 8351; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--registry-dir", default=None, metavar="DIR",
        help="persist registered schemas here (atomic writes; reloaded on "
        "restart).  Default: in-memory only",
    )
    serve.add_argument(
        "--max-queue", type=int, default=256, metavar="N",
        help="admission-queue depth; beyond it requests get a typed 503 "
        "(default 256)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32, metavar="N",
        help="most requests coalesced into one batch sweep (default 32)",
    )
    serve.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="shard workers for batched validation (default: all usable cores)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline; exhaustion returns a typed "
        "partial report (HTTP 202), never a wrong answer",
    )
    _add_obs_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    export = subparsers.add_parser(
        "export-cypher", help="export Neo4j constraint DDL (and optionally data)"
    )
    export.add_argument("schema")
    export.add_argument("graph", nargs="?")
    export.set_defaults(handler=_cmd_export_cypher)

    perf = subparsers.add_parser(
        "perf",
        help="continuous performance tracking over the .perf/ profile store "
        "(see docs/PERF_TRACKING.md)",
    )
    perf_sub = perf.add_subparsers(required=True)

    record = perf_sub.add_parser(
        "record", help="run the scenario registry and append one profile run"
    )
    record.add_argument(
        "--commit", default=None, metavar="SHA",
        help="commit label for the run (default: git HEAD, else 'unknown')",
    )
    record.add_argument(
        "--quick", action="store_true",
        help="small workload sizes (the CI perf-smoke shape)",
    )
    record.add_argument(
        "--repeats", type=int, default=5, metavar="N",
        help="timed samples per scenario after one warm-up (default 5)",
    )
    record.add_argument(
        "--scenario", action="append", metavar="SEL",
        help="record only these scenarios (exact id, id prefix like "
        "'validate.', or family name); repeatable",
    )
    _add_perf_store_argument(record)
    record.add_argument("--json", action="store_true", help="machine-readable output")
    record.set_defaults(handler=_cmd_perf_record)

    perf_diff = perf_sub.add_parser(
        "diff", help="compare two recorded runs through the degradation detector"
    )
    _add_perf_run_arguments(perf_diff)
    perf_diff.set_defaults(handler=_cmd_perf_diff)

    trend = perf_sub.add_parser(
        "trend", help="per-scenario history across every recorded run"
    )
    trend.add_argument(
        "--scenario", default=None, metavar="ID", help="one scenario (default: all)"
    )
    _add_perf_store_argument(trend)
    trend.add_argument("--json", action="store_true", help="machine-readable output")
    trend.set_defaults(handler=_cmd_perf_trend)

    perf_check = perf_sub.add_parser(
        "check",
        help="CI gate: diff the last two runs, exit 1 on a confirmed Degradation",
    )
    _add_perf_run_arguments(perf_check)
    perf_check.set_defaults(handler=_cmd_perf_check)

    return parser


def _add_perf_store_argument(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--store", default=".perf", metavar="DIR",
        help="profile store root (default .perf)",
    )


def _add_perf_run_arguments(subparser: argparse.ArgumentParser) -> None:
    _add_perf_store_argument(subparser)
    subparser.add_argument(
        "--baseline", type=int, default=None, metavar="RUN",
        help="baseline run number (default: the run before the target)",
    )
    subparser.add_argument(
        "--target", type=int, default=None, metavar="RUN",
        help="target run number (default: the last recorded run)",
    )
    subparser.add_argument("--json", action="store_true", help="machine-readable output")


def _add_budget_arguments(subparser: argparse.ArgumentParser) -> None:
    group = subparser.add_argument_group("execution budget")
    group.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline for the whole command",
    )
    group.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        help="cap on elements processed / tableau nodes created",
    )
    group.add_argument(
        "--on-budget", choices=("unknown", "error"), default="unknown",
        help='when the budget runs out: report UNKNOWN partial results and '
        'exit 3 (default), or fail with error[E_BUDGET]',
    )


def _add_obs_arguments(subparser: argparse.ArgumentParser) -> None:
    group = subparser.add_argument_group("observability")
    group.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace-event JSON of the run "
        "(open at https://ui.perfetto.dev)",
    )
    group.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write a metrics-snapshot JSON of the run",
    )


@contextmanager
def _observation(args):
    """Install the obs layer for commands invoked with --trace/--metrics.

    Artifacts are written in ``finally`` so a run that exits with
    violations (or dies on a budget) still leaves its trace behind.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if trace_path is None and metrics_path is None:
        yield
        return
    from .obs import export

    observation = obs.install(
        obs.Tracer() if trace_path else None,
        obs.MetricsRegistry() if metrics_path else None,
    )
    try:
        yield
    finally:
        obs.uninstall()
        if metrics_path:
            export.attach_cache_stats(observation.registry)
            export.write_json(
                metrics_path, export.metrics_payload(observation.registry)
            )
        if trace_path:
            export.write_json(
                trace_path, export.chrome_trace_payload(observation.tracer)
            )


def _budget_from_args(args) -> Budget | None:
    if args.timeout is None and args.max_nodes is None:
        return None
    return Budget(deadline=args.timeout, max_nodes=args.max_nodes)


def _load_schema(path: str, check: bool = True):
    with open(path) as handle:
        return parse_schema(handle.read(), check=check)


def _load_graph(path: str, backend: str = "dict"):
    """Load a graph document; ``.jsonl`` files go through the line format."""
    if path.endswith(".jsonl"):
        from .pg.io import load_graph_jsonl

        with open(path) as handle:
            return load_graph_jsonl(handle, source=path, backend=backend)
    with open(path) as handle:
        graph = load_graph(handle)
    if backend == "columnar":
        from .pg import freeze

        return freeze(graph)
    return graph


def _cmd_check(args) -> int:
    schema = _load_schema(args.schema, check=False)
    for warning in schema.warnings:
        print(f"warning: {warning}")
    errors = consistency_errors(schema)
    if errors:
        print(f"schema is NOT consistent ({len(errors)} problem(s)):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(
        f"schema is consistent: {len(schema.object_types)} object type(s), "
        f"{len(schema.interface_types)} interface(s), "
        f"{len(schema.union_types)} union(s)"
    )
    return 0


def _cmd_lint(args) -> int:
    from .lint import Severity, has_errors, lint_schema

    schema = _load_schema(args.schema, check=False)
    findings = lint_schema(schema, select=args.select, ignore=args.ignore)
    if args.json:
        print(json.dumps([finding.to_json() for finding in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render(args.schema))
        counts = {
            severity: sum(1 for f in findings if f.severity is severity)
            for severity in Severity
        }
        print(
            f"{len(findings)} finding(s): "
            f"{counts[Severity.ERROR]} error(s), "
            f"{counts[Severity.WARNING]} warning(s), "
            f"{counts[Severity.INFO]} info"
        )
    return 1 if has_errors(findings) else 0


def _cmd_analyze(args) -> int:
    from .analysis import analyze_schema
    from .lint import has_errors

    schema = _load_schema(args.schema, check=False)
    result = analyze_schema(schema)
    if args.json:
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        cardinality = result.fact("cardinality")
        decided = 0
        for type_name in sorted(schema.object_types):
            verdict = cardinality.type_verdict_name(type_name)
            decided += verdict != "unknown"
            print(
                f"{type_name}: {verdict} "
                f"(interval {cardinality.interval(type_name)})"
            )
        for (declarer, field_name), verdict in sorted(
            cardinality.field_verdicts.items()
        ):
            label = "sat" if verdict else ("unsat" if verdict is False else "unknown")
            decided += verdict is not None
            print(f"{declarer}.{field_name}: {label}")
        for finding in result.diagnostics:
            print(finding.render(args.schema))
        total = len(schema.object_types) + len(cardinality.field_verdicts)
        print(
            f"{decided}/{total} element(s) decided statically; "
            f"{len(result.diagnostics)} finding(s)"
        )
    if args.timings:
        for name, seconds in result.timings.items():
            print(f"  {name:12s} {seconds * 1000:9.3f} ms", file=sys.stderr)
    return 1 if has_errors(result.diagnostics) else 0


def _cmd_validate(args) -> int:
    schema = _load_schema(args.schema)
    if args.stream:
        from .validation import StreamValidator

        if not args.graph.endswith(".jsonl"):
            raise GraphLoadError(
                f"--stream validates JSON-Lines graph files; {args.graph!r} "
                "is not a .jsonl file (see docs/STREAMING.md)",
                source=args.graph,
            )
        report = StreamValidator(
            schema,
            chunk_elements=args.chunk_size,
            budget=_budget_from_args(args),
            on_budget=args.on_budget,
        ).validate(args.graph, mode=args.mode)
        return _finish_validate(report)
    graph = _load_graph(args.graph, backend=args.backend)
    if args.profile:
        from .validation import IndexedValidator, compile_plan, plan_cache_info

        validator = IndexedValidator(schema, plan=compile_plan(schema))
        report, timings = validator.profile_rules(graph, mode=args.mode)
        total = sum(timings.values())
        for rule, seconds in sorted(timings.items(), key=lambda kv: -kv[1]):
            print(f"  {rule:4s} {seconds * 1000:9.3f} ms", file=sys.stderr)
        print(f"  {'all':4s} {total * 1000:9.3f} ms", file=sys.stderr)
        info = plan_cache_info()
        print(
            f"  plan cache: {info['hits']} hit(s), {info['misses']} miss(es), "
            f"{info['size']}/{info['maxsize']} plan(s)",
            file=sys.stderr,
        )
    else:
        report = validate(
            schema,
            graph,
            mode=args.mode,
            engine=args.engine,
            jobs=args.jobs,
            budget=_budget_from_args(args),
            on_budget=args.on_budget,
        )
    return _finish_validate(report)


def _finish_validate(report) -> int:
    print(report.summary())
    for violation in sorted(report.violations, key=str):
        print(f"  {violation}")
    if report.violations:
        return 1
    return 0 if report.complete else 3


def _cmd_cdc(args) -> int:
    from .validation import CDCConsumer

    schema = _load_schema(args.schema)
    base_graph = _load_graph(args.graph) if args.graph else None
    consumer = CDCConsumer(
        schema,
        args.journal,
        base_graph=base_graph,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        events_path=args.events_json,
        budget=_budget_from_args(args),
        on_budget=args.on_budget,
    )
    result = consumer.run(resume=args.resume)
    if result.recovered_from is not None:
        print(f"resumed from {result.recovered_from}")
    print(
        f"{result.commits} commit(s), {result.events_applied} event(s) applied, "
        f"{len(result.events)} violation transition(s), "
        f"{result.checkpoints_written} checkpoint(s)"
        + (f", {result.retries} retried apply(s)" if result.retries else "")
    )
    for event in result.events:
        print(f"  {event}")
    print(result.report.summary())
    if result.report.violations:
        return 1
    return 0 if result.report.complete else 3


def _cmd_sat(args) -> int:
    schema = _load_schema(args.schema, check=False)
    checker = SatisfiabilityChecker(
        schema,
        bounded_max_nodes=args.max_witness_nodes,
        budget=_budget_from_args(args),
        on_budget=args.on_budget,
        analysis_precheck=not args.no_analysis,
    )
    if args.type_name:
        results = [
            checker.check_type(args.type_name, find_witness=not args.no_witness)
        ]
    else:
        report = checker.check_schema(
            find_witnesses=not args.no_witness,
            jobs=args.jobs,
            engine=args.engine,
        )
        results = [report.types[name] for name in sorted(report.types)]
    any_unsat = False
    any_unknown = False
    for result in results:
        type_name = result.type_name
        if result.verdict == "unknown":
            any_unknown = True
            reason = f" ({result.reason})" if result.reason is not None else ""
            print(f"{type_name}: UNKNOWN (budget exhausted){reason}")
        elif result.verdict == "sat":
            finite = result.finitely_satisfiable
            note = (
                f"finite witness with {result.witness.num_nodes} node(s)"
                if finite
                else "satisfiable (no finite witness found at this bound; "
                "possibly only infinite models)"
            )
            print(f"{type_name}: SATISFIABLE ({note})")
        else:
            any_unsat = True
            print(f"{type_name}: UNSATISFIABLE")
    if args.profile:
        _print_sat_profile(checker)
    if any_unsat:
        return 1
    return 3 if any_unknown else 0


def _print_sat_profile(checker: SatisfiabilityChecker) -> None:
    from .satisfiability import sat_cache_info

    profile = checker.last_profile
    if profile is not None:
        wins = profile.get("wins", {})
        won = ", ".join(
            f"{engine}={count}" for engine, count in sorted(wins.items())
        ) or "none"
        print(
            f"  engine={profile['engine']} executor={profile['executor']} "
            f"jobs={profile['jobs']} units={profile['units']}",
            file=sys.stderr,
        )
        print(f"  decided by: {won}", file=sys.stderr)
    info = sat_cache_info()
    print(
        f"  sat cache: {info['hits']} hit(s), {info['misses']} miss(es), "
        f"{info['types']} type / {info['fields']} field / "
        f"{info['bounded']} bounded verdict(s) over {info['schemas']} schema(s)",
        file=sys.stderr,
    )
    print(
        f"  label cache: {info['label_hits']} hit(s), "
        f"{info['label_misses']} miss(es), {info['label_entries']} stored label set(s)",
        file=sys.stderr,
    )


def _cmd_translate(args) -> int:
    schema = _load_schema(args.schema, check=False)
    tbox = schema_to_tbox(schema)
    for axiom in tbox.axioms:
        print(axiom)
    for name, definiens in tbox.definitions.items():
        print(f"{name} ≡ {definiens}")
    for group in tbox.disjoint_groups:
        print("disjoint(" + ", ".join(sorted(group)) + ")")
    return 0


def _cmd_api(args) -> int:
    schema = _load_schema(args.schema)
    print(extend_to_api_schema(schema).sdl, end="")
    return 0


def _cmd_query(args) -> int:
    schema = _load_schema(args.schema)
    graph = _load_graph(args.graph)
    executor = GraphQLExecutor(extend_to_api_schema(schema), graph)
    print(json.dumps(executor.execute(args.query_text), indent=2, default=str))
    return 0


def _cmd_infer(args) -> int:
    from .inference import infer_schema

    graph = _load_graph(args.graph)
    result = infer_schema(graph)
    print(result.sdl, end="")
    for label, keys in sorted(result.key_candidates.items()):
        if len(keys) > 1:
            print(f"# {label}: other key candidates: {', '.join(keys[1:])}")
    return 0


def _cmd_diff(args) -> int:
    from .evolution import diff_schemas

    try:
        old = _load_schema(args.old_schema)
        new = _load_schema(args.new_schema)
    except (ReproError, OSError) as error:
        # a schema that cannot even be loaded leaves the compatibility
        # question UNDECIDED -- exit 3 (the UNKNOWN code), not 2
        print(render_error(error), file=sys.stderr)
        return 3
    diff = diff_schemas(old, new)
    if args.json:
        print(json.dumps(diff.to_json(), indent=2, sort_keys=True))
    else:
        print(diff.summary())
        for change in diff.changes:
            print(f"  {change}")
    return 0 if diff.is_backward_compatible else 1


def _cmd_stats(args) -> int:
    from .pg.stats import profile_graph, profile_to_registry

    graph = _load_graph(args.graph)
    profile = profile_graph(graph)
    if args.json:
        from .obs.export import attach_cache_stats, metrics_payload
        from .perf import ProfileStore, perf_summary

        registry = profile_to_registry(profile)
        # occupancy/hit/miss/eviction gauges for the plan cache, the sat
        # verdict caches and the compiled-scalar registry -- the same
        # numbers the service's /v1/stats endpoint reports
        attach_cache_stats(registry)
        payload = metrics_payload(registry)
        payload["perf"] = perf_summary(ProfileStore(args.perf_store))
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for line in profile.summary_lines():
            print(line)
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import contextlib
    import signal

    from .service import ValidationService

    service = ValidationService(
        args.registry_dir,
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        jobs=args.jobs,
        deadline=args.deadline,
    )

    async def run() -> None:
        host, port = await service.start()
        print(f"pgschema service listening on http://{host}:{port}/v1/", flush=True)
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        # Explicit handlers, not KeyboardInterrupt: a daemon launched as a
        # shell background job (CI's `pgschema serve &`) inherits SIGINT
        # *ignored* -- no job control means async commands start with
        # SIG_IGN -- and Python never installs its default handler over an
        # inherited ignore.  add_signal_handler overrides the disposition,
        # so `kill -INT`/`kill -TERM` always reach the graceful drain.
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stopping.set)
                installed.append(sig)
            except (NotImplementedError, OSError):  # pragma: no cover
                pass  # non-POSIX event loop: KeyboardInterrupt still works
        server_task = asyncio.ensure_future(service.serve_forever())
        stop_task = asyncio.ensure_future(stopping.wait())
        try:
            await asyncio.wait(
                {server_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            for task in (server_task, stop_task):
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
            await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        # covers the window before the handlers install, and platforms
        # whose loop cannot install them; asyncio.run cancels the task and
        # the finally-drain still runs
        pass
    return 0


def _git_head_commit() -> str:
    import subprocess

    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return completed.stdout.strip() if completed.returncode == 0 else "unknown"


def _cmd_perf_record(args) -> int:
    from .perf import PerfStoreError, ProfileStore, record_profiles

    store = ProfileStore(args.store)
    commit = args.commit or _git_head_commit()
    run = store.last_run() + 1

    def progress(scenario_id: str, best: float) -> None:
        if not args.json:
            print(f"  {scenario_id}: {best * 1000:.2f} ms")

    try:
        profiles = record_profiles(
            commit=commit,
            run=run,
            quick=args.quick,
            repeats=args.repeats,
            only=args.scenario,
            progress=progress,
        )
    except ValueError as error:
        raise PerfStoreError(str(error)) from None
    store.append(profiles)
    if args.json:
        print(
            json.dumps(
                {
                    "run": run,
                    "commit": commit,
                    "quick": args.quick,
                    "profiles": len(profiles),
                    "store": store.root,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"recorded run {run} at {commit[:12]}: "
            f"{len(profiles)} profile(s) -> {store.root}"
        )
    return 0


def _perf_diff_report(args):
    from .perf import PerfStoreError, ProfileStore, diff_runs

    try:
        return diff_runs(ProfileStore(args.store), args.baseline, args.target)
    except ValueError as error:
        raise PerfStoreError(str(error)) from None


def _cmd_perf_diff(args) -> int:
    from .perf import render_diff_markdown

    report = _perf_diff_report(args)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(render_diff_markdown(report), end="")
    return 1 if report.has_degradation else 0


def _cmd_perf_trend(args) -> int:
    from .perf import PerfStoreError, ProfileStore, render_trend_markdown, trend_rows

    try:
        history = trend_rows(ProfileStore(args.store), args.scenario)
    except ValueError as error:
        raise PerfStoreError(str(error)) from None
    if args.json:
        print(json.dumps(history, indent=2, sort_keys=True))
    else:
        print(render_trend_markdown(history), end="")
    return 0


def _cmd_perf_check(args) -> int:
    from .perf import render_diff_markdown

    report = _perf_diff_report(args)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    elif report.has_degradation:
        print(render_diff_markdown(report), end="")
    if report.has_degradation:
        degraded = ", ".join(entry.scenario for entry in report.degradations)
        print(
            f"perf check: FAIL -- confirmed degradation in {degraded} "
            f"(run {report.baseline_run} -> {report.target_run})",
            file=sys.stderr,
        )
        return 1
    if not args.json:
        print(
            f"perf check: OK (run {report.baseline_run} -> {report.target_run}, "
            f"{len(report.entries)} scenario(s), no confirmed degradation)"
        )
    return 0


def _cmd_export_cypher(args) -> int:
    from .baselines import graph_to_cypher, schema_to_cypher_ddl

    schema = _load_schema(args.schema)
    export = schema_to_cypher_ddl(schema)
    print(export.ddl, end="")
    for item in export.unsupported:
        print(f"// not expressible in Cypher DDL: {item}")
    if args.graph:
        print(graph_to_cypher(_load_graph(args.graph)), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
