"""First-order formula AST.

A small many-sorted first-order logic: terms are variables or constants,
formulas are relation atoms, equality, boolean connectives and sorted
quantifiers.  The proof of Theorem 1 encodes schema validation as boolean
queries in this logic; :mod:`repro.fo.sentences` contains those queries and
:mod:`repro.fo.evaluate` evaluates them over the structure built by
:mod:`repro.fo.encode`.

Sorts matter for the complexity story: quantifiers over *schema* sorts range
over a fixed-size domain once the schema is fixed, so only the quantifiers
over the ``node``/``edge``/``value`` sorts contribute to data complexity --
the observation behind the O(n²) bound discussed after Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Var:
    """A variable, e.g. ``Var("e1")``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant denoting a domain element."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


Term = Union[Var, Const]


class Formula:
    """Base class for formulas."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        return Implies(self, other)


@dataclass(frozen=True)
class TrueF(Formula):
    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class FalseF(Formula):
    def __str__(self) -> str:
        return "⊥"


@dataclass(frozen=True)
class Atom(Formula):
    """A relation atom R(t1, …, tk)."""

    relation: str
    terms: tuple[Term, ...]

    def __str__(self) -> str:
        args = ", ".join(str(term) for term in self.terms)
        return f"{self.relation}({args})"


@dataclass(frozen=True)
class Eq(Formula):
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Not(Formula):
    body: Formula

    def __str__(self) -> str:
        return f"¬({self.body})"


@dataclass(frozen=True)
class And(Formula):
    parts: tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " ∧ ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True)
class Or(Formula):
    parts: tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    premise: Formula
    conclusion: Formula

    def __str__(self) -> str:
        return f"({self.premise} → {self.conclusion})"


@dataclass(frozen=True)
class Exists(Formula):
    """∃ var : sort . body"""

    var: Var
    sort: str
    body: Formula

    def __str__(self) -> str:
        return f"∃{self.var}:{self.sort}. {self.body}"


@dataclass(frozen=True)
class ForAll(Formula):
    """∀ var : sort . body"""

    var: Var
    sort: str
    body: Formula

    def __str__(self) -> str:
        return f"∀{self.var}:{self.sort}. {self.body}"


def conj(*parts: Formula) -> Formula:
    """n-ary conjunction (flattening nested And nodes)."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.parts)
        elif not isinstance(part, TrueF):
            flat.append(part)
    if not flat:
        return TrueF()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*parts: Formula) -> Formula:
    """n-ary disjunction (flattening nested Or nodes)."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, Or):
            flat.extend(part.parts)
        elif not isinstance(part, FalseF):
            flat.append(part)
    if not flat:
        return FalseF()
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def forall(variables: list[tuple[str, str]], body: Formula) -> Formula:
    """∀ over several (name, sort) pairs, outermost first."""
    for name, sort in reversed(variables):
        body = ForAll(Var(name), sort, body)
    return body


def exists(variables: list[tuple[str, str]], body: Formula) -> Formula:
    """∃ over several (name, sort) pairs, outermost first."""
    for name, sort in reversed(variables):
        body = Exists(Var(name), sort, body)
    return body
