"""The satisfaction rules of Section 5 as first-order sentences.

Each of WS1-WS4, DS1-DS7 and SS1-SS4 is written as a closed formula over the
vocabulary of :mod:`repro.fo.encode`.  The sentences are *schema-independent*
-- the schema enters purely through the encoded structure -- which is exactly
how the Theorem-1 proof separates the fixed boolean queries from the encoded
input.

Quantifiers are written in guarded form, ``∀x (guard(x, bound…) → …)``, so
the generic evaluator can narrow candidates from the guard relation; this is
a pure evaluation optimisation and does not change the sentences' meaning.
Only the ``node``/``edge``/``value`` quantifiers grow with the data, and no
rule nests more than two of them -- the observation behind the O(n²) data
complexity discussed after Theorem 1.
"""

from __future__ import annotations

from .formulas import (
    Atom,
    Eq,
    Exists,
    FalseF,
    ForAll,
    Formula,
    Implies,
    Not,
    Var,
    conj,
    disj,
)

Spec = tuple[str, str, Formula | None]


def _atom(relation: str, *names: str) -> Atom:
    return Atom(relation, tuple(Var(name) for name in names))


def _forall(specs: list[Spec], conclusion: Formula) -> Formula:
    """Nested guarded universals: ∀x:sort. (guard → …)."""
    body = conclusion
    for name, sort, guard in reversed(specs):
        if guard is not None:
            body = Implies(guard, body)
        body = ForAll(Var(name), sort, body)
    return body


def _exists(specs: list[Spec], body: Formula) -> Formula:
    """Nested guarded existentials: ∃x:sort. (guard ∧ …)."""
    for name, sort, guard in reversed(specs):
        if guard is not None:
            body = conj(guard, body)
        body = Exists(Var(name), sort, body)
    return body


# --------------------------------------------------------------------------- #
# weak satisfaction
# --------------------------------------------------------------------------- #


def ws1() -> Formula:
    """Node properties must be of the required type."""
    return _forall(
        [
            ("v", "node", _atom("V", "v")),
            ("l", "symbol", _atom("label", "v", "l")),
            ("p", "symbol", _atom("attrdecl", "l", "p")),
            ("x", "value", _atom("val", "v", "p", "x")),
        ],
        _atom("valOK_F", "l", "p", "x"),
    )


def ws2() -> Formula:
    """Edge properties must be of the required type."""
    return _forall(
        [
            ("e", "edge", _atom("E", "e")),
            ("v1", "node", _atom("src", "e", "v1")),
            ("t", "symbol", _atom("label", "v1", "t")),
            ("f", "symbol", _atom("label", "e", "f")),
            ("a", "symbol", _atom("argdecl", "t", "f", "a")),
            ("x", "value", _atom("val", "e", "a", "x")),
        ],
        _atom("valOK_AF", "t", "f", "a", "x"),
    )


def ws3() -> Formula:
    """Target nodes must be of the required type."""
    return _forall(
        [
            ("e", "edge", _atom("E", "e")),
            ("v1", "node", _atom("src", "e", "v1")),
            ("v2", "node", _atom("tgt", "e", "v2")),
            ("t", "symbol", _atom("label", "v1", "t")),
            ("f", "symbol", _atom("label", "e", "f")),
            ("b", "symbol", _atom("basedecl", "t", "f", "b")),
            ("l2", "symbol", _atom("label", "v2", "l2")),
        ],
        _atom("subtype", "l2", "b"),
    )


def ws4() -> Formula:
    """Non-list fields contain at most one edge."""
    return _forall(
        [
            ("e1", "edge", _atom("E", "e1")),
            ("e2", "edge", _atom("E", "e2")),
            ("v1", "node", _atom("src", "e1", "v1")),
            ("f", "symbol", _atom("label", "e1", "f")),
            ("t", "symbol", _atom("label", "v1", "t")),
        ],
        Implies(
            conj(_atom("src", "e2", "v1"), _atom("label", "e2", "f"), _atom("nonlist", "t", "f")),
            Eq(Var("e1"), Var("e2")),
        ),
    )


# --------------------------------------------------------------------------- #
# directives satisfaction
# --------------------------------------------------------------------------- #


def ds1() -> Formula:
    """@distinct: edges identified by endpoints and label."""
    return _forall(
        [
            ("t", "symbol", None),
            ("f", "symbol", _atom("distinctdecl", "t", "f")),
            ("e1", "edge", _atom("label", "e1", "f")),
            ("e2", "edge", _atom("label", "e2", "f")),
            ("v1", "node", _atom("src", "e1", "v1")),
            ("v2", "node", _atom("tgt", "e1", "v2")),
            ("l", "symbol", _atom("label", "v1", "l")),
        ],
        Implies(
            conj(
                _atom("subtype", "l", "t"),
                _atom("src", "e2", "v1"),
                _atom("tgt", "e2", "v2"),
            ),
            Eq(Var("e1"), Var("e2")),
        ),
    )


def ds2() -> Formula:
    """@noLoops: no self-loop edges."""
    return _forall(
        [
            ("t", "symbol", None),
            ("f", "symbol", _atom("noloopsdecl", "t", "f")),
            ("e", "edge", _atom("label", "e", "f")),
            ("v", "node", _atom("src", "e", "v")),
            ("l", "symbol", _atom("label", "v", "l")),
        ],
        Implies(conj(_atom("tgt", "e", "v"), _atom("subtype", "l", "t")), FalseF()),
    )


def ds3() -> Formula:
    """@uniqueForTarget: targets have at most one incoming edge."""
    return _forall(
        [
            ("t", "symbol", None),
            ("f", "symbol", _atom("uniqueFT", "t", "f")),
            ("e1", "edge", _atom("label", "e1", "f")),
            ("e2", "edge", _atom("label", "e2", "f")),
            ("v3", "node", _atom("tgt", "e1", "v3")),
            ("v1", "node", _atom("src", "e1", "v1")),
            ("v2", "node", _atom("src", "e2", "v2")),
            ("l1", "symbol", _atom("label", "v1", "l1")),
            ("l2", "symbol", _atom("label", "v2", "l2")),
        ],
        Implies(
            conj(
                _atom("tgt", "e2", "v3"),
                _atom("subtype", "l1", "t"),
                _atom("subtype", "l2", "t"),
            ),
            Eq(Var("e1"), Var("e2")),
        ),
    )


def ds4() -> Formula:
    """@requiredForTarget: targets have at least one incoming edge."""
    incoming = _exists(
        [
            ("e", "edge", _atom("tgt", "e", "v2")),
            ("v1", "node", _atom("src", "e", "v1")),
            ("l1", "symbol", _atom("label", "v1", "l1")),
        ],
        conj(_atom("label", "e", "f"), _atom("subtype", "l1", "t")),
    )
    return _forall(
        [
            ("t", "symbol", None),
            ("f", "symbol", None),
            ("b", "symbol", _atom("reqFT", "t", "f", "b")),
            ("v2", "node", _atom("V", "v2")),
            ("l2", "symbol", _atom("label", "v2", "l2")),
        ],
        Implies(_atom("subtype", "l2", "b"), incoming),
    )


def ds5() -> Formula:
    """@required on an attribute: property present (nonempty when a list)."""
    present = Exists(
        Var("x"),
        "value",
        conj(
            _atom("val", "v", "f", "x"),
            Not(conj(_atom("listattr", "t", "f"), _atom("emptyarr", "x"))),
        ),
    )
    return _forall(
        [
            ("t", "symbol", None),
            ("f", "symbol", _atom("reqattr", "t", "f")),
            ("v", "node", _atom("V", "v")),
            ("l", "symbol", _atom("label", "v", "l")),
        ],
        Implies(_atom("subtype", "l", "t"), present),
    )


def ds6() -> Formula:
    """@required on a relationship: outgoing edge present."""
    outgoing = Exists(
        Var("e"), "edge", conj(_atom("src", "e", "v"), _atom("label", "e", "f"))
    )
    return _forall(
        [
            ("t", "symbol", None),
            ("f", "symbol", _atom("reqedge", "t", "f")),
            ("v", "node", _atom("V", "v")),
            ("l", "symbol", _atom("label", "v", "l")),
        ],
        Implies(_atom("subtype", "l", "t"), outgoing),
    )


def ds7() -> Formula:
    """@key: nodes agreeing on all key fields are identical."""
    both_absent = conj(
        Not(Exists(Var("x1"), "value", _atom("val", "v1", "f", "x1"))),
        Not(Exists(Var("x2"), "value", _atom("val", "v2", "f", "x2"))),
    )
    shared_value = Exists(
        Var("x"),
        "value",
        conj(_atom("val", "v1", "f", "x"), _atom("val", "v2", "f", "x")),
    )
    agree_on_f = disj(both_absent, shared_value)
    agree_on_all = ForAll(
        Var("f"), "symbol", Implies(_atom("keyfield", "k", "f"), agree_on_f)
    )
    return _forall(
        [
            ("k", "symbol", _atom("iskey", "k")),
            ("t", "symbol", _atom("keyon", "k", "t")),
            ("v1", "node", _atom("V", "v1")),
            ("v2", "node", _atom("V", "v2")),
            ("l1", "symbol", _atom("label", "v1", "l1")),
            ("l2", "symbol", _atom("label", "v2", "l2")),
        ],
        Implies(
            conj(_atom("subtype", "l1", "t"), _atom("subtype", "l2", "t"), agree_on_all),
            Eq(Var("v1"), Var("v2")),
        ),
    )


# --------------------------------------------------------------------------- #
# strong satisfaction
# --------------------------------------------------------------------------- #


def ss1() -> Formula:
    """All nodes are justified: labels are object types."""
    return _forall(
        [("v", "node", _atom("V", "v")), ("l", "symbol", _atom("label", "v", "l"))],
        _atom("OT", "l"),
    )


def ss2() -> Formula:
    """All node properties are justified."""
    return _forall(
        [
            ("v", "node", _atom("V", "v")),
            ("l", "symbol", _atom("label", "v", "l")),
            ("p", "symbol", None),
            ("x", "value", _atom("val", "v", "p", "x")),
        ],
        _atom("attrdecl", "l", "p"),
    )


def ss3() -> Formula:
    """All edge properties are justified."""
    return _forall(
        [
            ("e", "edge", _atom("E", "e")),
            ("v1", "node", _atom("src", "e", "v1")),
            ("t", "symbol", _atom("label", "v1", "t")),
            ("f", "symbol", _atom("label", "e", "f")),
            ("a", "symbol", None),
            ("x", "value", _atom("val", "e", "a", "x")),
        ],
        _atom("argdecl", "t", "f", "a"),
    )


def ss4() -> Formula:
    """All edges are justified."""
    return _forall(
        [
            ("e", "edge", _atom("E", "e")),
            ("v1", "node", _atom("src", "e", "v1")),
            ("t", "symbol", _atom("label", "v1", "t")),
            ("f", "symbol", _atom("label", "e", "f")),
        ],
        _atom("reldecl", "t", "f"),
    )


#: Rule id -> sentence constructor, mirroring repro.validation.RULES.
SENTENCES: dict[str, Formula] = {
    "WS1": ws1(),
    "WS2": ws2(),
    "WS3": ws3(),
    "WS4": ws4(),
    "DS1": ds1(),
    "DS2": ds2(),
    "DS3": ds3(),
    "DS4": ds4(),
    "DS5": ds5(),
    "DS6": ds6(),
    "DS7": ds7(),
    "SS1": ss1(),
    "SS2": ss2(),
    "SS3": ss3(),
    "SS4": ss4(),
}
