"""Encoding of a (schema, Property Graph) pair as a first-order structure.

This is the encoding from the proof of Theorem 1: the finite sets and the
schema components become relations over a fixed (schema-sized) part of the
domain, the Property Graph becomes the ``V``/``E``/``edge``/``label``/``val``
relations, and the two derived predicates the proof discusses -- the subtype
relation ``⊑_S`` and membership in ``values_W`` -- are precomputed as
relations (``subtype``, ``valOK_F``, ``valOK_AF``) exactly as the proof's
AC0-circuit argument precomputes them.

Sorts:

* ``node``, ``edge`` -- the graph elements (the only sorts whose size grows
  with the data, hence the only quantifiers that count for data complexity);
* ``value`` -- the (type-strict) signatures of property values in the graph;
* ``symbol`` -- labels, type/field/argument names, base types and key ids
  (fixed once the schema is fixed, up to the graph's label set).

Vocabulary (relation name -- meaning):

====================  =====================================================
``V(v)``              v is a node
``E(e)``              e is an edge
``edge(e, v1, v2)``   ρ(e) = (v1, v2)
``src(e, v)``         ρ(e) = (v, _)
``tgt(e, v)``         ρ(e) = (_, v)
``label(x, l)``       λ(x) = l
``val(x, p, s)``      σ(x, p) has value signature s
``OT(t)``             t is an object type
``subtype(l, t)``     l ⊑_S t (named types/labels)
``attrdecl(t, f)``    (t, f) ∈ dom(type_F), type_F(t, f) ∈ S ∪ W_S
``reldecl(t, f)``     (t, f) ∈ dom(type_F), type_F(t, f) ∉ S ∪ W_S
``basedecl(t, f, b)`` (t, f) declared with basetype b
``nonlist(t, f)``     (t, f) declared with a non-list type
``listattr(t, f)``    attribute declaration with a list type
``argdecl(t, f, a)``  a ∈ args(t, f)
``valOK_F(t,f,s)``    signature s conforms to values_W(type_F(t, f))
``valOK_AF(t,f,a,s)`` signature s conforms to values_W(type_AF((t,f), a))
``emptyarr(s)``       s is the signature of the empty array
``distinctdecl(t,f)`` @distinct on (t, f)       (DS1)
``noloopsdecl(t,f)``  @noLoops on (t, f)        (DS2)
``uniqueFT(t, f)``    @uniqueForTarget on (t,f) (DS3)
``reqFT(t, f, b)``    @requiredForTarget on (t, f), basetype b (DS4)
``reqattr(t, f)``     @required on attribute (t, f)  (DS5)
``reqedge(t, f)``     @required on relationship (t, f) (DS6)
``iskey(k)``          k is a @key declaration   (DS7)
``keyon(k, t)``       key k is declared on type t
``keyfield(k, f)``    f is a scalar-typed field of key k
====================  =====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..pg.values import value_signature
from ..schema.subtype import is_named_subtype
from ..validation import sites
from .structure import FOStructure

if TYPE_CHECKING:  # pragma: no cover
    from ..pg.model import PropertyGraph
    from ..schema.model import GraphQLSchema

EMPTY_ARRAY_SIG = ("array",)


def encode(schema: "GraphQLSchema", graph: "PropertyGraph") -> FOStructure:
    """Encode the validation-problem input as a first-order structure."""
    structure = FOStructure()
    raw_values = _encode_graph(structure, graph)
    _encode_schema(structure, schema, graph, raw_values)
    return structure


def _encode_graph(structure: FOStructure, graph: "PropertyGraph") -> dict[tuple, object]:
    """Add the graph facts; return signature -> representative raw value."""
    structure.add_sort("node", graph.nodes)
    structure.add_sort("edge", graph.edges)
    structure.add_sort("value")
    structure.add_sort("symbol")
    for name, arity in (
        ("V", 1),
        ("E", 1),
        ("edge", 3),
        ("src", 2),
        ("tgt", 2),
        ("label", 2),
        ("val", 3),
    ):
        structure.declare_relation(name, arity)
    for node in graph.nodes:
        structure.add_fact("V", node)
        structure.add_fact("label", node, graph.label(node))
        structure.add_to_sort("symbol", graph.label(node))
    for edge in graph.edges:
        source, target = graph.endpoints(edge)
        structure.add_fact("E", edge)
        structure.add_fact("edge", edge, source, target)
        structure.add_fact("src", edge, source)
        structure.add_fact("tgt", edge, target)
        structure.add_fact("label", edge, graph.label(edge))
        structure.add_to_sort("symbol", graph.label(edge))
    raw_values: dict[tuple, object] = {}
    for element, name, value in graph.property_items():
        signature = value_signature(value)
        raw_values[signature] = value
        structure.add_fact("val", element, name, signature)
        structure.add_to_sort("value", signature)
        structure.add_to_sort("symbol", name)
    return raw_values


def _encode_schema(
    structure: FOStructure,
    schema: "GraphQLSchema",
    graph: "PropertyGraph",
    raw_values: dict[tuple, object],
) -> None:
    for name, arity in (
        ("OT", 1),
        ("subtype", 2),
        ("attrdecl", 2),
        ("reldecl", 2),
        ("basedecl", 3),
        ("nonlist", 2),
        ("listattr", 2),
        ("argdecl", 3),
        ("valOK_F", 3),
        ("valOK_AF", 4),
        ("emptyarr", 1),
        ("distinctdecl", 2),
        ("noloopsdecl", 2),
        ("uniqueFT", 2),
        ("reqFT", 3),
        ("reqattr", 2),
        ("reqedge", 2),
        ("iskey", 1),
        ("keyon", 2),
        ("keyfield", 2),
    ):
        structure.declare_relation(name, arity)

    for object_name in schema.object_types:
        structure.add_fact("OT", object_name)
        structure.add_to_sort("symbol", object_name)
    for type_name in schema.type_names:
        structure.add_to_sort("symbol", type_name)

    # subtype(l, t): l over graph labels + type names, t over type names
    label_candidates = {graph.label(node) for node in graph.nodes} | set(
        schema.type_names
    )
    named_types = (
        set(schema.object_types) | set(schema.interface_types) | set(schema.union_types)
    )
    for label in label_candidates:
        for type_name in named_types:
            if is_named_subtype(schema, label, type_name):
                structure.add_fact("subtype", label, type_name)
        if label not in named_types:
            structure.add_fact("subtype", label, label)  # rule 1 outside T

    structure.add_fact("emptyarr", EMPTY_ARRAY_SIG)
    structure.add_to_sort("value", EMPTY_ARRAY_SIG)

    for type_name, field_name, field_def in schema.field_declarations():
        structure.add_to_sort("symbol", field_name)
        structure.add_fact("basedecl", type_name, field_name, field_def.type.base)
        structure.add_to_sort("symbol", field_def.type.base)
        if not field_def.type.is_list:
            structure.add_fact("nonlist", type_name, field_name)
        if field_def.is_attribute:
            structure.add_fact("attrdecl", type_name, field_name)
            if field_def.type.is_list:
                structure.add_fact("listattr", type_name, field_name)
            for signature, raw in raw_values.items():
                if schema.scalars.in_values_w(raw, field_def.type):
                    structure.add_fact("valOK_F", type_name, field_name, signature)
        else:
            structure.add_fact("reldecl", type_name, field_name)
        for argument in field_def.arguments:
            structure.add_fact("argdecl", type_name, field_name, argument.name)
            structure.add_to_sort("symbol", argument.name)
            for signature, raw in raw_values.items():
                if schema.scalars.in_values_w(raw, argument.type):
                    structure.add_fact(
                        "valOK_AF", type_name, field_name, argument.name, signature
                    )

    for site in sites.distinct_sites(schema):
        structure.add_fact("distinctdecl", site.type_name, site.field_name)
    for site in sites.no_loops_sites(schema):
        structure.add_fact("noloopsdecl", site.type_name, site.field_name)
    for site in sites.unique_for_target_sites(schema):
        structure.add_fact("uniqueFT", site.type_name, site.field_name)
    for site in sites.required_for_target_sites(schema):
        structure.add_fact("reqFT", site.type_name, site.field_name, site.field.type.base)
    for site in sites.required_attribute_sites(schema):
        structure.add_fact("reqattr", site.type_name, site.field_name)
    for site in sites.required_edge_sites(schema):
        structure.add_fact("reqedge", site.type_name, site.field_name)
    for index, site in enumerate(sites.key_sites(schema)):
        key_id = f"@key#{index}"
        structure.add_to_sort("symbol", key_id)
        structure.add_fact("iskey", key_id)
        structure.add_fact("keyon", key_id, site.type_name)
        for field_name in site.fields:
            ref = schema.type_f(site.type_name, field_name)
            if ref is not None and schema.is_scalar_type(ref.base):
                structure.add_fact("keyfield", key_id, field_name)
