"""A validator that literally evaluates the first-order sentences.

:class:`FOValidator` decides each satisfaction rule by encoding the
(schema, graph) pair as a first-order structure and evaluating the fixed
boolean queries of :mod:`repro.fo.sentences`.  It returns booleans only (no
violation witnesses), and it exists for two purposes:

* as an *independent third implementation* of the Section-5 semantics that
  the differential tests compare against the two rule engines, and
* as the measured subject of experiment E3 (the Theorem-1 proof made
  executable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..validation.violations import rules_for_mode
from .encode import encode
from .evaluate import evaluate
from .sentences import SENTENCES

if TYPE_CHECKING:  # pragma: no cover
    from ..pg.model import PropertyGraph
    from ..schema.model import GraphQLSchema


class FOValidator:
    """Validation by direct first-order model checking."""

    def __init__(self, schema: "GraphQLSchema") -> None:
        self.schema = schema

    def check_rules(
        self, graph: "PropertyGraph", mode: str = "strong"
    ) -> dict[str, bool]:
        """Evaluate each rule sentence; True means the rule is satisfied."""
        rules = tuple(rule for rule in rules_for_mode(mode) if rule in SENTENCES)
        structure = encode(self.schema, graph)
        return {rule: evaluate(structure, SENTENCES[rule]) for rule in rules}

    def validate(self, graph: "PropertyGraph", mode: str = "strong") -> bool:
        """Does the graph satisfy the schema (per *mode*)?"""
        return all(self.check_rules(graph, mode).values())
